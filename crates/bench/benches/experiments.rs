//! Miniature figure-shaped benchmarks: each paper experiment's code path
//! exercised end-to-end at a tiny scale, so the bench target touches
//! every experiment without the multi-minute budgets of the real
//! regenerators (run those via `cargo run -p chrome-bench --bin <figNN>`
//! or `--bin run_all`).
//!
//! Run with `cargo bench -p chrome-bench --features bench-harness`.

use chrome_bench::harness::{bench, black_box};
use chrome_bench::runner::{run_mix, run_workload, RunParams};
use chrome_sim::PrefetcherConfig;

fn tiny(cores: usize) -> RunParams {
    RunParams {
        cores,
        instructions: 20_000,
        warmup: 2_000,
        ..Default::default()
    }
}

fn main() {
    bench("fig06_one_cell(gcc,CHROME,4core)", || {
        black_box(run_workload(&tiny(4), "gcc", "CHROME"))
    });
    bench("fig10_one_mix(4core,Mockingjay)", || {
        black_box(run_mix(
            &tiny(4),
            &["mcf", "libquantum", "gcc", "soplex"],
            "Mockingjay",
        ))
    });
    bench("fig13_one_cell(bfs-ur,CHROME,4core)", || {
        black_box(run_workload(&tiny(4), "bfs-ur", "CHROME"))
    });
    let ipcp = RunParams {
        prefetchers: PrefetcherConfig::ipcp(),
        ..tiny(4)
    };
    bench("fig14_one_cell(ipcp,CARE)", || {
        black_box(run_workload(&ipcp, "milc", "CARE"))
    });
    bench("fig11_one_cell(8core,LRU)", || {
        black_box(run_workload(&tiny(8), "leslie3d", "LRU"))
    });
}
