//! Miniature figure-shaped benchmarks: each paper experiment's code path
//! exercised end-to-end at a tiny scale, so `cargo bench --workspace`
//! touches every experiment without the multi-minute budgets of the real
//! regenerators (run those via `cargo run -p chrome-bench --bin <figNN>`
//! or `--bin run_all`).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use chrome_bench::runner::{run_mix, run_workload, RunParams};
use chrome_sim::PrefetcherConfig;

fn tiny(cores: usize) -> RunParams {
    RunParams { cores, instructions: 20_000, warmup: 2_000, ..Default::default() }
}

fn bench_fig06_path(c: &mut Criterion) {
    c.bench_function("fig06_one_cell(gcc,CHROME,4core)", |b| {
        b.iter_batched(
            || (),
            |_| black_box(run_workload(&tiny(4), "gcc", "CHROME")),
            BatchSize::PerIteration,
        )
    });
}

fn bench_fig10_path(c: &mut Criterion) {
    c.bench_function("fig10_one_mix(4core,Mockingjay)", |b| {
        b.iter_batched(
            || (),
            |_| {
                black_box(run_mix(
                    &tiny(4),
                    &["mcf", "libquantum", "gcc", "soplex"],
                    "Mockingjay",
                ))
            },
            BatchSize::PerIteration,
        )
    });
}

fn bench_fig13_path(c: &mut Criterion) {
    c.bench_function("fig13_one_cell(bfs-ur,CHROME,4core)", |b| {
        b.iter_batched(
            || (),
            |_| black_box(run_workload(&tiny(4), "bfs-ur", "CHROME")),
            BatchSize::PerIteration,
        )
    });
}

fn bench_fig14_path(c: &mut Criterion) {
    let params = RunParams { prefetchers: PrefetcherConfig::ipcp(), ..tiny(4) };
    c.bench_function("fig14_one_cell(ipcp,CARE)", |b| {
        b.iter_batched(
            || (),
            |_| black_box(run_workload(&params, "milc", "CARE")),
            BatchSize::PerIteration,
        )
    });
}

fn bench_scalability_path(c: &mut Criterion) {
    c.bench_function("fig11_one_cell(8core,LRU)", |b| {
        b.iter_batched(
            || (),
            |_| black_box(run_workload(&tiny(8), "leslie3d", "LRU")),
            BatchSize::PerIteration,
        )
    });
}

criterion_group! {
    name = experiment_paths;
    config = Criterion::default().sample_size(10);
    targets = bench_fig06_path, bench_fig10_path, bench_fig13_path,
              bench_fig14_path, bench_scalability_path
}
criterion_main!(experiment_paths);
