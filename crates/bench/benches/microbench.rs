//! Micro-benchmarks for the hot structures: Q-table lookup and update,
//! CHROME's decision path, cache access paths, DRAM timing, and
//! workload-generator throughput. These are the operations that bound
//! simulation speed and, conceptually, the hardware's decision latency
//! (paper §V-G estimates ~2 cycles for the pipelined Q-table lookup).
//!
//! Run with `cargo bench -p chrome-bench --features bench-harness`.

use chrome_bench::harness::{bench, black_box};
use chrome_core::agent::Chrome;
use chrome_core::config::ChromeConfig;
use chrome_core::qtable::QTable;
use chrome_sim::cache::PrivateCache;
use chrome_sim::config::{CacheConfig, DramConfig};
use chrome_sim::dram::Dram;
use chrome_sim::llc::SharedLlc;
use chrome_sim::policy::{AccessInfo, BuiltinLru, LlcPolicy, SystemFeedback};
use chrome_sim::types::{mix64, LineAddr};

fn bench_qtable() {
    let mut table = QTable::new(2, 4, 2048, 1.582);
    let mut i = 0u64;
    bench("qtable_lookup", || {
        i += 1;
        let state = [mix64(i), i % 4096];
        black_box(table.q_state(&state, (i % 7) as usize))
    });
    let mut i = 0u64;
    bench("qtable_update", || {
        i += 1;
        let state = [mix64(i), i % 4096];
        table.update(&state, (i % 7) as usize, 10.0, 0.05);
    });
}

fn bench_chrome_decision() {
    let mut chrome = Chrome::new(ChromeConfig::default());
    chrome.initialize(16384, 12, 4);
    let fb = SystemFeedback::new(4);
    let mut i = 0u64;
    bench("chrome_miss_decision", || {
        i += 1;
        let info = AccessInfo {
            core: (i % 4) as usize,
            pc: 0x400 + (i % 64) * 4,
            line: LineAddr(mix64(i) % (1 << 24)),
            is_prefetch: i.is_multiple_of(5),
            is_write: false,
            cycle: i,
        };
        black_box(chrome.on_miss((mix64(i) % 16384) as usize, &info, &fb))
    });
}

fn bench_cache_paths() {
    let cfg = CacheConfig {
        capacity: 48 * 1024,
        ways: 12,
        latency: 5,
        mshr_entries: 16,
    };
    let mut l1 = PrivateCache::new(&cfg);
    let mut i = 0u64;
    bench("l1_lookup_fill", || {
        i += 1;
        let line = LineAddr(mix64(i) % 4096);
        if l1.lookup(line, false, false).is_none() {
            l1.fill(line, false, false, i);
        }
    });

    let llc_cfg = CacheConfig {
        capacity: 12 << 20,
        ways: 12,
        latency: 40,
        mshr_entries: 256,
    };
    let mut llc = SharedLlc::new(&llc_cfg, 4, Box::new(BuiltinLru::new()));
    let fb = SystemFeedback::new(4);
    let mut i = 0u64;
    bench("llc_access_lru", || {
        i += 1;
        let info = AccessInfo {
            core: (i % 4) as usize,
            pc: 0x400,
            line: LineAddr(mix64(i) % (1 << 20)),
            is_prefetch: false,
            is_write: false,
            cycle: i,
        };
        black_box(llc.access(&info, &fb))
    });
}

fn bench_dram() {
    let mut dram = Dram::new(DramConfig::default());
    let mut i = 0u64;
    bench("dram_access", || {
        i += 1;
        black_box(dram.access(LineAddr(mix64(i) % (1 << 22)), i * 4, false))
    });
}

fn bench_generators() {
    let mut spec = chrome_traces::build_workload("mcf", 1).expect("known");
    bench("trace_gen_spec_mcf", || black_box(spec.next_record()));
    let mut gap = chrome_traces::build_workload("pr-ur", 1).expect("known");
    bench("trace_gen_gap_pr", || black_box(gap.next_record()));
}

fn main() {
    bench_qtable();
    bench_chrome_decision();
    bench_cache_paths();
    bench_dram();
    bench_generators();
}
