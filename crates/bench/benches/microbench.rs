//! Criterion micro-benchmarks for the hot structures: Q-table lookup and
//! update, CHROME's decision path, cache access paths, DRAM timing, and
//! workload-generator throughput. These are the operations that bound
//! simulation speed and, conceptually, the hardware's decision latency
//! (paper §V-G estimates ~2 cycles for the pipelined Q-table lookup).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use chrome_core::agent::Chrome;
use chrome_core::config::ChromeConfig;
use chrome_core::qtable::QTable;
use chrome_sim::cache::PrivateCache;
use chrome_sim::config::{CacheConfig, DramConfig};
use chrome_sim::dram::Dram;
use chrome_sim::llc::SharedLlc;
use chrome_sim::policy::{AccessInfo, BuiltinLru, LlcPolicy, SystemFeedback};
use chrome_sim::types::{mix64, LineAddr};

fn bench_qtable(c: &mut Criterion) {
    let mut table = QTable::new(2, 4, 2048, 1.582);
    c.bench_function("qtable_lookup", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let state = [mix64(i), i % 4096];
            black_box(table.q_state(&state, (i % 7) as usize))
        })
    });
    c.bench_function("qtable_update", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let state = [mix64(i), i % 4096];
            table.update(&state, (i % 7) as usize, 10.0, 0.05);
        })
    });
}

fn bench_chrome_decision(c: &mut Criterion) {
    let mut chrome = Chrome::new(ChromeConfig::default());
    chrome.initialize(16384, 12, 4);
    let fb = SystemFeedback::new(4);
    c.bench_function("chrome_miss_decision", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let info = AccessInfo {
                core: (i % 4) as usize,
                pc: 0x400 + (i % 64) * 4,
                line: LineAddr(mix64(i) % (1 << 24)),
                is_prefetch: i % 5 == 0,
                is_write: false,
                cycle: i,
            };
            black_box(chrome.on_miss((mix64(i) % 16384) as usize, &info, &fb))
        })
    });
}

fn bench_cache_paths(c: &mut Criterion) {
    let cfg = CacheConfig { capacity: 48 * 1024, ways: 12, latency: 5, mshr_entries: 16 };
    let mut l1 = PrivateCache::new(&cfg);
    c.bench_function("l1_lookup_fill", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let line = LineAddr(mix64(i) % 4096);
            if l1.lookup(line, false, false).is_none() {
                l1.fill(line, false, false, i);
            }
        })
    });

    let llc_cfg = CacheConfig { capacity: 12 << 20, ways: 12, latency: 40, mshr_entries: 256 };
    let mut llc = SharedLlc::new(&llc_cfg, 4, Box::new(BuiltinLru::new()));
    let fb = SystemFeedback::new(4);
    c.bench_function("llc_access_lru", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let info = AccessInfo {
                core: (i % 4) as usize,
                pc: 0x400,
                line: LineAddr(mix64(i) % (1 << 20)),
                is_prefetch: false,
                is_write: false,
                cycle: i,
            };
            black_box(llc.access(&info, &fb))
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    let mut dram = Dram::new(DramConfig::default());
    c.bench_function("dram_access", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(dram.access(LineAddr(mix64(i) % (1 << 22)), i * 4, false))
        })
    });
}

fn bench_generators(c: &mut Criterion) {
    let mut spec = chrome_traces::build_workload("mcf", 1).expect("known");
    c.bench_function("trace_gen_spec_mcf", |b| b.iter(|| black_box(spec.next_record())));
    let mut gap = chrome_traces::build_workload("pr-ur", 1).expect("known");
    c.bench_function("trace_gen_gap_pr", |b| b.iter(|| black_box(gap.next_record())));
}

criterion_group!(
    benches,
    bench_qtable,
    bench_chrome_decision,
    bench_cache_paths,
    bench_dram,
    bench_generators
);
criterion_main!(benches);
