//! Fig. 1: performance improvement over LRU on a 16-core system,
//! homogeneous SPEC workload mixes (the paper's motivating headline).

use chrome_bench::{all_schemes, geomean, run_workload, RunParams, TableWriter};
use chrome_traces::spec::spec_workloads;

fn main() {
    let mut params = RunParams::from_args();
    if params.cores == 4 {
        params.cores = 16; // figure default unless overridden
    }
    let schemes = all_schemes();
    let mut table = TableWriter::new("fig01_16core", &["scheme", "speedup_over_lru_pct"]);
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len() - 1];
    for wl in spec_workloads() {
        let base = run_workload(&params, wl, "LRU");
        for (i, scheme) in schemes.iter().skip(1).enumerate() {
            let r = run_workload(&params, wl, scheme);
            per_scheme[i].push(r.weighted_speedup_vs(&base));
        }
        eprintln!("done {wl}");
    }
    for (i, scheme) in schemes.iter().skip(1).enumerate() {
        let g = geomean(&per_scheme[i]);
        table.row_f(scheme, &[(g - 1.0) * 100.0]);
    }
    table.finish().expect("write results");
}
