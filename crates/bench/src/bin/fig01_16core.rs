//! Fig. 1: performance improvement over LRU on a 16-core system,
//! homogeneous SPEC workload mixes (the paper's motivating headline).
//!
//! Thin wrapper: builds the plan and executes it on the grid engine
//! (`--jobs`, `--retries`, `--resume`, `--manifest`).

use chrome_bench::experiments::fig01;
use chrome_bench::{run_plans, RunParams};

fn main() {
    let params = RunParams::from_args();
    std::process::exit(run_plans(&params, vec![fig01::plan(&params)]));
}
