//! Fig. 2 (motivation): unused-block breakdown under Glider on a
//! 4-core LLC.
//!
//! Thin wrapper: builds the plan and executes it on the grid engine
//! (`--jobs`, `--retries`, `--resume`, `--manifest`).

use chrome_bench::experiments::fig02;
use chrome_bench::{run_plans, RunParams};

fn main() {
    let params = RunParams::from_args();
    std::process::exit(run_plans(&params, vec![fig02::plan(&params)]));
}
