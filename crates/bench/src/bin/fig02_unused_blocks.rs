//! Fig. 2 (motivation): with Glider managing a 4-core LLC,
//! (a) the fraction of evicted blocks never reused before eviction
//!     (split into requested-again-later vs never-requested-again), and
//! (b) the fraction of those unused blocks that came from prefetching.

use chrome_bench::runner::run_workload_tracked;
use chrome_bench::{RunParams, TableWriter};
use chrome_traces::spec::spec_workloads;

fn main() {
    let params = RunParams::from_args();
    let mut table = TableWriter::new(
        "fig02_unused_blocks",
        &[
            "workload",
            "unused_frac",
            "requested_again_frac",
            "never_again_frac",
            "prefetch_frac_of_unused",
        ],
    );
    let mut sums = [0.0f64; 4];
    let mut count = 0u32;
    for wl in spec_workloads() {
        let r = run_workload_tracked(&params, wl, "Glider", true);
        let evictions = r.results.llc.evictions.max(1);
        let unused = r.results.llc.evictions_unused;
        let (again, never, pf) = r.results.evicted_unused;
        let unused_frac = unused as f64 / evictions as f64;
        let denom = (again + never).max(1) as f64;
        let cells = [
            unused_frac,
            unused_frac * again as f64 / denom,
            unused_frac * never as f64 / denom,
            pf as f64 / unused.max(1) as f64,
        ];
        for (i, v) in cells.iter().enumerate() {
            sums[i] += v;
        }
        count += 1;
        table.row_f(wl, &cells);
        eprintln!("done {wl}");
    }
    let avg: Vec<f64> = sums.iter().map(|s| s / count as f64).collect();
    table.row_f("AVERAGE", &avg);
    table.finish().expect("write results");
}
