//! Fig. 3 (motivation): Hawkeye / Glider / Mockingjay speedups over LRU
//! on eight representative workloads under two prefetcher combinations:
//! (a) next-line@L1 + stride@L2, (b) stride@L1 + streamer@L2.

use chrome_bench::{run_workload, RunParams, TableWriter};
use chrome_sim::PrefetcherConfig;

const WORKLOADS: [&str; 8] = [
    "mcf",
    "soplex",
    "wrf",
    "libquantum",
    "omnetpp",
    "xalancbmk",
    "gcc",
    "cc-ur",
];
const SCHEMES: [&str; 3] = ["Hawkeye", "Glider", "Mockingjay"];

fn run_config(params: &RunParams, tag: &str, table_name: &str) {
    let mut table = TableWriter::new(table_name, &{
        let mut h = vec!["workload"];
        h.extend(SCHEMES);
        h
    });
    for wl in WORKLOADS {
        let base = run_workload(params, wl, "LRU");
        let cells: Vec<f64> = SCHEMES
            .iter()
            .map(|s| run_workload(params, wl, s).weighted_speedup_vs(&base))
            .collect();
        table.row_f(wl, &cells);
        eprintln!("done {tag} {wl}");
    }
    table.finish().expect("write results");
}

fn main() {
    let mut params = RunParams::from_args();
    params.prefetchers = PrefetcherConfig::default_paper();
    run_config(&params, "(a)", "fig03a_nextline_stride");
    params.prefetchers = PrefetcherConfig::stride_streamer();
    run_config(&params, "(b)", "fig03b_stride_streamer");
}
