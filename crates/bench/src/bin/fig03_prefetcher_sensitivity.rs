//! Fig. 3 (motivation): Hawkeye / Glider / Mockingjay speedups over LRU
//! under two prefetcher combinations.
//!
//! Thin wrapper: builds the plan and executes it on the grid engine
//! (`--jobs`, `--retries`, `--resume`, `--manifest`).

use chrome_bench::experiments::fig03;
use chrome_bench::{run_plans, RunParams};

fn main() {
    let params = RunParams::from_args();
    std::process::exit(run_plans(&params, vec![fig03::plan(&params)]));
}
