//! Fig. 6: speedup over LRU for 4-core SPEC homogeneous mixes, all
//! schemes. The same cells also emit the Fig. 7/8/9 tables.
//!
//! Thin wrapper: builds the plan and executes it on the grid engine
//! (`--jobs`, `--retries`, `--resume`, `--manifest`).

use chrome_bench::experiments::fig06;
use chrome_bench::{run_plans, RunParams};

fn main() {
    let params = RunParams::from_args();
    std::process::exit(run_plans(&params, vec![fig06::plan(&params)]));
}
