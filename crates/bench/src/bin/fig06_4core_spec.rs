//! Fig. 6: speedup over LRU for 4-core SPEC homogeneous mixes, all
//! schemes. Because the same simulations also yield the paper's Figs.
//! 7–9, this binary emits those tables too (the standalone
//! `fig07_demand_miss`, `fig08_ephr` and `fig09_bypass` binaries re-run
//! just their own metric):
//!
//! * `fig06_4core_spec.tsv` — weighted speedup over LRU,
//! * `fig07_demand_miss.tsv` — LLC demand miss ratio,
//! * `fig08_ephr.tsv` — effective prefetch hit ratio,
//! * `fig09_bypass.tsv` — bypass coverage/efficiency (Mockingjay, CHROME).

use chrome_bench::runner::run_workload_tracked;
use chrome_bench::{all_schemes, geomean, RunParams, TableWriter};
use chrome_traces::spec::spec_workloads;

fn main() {
    let params = RunParams::from_args();
    let schemes = all_schemes();
    let mut speedup_t = TableWriter::new("fig06_4core_spec", &{
        let mut h = vec!["workload"];
        h.extend(schemes.iter().skip(1).copied());
        h
    });
    let mut miss_t = TableWriter::new("fig07_demand_miss", &{
        let mut h = vec!["workload"];
        h.extend(schemes.iter().copied());
        h
    });
    let mut ephr_t = TableWriter::new("fig08_ephr", &{
        let mut h = vec!["workload"];
        h.extend(schemes.iter().copied());
        h
    });
    let mut bypass_t = TableWriter::new(
        "fig09_bypass",
        &[
            "workload",
            "mockingjay_coverage",
            "mockingjay_efficiency",
            "chrome_coverage",
            "chrome_efficiency",
        ],
    );

    let n = schemes.len();
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); n - 1];
    let mut miss_sums = vec![0.0; n];
    let mut ephr_sums = vec![0.0; n];
    let mut bypass_sums = [0.0f64; 4];
    let mut count = 0u32;

    for wl in spec_workloads() {
        let mut miss_cells = Vec::new();
        let mut ephr_cells = Vec::new();
        let mut speed_cells = Vec::new();
        let mut bypass_cells = Vec::new();
        let base = run_workload_tracked(&params, wl, "LRU", true);
        for (i, scheme) in schemes.iter().enumerate() {
            let r = if i == 0 {
                base.clone()
            } else {
                run_workload_tracked(&params, wl, scheme, true)
            };
            let miss = r.results.llc.demand_miss_ratio();
            let ephr = r.results.llc.ephr();
            miss_sums[i] += miss;
            ephr_sums[i] += ephr;
            miss_cells.push(miss);
            ephr_cells.push(ephr);
            if i > 0 {
                let s = r.weighted_speedup_vs(&base);
                speedups[i - 1].push(s);
                speed_cells.push(s);
            }
            if *scheme == "Mockingjay" || *scheme == "CHROME" {
                let coverage = r.results.llc.bypass_coverage();
                let (again, never, _) = r.results.bypassed_outcome;
                let eff = if again + never == 0 {
                    0.0
                } else {
                    never as f64 / (again + never) as f64
                };
                bypass_cells.push(coverage);
                bypass_cells.push(eff);
            }
        }
        count += 1;
        speedup_t.row_f(wl, &speed_cells);
        miss_t.row_f(wl, &miss_cells);
        ephr_t.row_f(wl, &ephr_cells);
        for (i, v) in bypass_cells.iter().enumerate() {
            bypass_sums[i] += v;
        }
        bypass_t.row_f(wl, &bypass_cells);
        eprintln!("done {wl}");
    }

    let geo: Vec<f64> = speedups.iter().map(|v| geomean(v)).collect();
    speedup_t.row_f("GEOMEAN", &geo);
    miss_t.row_f(
        "AVERAGE",
        &miss_sums
            .iter()
            .map(|s| s / count as f64)
            .collect::<Vec<_>>(),
    );
    ephr_t.row_f(
        "AVERAGE",
        &ephr_sums
            .iter()
            .map(|s| s / count as f64)
            .collect::<Vec<_>>(),
    );
    bypass_t.row_f(
        "AVERAGE",
        &bypass_sums
            .iter()
            .map(|s| s / count as f64)
            .collect::<Vec<_>>(),
    );
    speedup_t.finish().expect("write results");
    miss_t.finish().expect("write results");
    ephr_t.finish().expect("write results");
    bypass_t.finish().expect("write results");
}
