//! Fig. 7: LLC demand miss ratio for 4-core SPEC homogeneous mixes.

use chrome_bench::{all_schemes, run_workload, RunParams, TableWriter};
use chrome_traces::spec::spec_workloads;

fn main() {
    let params = RunParams::from_args();
    let schemes = all_schemes();
    let mut table = TableWriter::new("fig07_demand_miss", &{
        let mut h = vec!["workload"];
        h.extend(schemes.iter().copied());
        h
    });
    let mut sums = vec![0.0; schemes.len()];
    let mut count = 0u32;
    for wl in spec_workloads() {
        let mut cells = Vec::new();
        for (i, scheme) in schemes.iter().enumerate() {
            let r = run_workload(&params, wl, scheme);
            let m = r.results.llc.demand_miss_ratio();
            sums[i] += m;
            cells.push(m);
        }
        count += 1;
        table.row_f(wl, &cells);
        eprintln!("done {wl}");
    }
    let avg: Vec<f64> = sums.iter().map(|s| s / count as f64).collect();
    table.row_f("AVERAGE", &avg);
    table.finish().expect("write results");
}
