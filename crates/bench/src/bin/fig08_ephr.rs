//! Fig. 8: effective prefetch hit ratio (EPHR) at the LLC for 4-core
//! SPEC homogeneous mixes, plus a converged-window demand hit rate per
//! scheme taken from the epoch telemetry series (the mean over the last
//! quarter of epochs, after the learning policies have settled).

use chrome_bench::{all_schemes, run_workload, RunParams, TableWriter};
use chrome_traces::spec::spec_workloads;

fn main() {
    let mut params = RunParams::from_args();
    params.record_epochs = true;
    let schemes = all_schemes();
    let tail_headers: Vec<String> = schemes.iter().map(|s| format!("{s}_tail_hr")).collect();
    let mut table = TableWriter::new("fig08_ephr", &{
        let mut h = vec!["workload"];
        h.extend(schemes.iter().copied());
        h.extend(tail_headers.iter().map(|s| s.as_str()));
        h
    });
    let mut sums = vec![0.0; 2 * schemes.len()];
    let mut count = 0u32;
    for wl in spec_workloads() {
        let mut cells = Vec::new();
        let mut tails = Vec::new();
        for scheme in schemes.iter() {
            let r = run_workload(&params, wl, scheme);
            cells.push(r.results.llc.ephr());
            tails.push(r.epochs.tail_mean(0.25, |e| e.hit_rate()));
        }
        cells.append(&mut tails);
        for (i, v) in cells.iter().enumerate() {
            sums[i] += v;
        }
        count += 1;
        table.row_f(wl, &cells);
        eprintln!("done {wl}");
    }
    let avg: Vec<f64> = sums.iter().map(|s| s / count as f64).collect();
    table.row_f("AVERAGE", &avg);
    table.finish().expect("write results");
}
