//! Fig. 9: bypass coverage and bypass efficiency for the two bypassing
//! schemes (Mockingjay and CHROME) on 4-core SPEC homogeneous mixes.
//!
//! Coverage = fraction of incoming blocks bypassed. Efficiency =
//! fraction of bypassed blocks never demanded again before the window
//! closes — measured here via the evicted-unused tracker's
//! requested-again statistics applied to bypassed lines (we re-run with
//! unused-block tracking and report the fraction of bypassed lines not
//! re-requested).

use chrome_bench::runner::run_workload_tracked;
use chrome_bench::{RunParams, TableWriter};
use chrome_traces::spec::spec_workloads;

fn main() {
    let mut params = RunParams::from_args();
    params.record_epochs = true;
    let schemes = ["Mockingjay", "CHROME"];
    let mut table = TableWriter::new(
        "fig09_bypass",
        &[
            "workload",
            "mockingjay_coverage",
            "mockingjay_efficiency",
            "mockingjay_tail_bypass",
            "chrome_coverage",
            "chrome_efficiency",
            "chrome_tail_bypass",
        ],
    );
    let mut sums = [0.0f64; 6];
    let mut count = 0u32;
    for wl in spec_workloads() {
        let mut cells = Vec::new();
        for scheme in schemes {
            let r = run_workload_tracked(&params, wl, scheme, true);
            let coverage = r.results.llc.bypass_coverage();
            // efficiency: of the bypassed lines, how many were never
            // demanded again (the bypass was the right call)
            let (again, never, _) = r.results.bypassed_outcome;
            let efficiency = if again + never == 0 {
                0.0
            } else {
                never as f64 / (again + never) as f64
            };
            cells.push(coverage);
            cells.push(efficiency);
            // converged-window bypass rate from the epoch series: the
            // steady-state behavior after learning settles
            cells.push(r.epochs.tail_mean(0.25, |e| e.bypass_rate()));
        }
        for (i, v) in cells.iter().enumerate() {
            sums[i] += v;
        }
        count += 1;
        table.row_f(wl, &cells);
        eprintln!("done {wl}");
    }
    let avg: Vec<f64> = sums.iter().map(|s| s / count as f64).collect();
    table.row_f("AVERAGE", &avg);
    table.finish().expect("write results");
}
