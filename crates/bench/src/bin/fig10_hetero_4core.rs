//! Fig. 10: weighted speedup over LRU for 4-core heterogeneous mixes
//! (the paper uses 150 random mixes; scale with `--mixes`). Rows are
//! sorted by CHROME's speedup, as in the paper's S-curve.

use chrome_bench::{geomean, run_mix, RunParams, TableWriter};
use chrome_traces::mix::heterogeneous_names;

const SCHEMES: [&str; 4] = ["Hawkeye", "Glider", "Mockingjay", "CHROME"];

fn main() {
    // extra flag: --mixes N (default 30; the paper uses 150)
    let params = RunParams::from_args_ignoring(&["--mixes"]);
    let mixes = RunParams::arg_usize("--mixes", 30);

    let names = heterogeneous_names(params.cores, mixes, 0xF16);
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); SCHEMES.len()];
    for (mi, mix_names) in names.iter().enumerate() {
        let base = run_mix(&params, mix_names, "LRU");
        let mut cells = Vec::new();
        for (i, scheme) in SCHEMES.iter().enumerate() {
            let r = run_mix(&params, mix_names, scheme);
            let ws = r.weighted_speedup_vs(&base);
            per_scheme[i].push(ws);
            cells.push(ws);
        }
        rows.push((format!("mix{mi:03}:{}", mix_names.join("+")), cells));
        eprintln!("done mix {mi}");
    }
    // sort ascending by CHROME speedup (the paper's presentation)
    rows.sort_by(|a, b| a.1[3].partial_cmp(&b.1[3]).expect("finite"));
    let mut table = TableWriter::new("fig10_hetero_4core", &{
        let mut h = vec!["mix"];
        h.extend(SCHEMES);
        h
    });
    let mut chrome_best = 0;
    let mut chrome_over_mockingjay = 0;
    for (name, cells) in &rows {
        if cells[3] >= cells[0].max(cells[1]).max(cells[2]) {
            chrome_best += 1;
        }
        if cells[3] >= cells[2] {
            chrome_over_mockingjay += 1;
        }
        table.row_f(name, cells);
    }
    let geo: Vec<f64> = per_scheme.iter().map(|v| geomean(v)).collect();
    table.row_f("GEOMEAN", &geo);
    table.finish().expect("write results");
    println!("CHROME best in {chrome_best}/{} mixes", rows.len());
    println!(
        "CHROME >= Mockingjay in {chrome_over_mockingjay}/{} mixes",
        rows.len()
    );
}
