//! Fig. 10: weighted speedup over LRU for 4-core heterogeneous mixes
//! (the paper uses 150 random mixes; scale with `--mixes`).
//!
//! Thin wrapper: builds the plan and executes it on the grid engine
//! (`--jobs`, `--retries`, `--resume`, `--manifest`).

use chrome_bench::experiments::fig10;
use chrome_bench::{run_plans, RunParams};

fn main() {
    let params = RunParams::from_args();
    std::process::exit(run_plans(&params, vec![fig10::plan(&params)]));
}
