//! Fig. 11: geometric-mean speedup over LRU for 4/8/16-core systems,
//! homogeneous and heterogeneous SPEC mixes.
//!
//! Thin wrapper: builds the plan and executes it on the grid engine
//! (`--jobs`, `--retries`, `--resume`, `--manifest`).

use chrome_bench::experiments::fig11;
use chrome_bench::{run_plans, RunParams};

fn main() {
    let params = RunParams::from_args();
    std::process::exit(run_plans(&params, vec![fig11::plan(&params)]));
}
