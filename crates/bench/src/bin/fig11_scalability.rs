//! Fig. 11: geometric-mean speedup over LRU for 4/8/16-core systems,
//! homogeneous and heterogeneous SPEC mixes.

use chrome_bench::{all_schemes, geomean, run_mix, run_workload, RunParams, TableWriter};
use chrome_traces::mix::heterogeneous_names;
use chrome_traces::spec::spec_workloads;

fn main() {
    let base_params = RunParams::from_args_ignoring(&["--mixes", "--homo-workloads"]);
    let hetero_mixes = RunParams::arg_usize("--mixes", 8);
    let homo_count = RunParams::arg_usize("--homo-workloads", 10);
    let schemes = all_schemes();

    let mut table = TableWriter::new("fig11_scalability", &{
        let mut h = vec!["config"];
        h.extend(schemes.iter().skip(1).copied());
        h
    });

    for cores in [4usize, 8, 16] {
        let params = RunParams {
            cores,
            ..base_params.clone()
        };
        // homogeneous: a representative subset for the smaller core counts
        let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len() - 1];
        for wl in spec_workloads().into_iter().take(homo_count) {
            let base = run_workload(&params, wl, "LRU");
            for (i, scheme) in schemes.iter().skip(1).enumerate() {
                let r = run_workload(&params, wl, scheme);
                per_scheme[i].push(r.weighted_speedup_vs(&base));
            }
            eprintln!("done {cores}-core homo {wl}");
        }
        let geo: Vec<f64> = per_scheme.iter().map(|v| geomean(v)).collect();
        table.row_f(&format!("{cores}-core-homo"), &geo);

        // heterogeneous
        let names = heterogeneous_names(cores, hetero_mixes, 0xF11);
        let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len() - 1];
        for (mi, mix_names) in names.iter().enumerate() {
            let base = run_mix(&params, mix_names, "LRU");
            for (i, scheme) in schemes.iter().skip(1).enumerate() {
                let r = run_mix(&params, mix_names, scheme);
                per_scheme[i].push(r.weighted_speedup_vs(&base));
            }
            eprintln!("done {cores}-core hetero mix {mi}");
        }
        let geo: Vec<f64> = per_scheme.iter().map(|v| geomean(v)).collect();
        table.row_f(&format!("{cores}-core-hetero"), &geo);
    }
    table.finish().expect("write results");
}
