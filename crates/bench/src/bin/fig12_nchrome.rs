//! Fig. 12: CHROME vs N-CHROME (no concurrency-aware feedback) on
//! 4/8/16-core SPEC homogeneous mixes.
//!
//! Thin wrapper: builds the plan and executes it on the grid engine
//! (`--jobs`, `--retries`, `--resume`, `--manifest`).

use chrome_bench::experiments::fig12;
use chrome_bench::{run_plans, RunParams};

fn main() {
    let params = RunParams::from_args();
    std::process::exit(run_plans(&params, vec![fig12::plan(&params)]));
}
