//! Fig. 12: CHROME vs N-CHROME (no concurrency-aware feedback) on
//! 4/8/16-core SPEC homogeneous mixes — the value of C-AMAT awareness.

use chrome_bench::{geomean, run_workload, RunParams, TableWriter};
use chrome_traces::spec::spec_workloads;

fn main() {
    let base_params = RunParams::from_args_ignoring(&["--homo-workloads"]);
    let homo_count = RunParams::arg_usize("--homo-workloads", 10);
    let mut table = TableWriter::new(
        "fig12_nchrome",
        &["config", "CHROME", "N-CHROME", "delta_pct"],
    );
    for cores in [4usize, 8, 16] {
        let params = RunParams {
            cores,
            ..base_params.clone()
        };
        let mut chrome = Vec::new();
        let mut nchrome = Vec::new();
        // skip the heavier tail workloads at high core counts
        for wl in spec_workloads().into_iter().take(homo_count) {
            let base = run_workload(&params, wl, "LRU");
            chrome.push(run_workload(&params, wl, "CHROME").weighted_speedup_vs(&base));
            nchrome.push(run_workload(&params, wl, "N-CHROME").weighted_speedup_vs(&base));
            eprintln!("done {cores}-core {wl}");
        }
        let (gc, gn) = (geomean(&chrome), geomean(&nchrome));
        table.row_f(&format!("{cores}-core"), &[gc, gn, (gc - gn) * 100.0]);
    }
    table.finish().expect("write results");
}
