//! Fig. 13: speedups over LRU on GAP graph workloads (unseen during
//! hyper-parameter tuning) for 4/8/16-core systems.

use chrome_bench::{all_schemes, geomean, run_workload, RunParams, TableWriter};
use chrome_traces::gap::gap_workloads;

fn main() {
    let base_params = RunParams::from_args();
    let schemes = all_schemes();
    let mut table = TableWriter::new("fig13_gap", &{
        let mut h = vec!["config"];
        h.extend(schemes.iter().skip(1).copied());
        h
    });
    for cores in [4usize, 8, 16] {
        let params = RunParams {
            cores,
            ..base_params.clone()
        };
        let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len() - 1];
        // Table VI's 12 GAP traces (bfs/cc/pr/sssp x or/tw/ur)
        for wl in gap_workloads().iter().filter(|w| !w.starts_with("bc-")) {
            let base = run_workload(&params, wl, "LRU");
            for (i, scheme) in schemes.iter().skip(1).enumerate() {
                let r = run_workload(&params, wl, scheme);
                per_scheme[i].push(r.weighted_speedup_vs(&base));
            }
            eprintln!("done {cores}-core {wl}");
        }
        let geo: Vec<f64> = per_scheme.iter().map(|v| geomean(v)).collect();
        table.row_f(&format!("{cores}-core"), &geo);
    }
    table.finish().expect("write results");
}
