//! Fig. 13: speedups over LRU on GAP graph workloads (unseen during
//! hyper-parameter tuning) for 4/8/16-core systems.
//!
//! Thin wrapper: builds the plan and executes it on the grid engine
//! (`--jobs`, `--retries`, `--resume`, `--manifest`).

use chrome_bench::experiments::fig13;
use chrome_bench::{run_plans, RunParams};

fn main() {
    let params = RunParams::from_args();
    std::process::exit(run_plans(&params, vec![fig13::plan(&params)]));
}
