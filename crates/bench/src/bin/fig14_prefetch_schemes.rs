//! Fig. 14: adaptability across prefetching schemes — stride+streamer
//! and IPCP — on 4-core SPEC homogeneous mixes.
//!
//! Thin wrapper: builds the plan and executes it on the grid engine
//! (`--jobs`, `--retries`, `--resume`, `--manifest`).

use chrome_bench::experiments::fig14;
use chrome_bench::{run_plans, RunParams};

fn main() {
    let params = RunParams::from_args();
    std::process::exit(run_plans(&params, vec![fig14::plan(&params)]));
}
