//! Fig. 14: adaptability across prefetching schemes — geometric-mean
//! speedup over LRU on 4-core SPEC homogeneous mixes with
//! (a) stride@L1 + streamer@L2 and (b) IPCP.

use chrome_bench::{all_schemes, geomean, run_workload, RunParams, TableWriter};
use chrome_sim::PrefetcherConfig;
use chrome_traces::spec::spec_workloads;

fn main() {
    let base_params = RunParams::from_args_ignoring(&["--homo-workloads"]);
    let homo_count = RunParams::arg_usize("--homo-workloads", 14);
    let schemes = all_schemes();
    let mut table = TableWriter::new("fig14_prefetch_schemes", &{
        let mut h = vec!["prefetch_config"];
        h.extend(schemes.iter().skip(1).copied());
        h
    });
    for (tag, pf) in [
        ("stride+streamer", PrefetcherConfig::stride_streamer()),
        ("ipcp", PrefetcherConfig::ipcp()),
    ] {
        let params = RunParams {
            prefetchers: pf,
            ..base_params.clone()
        };
        let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len() - 1];
        for wl in spec_workloads().into_iter().take(homo_count) {
            let base = run_workload(&params, wl, "LRU");
            for (i, scheme) in schemes.iter().skip(1).enumerate() {
                let r = run_workload(&params, wl, scheme);
                per_scheme[i].push(r.weighted_speedup_vs(&base));
            }
            eprintln!("done {tag} {wl}");
        }
        let geo: Vec<f64> = per_scheme.iter().map(|v| geomean(v)).collect();
        table.row_f(tag, &geo);
    }
    table.finish().expect("write results");
}
