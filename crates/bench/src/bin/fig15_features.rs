//! Fig. 15: CHROME state-feature ablation — PC only, PN only, and the
//! full PC+PN state, on 4-core SPEC homogeneous mixes.
//!
//! Thin wrapper: builds the plan and executes it on the grid engine
//! (`--jobs`, `--retries`, `--resume`, `--manifest`).

use chrome_bench::experiments::fig15;
use chrome_bench::{run_plans, RunParams};

fn main() {
    let params = RunParams::from_args();
    std::process::exit(run_plans(&params, vec![fig15::plan(&params)]));
}
