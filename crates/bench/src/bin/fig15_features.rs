//! Fig. 15: CHROME state-feature ablation — PC only, PN only, and the
//! full PC+PN state, on 4-core SPEC homogeneous mixes.

use chrome_bench::{geomean, run_workload, RunParams, TableWriter};
use chrome_traces::spec::spec_workloads;

const VARIANTS: [(&str, &str); 6] = [
    ("PC-only", "CHROME-pc"),
    ("PN-only", "CHROME-pn"),
    ("PC+PN", "CHROME"),
    // the other Table I candidates (extension beyond the paper's Fig. 15)
    ("PC+delta", "CHROME-pcdelta"),
    ("PCseq+PN", "CHROME-pcseq"),
    ("PCoffset+PN", "CHROME-pcoffset"),
];

fn main() {
    let params = RunParams::from_args_ignoring(&["--homo-workloads"]);
    let homo_count = RunParams::arg_usize("--homo-workloads", 14);
    let workloads: Vec<&str> = spec_workloads().into_iter().take(homo_count).collect();
    let bases: Vec<_> = workloads
        .iter()
        .map(|wl| run_workload(&params, wl, "LRU"))
        .collect();
    let mut table = TableWriter::new("fig15_features", &["variant", "geomean_speedup"]);
    for (label, scheme) in VARIANTS {
        let mut speedups = Vec::new();
        for (wl, base) in workloads.iter().zip(&bases) {
            let r = run_workload(&params, wl, scheme);
            speedups.push(r.weighted_speedup_vs(base));
            eprintln!("done {label} {wl}");
        }
        table.row_f(label, &[geomean(&speedups)]);
    }
    table.finish().expect("write results");
}
