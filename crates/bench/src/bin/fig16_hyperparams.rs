//! Fig. 16: hyper-parameter sensitivity of CHROME — learning rate α,
//! discount factor γ, exploration rate ε — on 4-core SPEC homogeneous
//! mixes.

use chrome_bench::runner::SchemeResult;
use chrome_bench::{geomean, run_workload, RunParams, TableWriter};
use chrome_traces::spec::spec_workloads;

fn sweep(
    params: &RunParams,
    workloads: &[&str],
    bases: &[SchemeResult],
    key: &str,
    values: &[f64],
    table: &mut TableWriter,
) {
    for &v in values {
        let scheme = format!("CHROME-{key}={v}");
        let mut speedups = Vec::new();
        for (wl, base) in workloads.iter().zip(bases) {
            let r = run_workload(params, wl, &scheme);
            speedups.push(r.weighted_speedup_vs(base));
        }
        table.row_f(&format!("{key}={v}"), &[geomean(&speedups)]);
        eprintln!("done {key}={v}");
    }
}

fn main() {
    let params = RunParams::from_args_ignoring(&["--homo-workloads"]);
    let homo_count = RunParams::arg_usize("--homo-workloads", 8);
    let workloads: Vec<&str> = spec_workloads().into_iter().take(homo_count).collect();
    let bases: Vec<SchemeResult> = workloads
        .iter()
        .map(|wl| run_workload(&params, wl, "LRU"))
        .collect();
    let mut table = TableWriter::new("fig16_hyperparams", &["setting", "geomean_speedup"]);
    sweep(
        &params,
        &workloads,
        &bases,
        "alpha",
        &[1e-5, 1e-3, 0.0498, 0.5, 1.0],
        &mut table,
    );
    sweep(
        &params,
        &workloads,
        &bases,
        "gamma",
        &[1e-3, 1e-1, 0.3679, 0.9],
        &mut table,
    );
    sweep(
        &params,
        &workloads,
        &bases,
        "eps",
        &[0.0, 0.001, 0.01, 0.1],
        &mut table,
    );
    table.finish().expect("write results");
}
