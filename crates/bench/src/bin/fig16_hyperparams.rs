//! Fig. 16: hyper-parameter sensitivity of CHROME — learning rate α,
//! discount factor γ, exploration rate ε.
//!
//! Thin wrapper: builds the plan and executes it on the grid engine
//! (`--jobs`, `--retries`, `--resume`, `--manifest`).

use chrome_bench::experiments::fig16;
use chrome_bench::{run_plans, RunParams};

fn main() {
    let params = RunParams::from_args();
    std::process::exit(run_plans(&params, vec![fig16::plan(&params)]));
}
