//! Forensics sweep: the audit-vs-oracle experiment family.
//!
//! For each SPEC workload, run CHROME and N-CHROME with per-decision
//! auditing, judge every decision against the offline Belady/MIN
//! oracle, and assemble a divergence table plus the full JSONL + "why"
//! markdown report under `results/`.
//!
//! Flags (the usual experiment subset): `--cores N`,
//! `--instructions N`, `--warmup N`, `--seed N`, `--quick`, `--full`,
//! `--homo-workloads N` (workload-list cap, default 4).

use chrome_bench::{RunParams, TableWriter};
use chrome_forensics::{
    join_segment, render_markdown, run_hardware, summarize, SimSource, SimSpec,
};
use chrome_traces::spec::spec_workloads;

fn main() {
    let params = RunParams::from_args();
    let count = params.homo_workloads.unwrap_or(4);
    let workloads: Vec<&str> = spec_workloads().into_iter().take(count).collect();

    let mut table = TableWriter::new(
        "forensics_sweep",
        &[
            "workload",
            "scheme",
            "decisions",
            "join%",
            "hit%",
            "MIN%",
            "diverge%",
            "calib",
        ],
    );
    let mut summaries = Vec::new();
    for wl in &workloads {
        for aware in [true, false] {
            let spec = SimSpec {
                source: SimSource::Workload((*wl).to_string()),
                cores: params.cores,
                instructions: params.instructions,
                warmup: params.warmup,
                seed: params.seed,
                audit_cap: params.audit.unwrap_or(1 << 22),
            };
            let run = match run_hardware(&spec, aware) {
                Ok(run) => run,
                Err(e) => {
                    eprintln!("forensics_sweep: {wl}: {e}");
                    std::process::exit(1);
                }
            };
            let joined: Vec<_> = run
                .segments
                .iter()
                .zip(&run.verdicts)
                .map(|(seg, v)| join_segment(seg, v))
                .collect();
            let s = summarize(wl, run.scheme, &run.segments, &joined);
            table.row(vec![
                (*wl).to_string(),
                run.scheme.to_string(),
                s.decisions.to_string(),
                format!("{:.2}", s.join_rate() * 100.0),
                format!("{:.2}", s.realized_hit_ratio * 100.0),
                format!("{:.2}", s.min_hit_ratio * 100.0),
                format!("{:.2}", s.divergence_rate() * 100.0),
                format!("{:.2}", s.reward_calibration),
            ]);
            summaries.push(s);
        }
    }

    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("mkdir results");
    let jsonl: String = summaries
        .iter()
        .map(|s| format!("{}\n", s.to_json()))
        .collect();
    std::fs::write(dir.join("forensics_sweep.jsonl"), jsonl).expect("write jsonl");
    std::fs::write(
        dir.join("forensics_sweep.md"),
        render_markdown("forensics_sweep", &["pc", "pn"], &summaries),
    )
    .expect("write markdown");
    table.finish().expect("write tsv");
    println!(
        "wrote results/forensics_sweep.jsonl and results/forensics_sweep.md ({} runs)",
        summaries.len()
    );
}
