//! Latency-attribution profile of one (workload, scheme) cell.
//!
//! Runs the simulator with the per-request span profiler enabled, prints
//! the where-cycles-go attribution report, and cross-checks the
//! profiler's ground truth against `CamatTracker`'s decomposition
//! (pure AMAT vs C-AMAT vs overlap savings) and the DRAM model's running
//! latency estimate. Exits non-zero if any reconciliation fails, which
//! is what the CI perf-smoke job keys on.
//!
//! ```text
//! profile [--workload W | --mix a,b,...] [--scheme S]
//!         [--telemetry-out DIR] [--bench-json FILE] [common flags]
//! ```
//!
//! With `--telemetry-out DIR` the full artifact set is exported
//! (`*_attrib.csv`, `*_attrib.txt`, `*_trace.json` with request spans,
//! epoch series); with `--bench-json FILE` a machine-readable summary
//! (sims/sec + attribution sums) is written for trend tracking.

use std::time::Instant;

use chrome_bench::runner::{run_mix, run_workload, RunParams, SchemeResult};
use chrome_telemetry::export::attrib_text;
use chrome_telemetry::Stage;

fn arg_string(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let mut params =
        RunParams::from_args_ignoring(&["--workload", "--mix", "--scheme", "--bench-json"]);
    params.profile = true;
    let scheme = arg_string("--scheme").unwrap_or_else(|| "CHROME".to_string());
    let workload = arg_string("--workload").unwrap_or_else(|| "mcf".to_string());
    let mix = arg_string("--mix");

    let t0 = Instant::now();
    let (label, r) = match &mix {
        Some(m) => {
            let names: Vec<&str> = m.split(',').filter(|s| !s.is_empty()).collect();
            params.cores = names.len();
            (m.clone(), run_mix(&params, &names, &scheme))
        }
        None => (workload.clone(), run_workload(&params, &workload, &scheme)),
    };
    let elapsed = t0.elapsed().as_secs_f64();

    let attrib = r.attrib.as_ref().expect("profiling run returns attrib");
    println!("== profile: {label} / {scheme} ==");
    println!(
        "cores={} instructions={}/core warmup={} elapsed={elapsed:.2}s",
        params.cores, params.instructions, params.warmup
    );
    println!();
    print!("{}", attrib_text(attrib));
    println!();

    decomposition_report(&r);

    let failures = reconcile(&r);
    if let Some(path) = arg_string("--bench-json") {
        let json = bench_json(&params, &r, elapsed, failures.is_empty());
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("RECONCILIATION FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!("reconciliation: OK");
}

/// Cross-check the profiler against the C-AMAT tracker and DRAM model.
fn decomposition_report(r: &SchemeResult) {
    let attrib = r.attrib.as_ref().unwrap();
    println!("-- decomposition cross-check (profiler vs CamatTracker) --");
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "core", "llc_acc", "AMAT(prof)", "AMAT(camat)", "C-AMAT", "overlap"
    );
    for (i, c) in r.results.per_core.iter().enumerate() {
        let (cycles, count) = attrib.llc_demand(i);
        let prof_amat = if count == 0 {
            0.0
        } else {
            cycles as f64 / count as f64
        };
        println!(
            "{i:<6} {:>10} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            c.llc_accesses,
            prof_amat,
            c.amat_llc(),
            c.camat_llc(),
            c.overlap_savings_llc(),
        );
    }
    let combined = attrib.combined();
    let dram_cycles: u64 = [Stage::DramQueue, Stage::DramService, Stage::DramTransfer]
        .iter()
        .map(|&s| combined.stages[s as usize])
        .sum();
    println!(
        "DRAM: avg_read_latency(model)={:.1} cycles; profiler DRAM-stage share={:.1}% of {} \
         attributed cycles",
        r.results.dram_avg_latency,
        if combined.latency_cycles == 0 {
            0.0
        } else {
            100.0 * dram_cycles as f64 / combined.latency_cycles as f64
        },
        combined.latency_cycles,
    );
    println!();
}

/// Hard invariants; any violation fails the run.
fn reconcile(r: &SchemeResult) -> Vec<String> {
    let attrib = r.attrib.as_ref().unwrap();
    let mut failures = Vec::new();
    if !cfg!(feature = "telemetry") {
        // the hot path compiles the profiler out; nothing to reconcile
        return failures;
    }
    if attrib.total_requests() == 0 {
        failures.push("profiler recorded no requests".to_string());
    }
    if attrib.mismatches() != 0 {
        failures.push(format!(
            "{} spans whose stage sums != end-to-end latency",
            attrib.mismatches()
        ));
    }
    for (i, c) in r.results.per_core.iter().enumerate() {
        let (cycles, count) = attrib.llc_demand(i);
        if count != c.llc_accesses {
            failures.push(format!(
                "core {i}: profiler saw {count} LLC demand requests, CamatTracker {}",
                c.llc_accesses
            ));
        }
        if cycles != c.llc_latency_cycles {
            failures.push(format!(
                "core {i}: profiler LLC latency sum {cycles} != CamatTracker {}",
                c.llc_latency_cycles
            ));
        }
    }
    failures
}

fn bench_json(params: &RunParams, r: &SchemeResult, elapsed: f64, reconciled: bool) -> String {
    let attrib = r.attrib.as_ref().unwrap();
    let combined = attrib.combined();
    let total_instr = params.instructions * params.cores as u64;
    let sims_per_sec = if elapsed > 0.0 {
        total_instr as f64 / elapsed
    } else {
        0.0
    };
    let stage_sums: Vec<String> = Stage::ALL
        .iter()
        .map(|&s| format!("\"{}\":{}", s.name(), combined.stages[s as usize]))
        .collect();
    format!(
        "{{\"name\":\"profile_smoke\",\"cores\":{},\"instructions\":{},\"elapsed_sec\":{:.3},\
         \"sims_per_sec\":{:.1},\"requests\":{},\"mismatches\":{},\
         \"attrib_latency_cycles\":{},\"attrib_stage_cycles\":{{{}}},\"reconciled\":{}}}\n",
        params.cores,
        total_instr,
        elapsed,
        sims_per_sec,
        attrib.total_requests(),
        attrib.mismatches(),
        combined.latency_cycles,
        stage_sums.join(","),
        reconciled,
    )
}
