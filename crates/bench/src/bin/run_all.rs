//! Replays every experiment binary in sequence (the full reproduction).
//! Pass `--quick` to forward a reduced instruction budget to each.

use std::process::Command;

// fig06_4core_spec emits the Fig. 7/8/9 tables from the same pass, so
// their standalone binaries are not replayed here.
const EXPERIMENTS: &[&str] = &[
    "tab03_overhead",
    "tab04_overhead_cmp",
    "fig06_4core_spec",
    "fig02_unused_blocks",
    "fig03_prefetcher_sensitivity",
    "fig10_hetero_4core",
    "fig12_nchrome",
    "fig15_features",
    "fig14_prefetch_schemes",
    "tab07_fifo_size",
    "fig16_hyperparams",
    "fig11_scalability",
    "fig13_gap",
    "fig01_16core",
];

fn main() {
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for exp in EXPERIMENTS {
        println!("\n########## {exp} ##########");
        let status = Command::new(exe_dir.join(exp))
            .args(&forwarded)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        assert!(status.success(), "{exp} failed");
    }
    println!("\nAll experiments complete; tables in results/*.tsv");
}
