//! The full reproduction: every experiment scheduled as one grid.
//!
//! The overhead tables (III/IV) run inline first — they are pure
//! arithmetic. Every simulation cell of every figure/table then goes
//! into a single work-stealing grid (`--jobs N`, default: available
//! parallelism) with per-cell fault isolation, retries, and a
//! checkpoint manifest (`results/manifest.jsonl`; rerun with
//! `--resume` to skip completed cells). Tables are assembled
//! per-experiment from the grid outcomes once it drains.
//!
//! A failed cell no longer aborts the replay: remaining cells still
//! run, its table entries surface as NaN, the failure summary lists it,
//! and the exit status is non-zero only when permanent failures remain.
//!
//! Pass `--quick` for a reduced instruction budget, and
//! `--homo-workloads N` / `--mixes N` to cap the grid for smoke runs.

use chrome_bench::experiments::overheads;
use chrome_bench::{all_plans, run_plans, RunParams};

fn main() {
    let params = RunParams::from_args();
    println!("########## tab03_overhead ##########");
    overheads::tab03();
    println!("\n########## tab04_overhead_cmp ##########");
    overheads::tab04();
    let code = run_plans(&params, all_plans(&params));
    if code == 0 {
        println!("\nAll experiments complete; tables in results/*.tsv");
    } else {
        eprintln!("\nSome cells failed permanently; see summary above.");
    }
    std::process::exit(code);
}
