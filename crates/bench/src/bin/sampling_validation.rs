//! Sampling validation: sampled-vs-full error table through the grid
//! engine (`--jobs`, `--retries`, `--resume`, `--manifest`).
//!
//! Requires `--trace-dir` with traces recorded at the sampling
//! granularity (the `simpoint` bin's `--record-missing` records them;
//! the operating point is 5000-instruction intervals). `--sampling`
//! selects the spec for the sampled cells only — the global grid axis
//! is cleared before execution so the paired full-reference cells stay
//! unsampled.

use chrome_bench::experiments::sampling;
use chrome_bench::{run_plans, RunParams};

fn main() {
    let mut params = RunParams::from_args();
    // the plan reads the spec from `params.sampling` and pre-sets it
    // on its sampled cells; leaving the global axis set would sample
    // the full-reference cells too
    let plan = sampling::plan(&params);
    params.sampling = None;
    std::process::exit(run_plans(&params, vec![plan]));
}
