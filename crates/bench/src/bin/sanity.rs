//! Quick end-to-end sanity check: CHROME vs LRU on a few workloads.
//! Not a paper experiment; used to validate the stack and gauge speed.

use std::time::Instant;

use chrome_bench::{run_workload, RunParams};

fn main() {
    let params = RunParams::from_args();
    println!("params: {params:?}");
    for wl in ["libquantum", "mcf", "soplex", "gcc"] {
        for scheme in [
            "LRU",
            "SHiP++",
            "Hawkeye",
            "Glider",
            "Mockingjay",
            "CARE",
            "CHROME",
        ] {
            let t0 = Instant::now();
            let r = run_workload(&params, wl, scheme);
            let dt = t0.elapsed().as_secs_f64();
            let l1 = &r.results.l1d[0];
            println!(
                "{wl:<12} {scheme:<11} ipc={:.3} llcM%={:.0} ephr={:.2} byp={:.2} \
                 l1m%={:.0} l1pf={} llc_dA={} llc_pA={} dram_r={} dlat={:.0} [{dt:.1}s]",
                r.ipc_sum(),
                100.0 * r.results.llc.demand_miss_ratio(),
                r.results.llc.ephr(),
                r.results.llc.bypass_coverage(),
                100.0 * l1.demand_miss_ratio(),
                l1.prefetch_fills,
                r.results.llc.demand_accesses,
                r.results.llc.prefetch_accesses,
                r.results.dram_reads,
                r.results.dram_avg_latency,
            );
        }
    }
}
