//! NoC scaling sweep: CHROME vs LRU at 16 and 64 cores with the mesh
//! NoC on and the LLC sliced one-per-four-cores.
//!
//! Thin wrapper: builds the plan and executes it on the grid engine
//! (`--jobs`, `--retries`, `--resume`, `--manifest`). `--mixes N`
//! controls heterogeneous mixes per core count; `--noc`/`--step-workers`
//! are accepted but the plan supplies its own per-cell values.

use chrome_bench::experiments::scaling;
use chrome_bench::{run_plans, RunParams};

fn main() {
    let params = RunParams::from_args();
    std::process::exit(run_plans(&params, vec![scaling::plan(&params)]));
}
