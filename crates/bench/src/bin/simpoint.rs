//! Representative-interval sampling toolkit.
//!
//! ```text
//! simpoint cluster  --trace FILE --sampling k=<k>,ramp=<n> [--base-seed N]
//! simpoint inspect  --trace FILE [--csv PATH]
//! simpoint validate --trace-dir DIR [--sampling SPEC] [--scheme NAME]
//!                   [--workloads N] [--cores N] [--instructions N]
//!                   [--warmup N] [--interval N] [--base-seed N] [--jobs N]
//!                   [--record-missing] [--out-table PATH] [--manifest PATH]
//!                   [--resume] [--ipc-tol PCT] [--mpki-tol PCT]
//!                   [--min-reduction X] [--check-kernels] [--no-progress]
//! ```
//!
//! * `cluster` — build and print the deterministic sampling plan for one
//!   trace: representative intervals, cluster weights, per-core start
//!   positions and the detail-reduction factor.
//! * `inspect` — dump the per-interval feature matrix (raw and
//!   normalized) the clustering runs on.
//! * `validate` — run full and sampled simulations for every registered
//!   workload against recorded traces, emit the sampled-vs-full error
//!   table (`results/sampling_validation.tsv` and `--out-table`), and
//!   gate: IPC and MPKI within the tolerances on EVERY workload while
//!   simulating at least `--min-reduction` times fewer detailed
//!   instructions. `--check-kernels` additionally reruns each sampled
//!   replay on the reference kernel and requires identical results.
//!
//! Exit codes: 0 pass, 1 gate/validation failure, 2 usage error.

use std::path::PathBuf;
use std::process::exit;

use chrome_bench::experiments::sampling;
use chrome_bench::grid::{run_grid, sampled_cell_result};
use chrome_bench::RunParams;
use chrome_exec::{workload_seed, CellSpec};
use chrome_sim::Kernel;
use chrome_simpoint::features::DIM_NAMES;
use chrome_simpoint::{build_plan, extract_features, ErrorRow, SamplingSpec};
use chrome_tracefile::recorder::record_workload;
use chrome_tracefile::{Codec, TraceFile, TraceIndex};

fn usage() -> ! {
    eprintln!(
        "usage: simpoint cluster --trace FILE --sampling k=<k>,ramp=<n> [--base-seed N]\n\
         \x20      simpoint inspect --trace FILE [--csv PATH]\n\
         \x20      simpoint validate --trace-dir DIR [--sampling SPEC] [--scheme NAME]\n\
         \x20               [--workloads N] [--cores N] [--instructions N] [--warmup N]\n\
         \x20               [--interval N] [--base-seed N] [--jobs N] [--record-missing]\n\
         \x20               [--out-table PATH] [--manifest PATH] [--resume]\n\
         \x20               [--ipc-tol PCT] [--mpki-tol PCT] [--min-reduction X]\n\
         \x20               [--check-kernels] [--no-progress]"
    );
    exit(2);
}

struct Options {
    command: String,
    trace: Option<PathBuf>,
    trace_dir: Option<PathBuf>,
    sampling: String,
    scheme: String,
    workloads: Option<usize>,
    cores: usize,
    instructions: u64,
    warmup: u64,
    interval: u64,
    base_seed: u64,
    jobs: Option<usize>,
    record_missing: bool,
    out_table: Option<PathBuf>,
    csv: Option<PathBuf>,
    manifest: Option<PathBuf>,
    resume: bool,
    ipc_tol: f64,
    mpki_tol: f64,
    min_reduction: f64,
    check_kernels: bool,
    progress: bool,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        command: args.first().cloned().unwrap_or_default(),
        trace: None,
        trace_dir: None,
        sampling: "k=26,ramp=2200,reps=3".to_string(),
        scheme: "LRU".to_string(),
        workloads: None,
        cores: 1,
        instructions: 6_000_000,
        warmup: 60_000,
        interval: 5_000,
        base_seed: 0x5EED,
        jobs: None,
        record_missing: false,
        out_table: None,
        csv: None,
        manifest: None,
        resume: false,
        ipc_tol: 3.0,
        mpki_tol: 3.0,
        min_reduction: 10.0,
        check_kernels: false,
        progress: true,
    };
    if opts.command.is_empty() {
        usage();
    }
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => {
                i += 1;
                opts.trace = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--trace-dir" => {
                i += 1;
                opts.trace_dir = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--sampling" => {
                i += 1;
                opts.sampling = args.get(i).unwrap_or_else(|| usage()).clone();
            }
            "--scheme" => {
                i += 1;
                opts.scheme = args.get(i).unwrap_or_else(|| usage()).clone();
            }
            "--workloads" => {
                i += 1;
                opts.workloads = Some(args[i].parse().expect("--workloads takes a number"));
            }
            "--cores" => {
                i += 1;
                opts.cores = args[i].parse().expect("--cores takes a number");
            }
            "--instructions" => {
                i += 1;
                opts.instructions = args[i].parse().expect("--instructions takes a number");
            }
            "--warmup" => {
                i += 1;
                opts.warmup = args[i].parse().expect("--warmup takes a number");
            }
            "--interval" => {
                i += 1;
                opts.interval = args[i].parse().expect("--interval takes a number");
            }
            "--base-seed" => {
                i += 1;
                opts.base_seed = args[i].parse().expect("--base-seed takes a number");
            }
            "--jobs" => {
                i += 1;
                opts.jobs = Some(args[i].parse().expect("--jobs takes a number"));
            }
            "--record-missing" => opts.record_missing = true,
            "--out-table" => {
                i += 1;
                opts.out_table = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--csv" => {
                i += 1;
                opts.csv = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--manifest" => {
                i += 1;
                opts.manifest = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--resume" => opts.resume = true,
            "--ipc-tol" => {
                i += 1;
                opts.ipc_tol = args[i].parse().expect("--ipc-tol takes a percentage");
            }
            "--mpki-tol" => {
                i += 1;
                opts.mpki_tol = args[i].parse().expect("--mpki-tol takes a percentage");
            }
            "--min-reduction" => {
                i += 1;
                opts.min_reduction = args[i].parse().expect("--min-reduction takes a factor");
            }
            "--check-kernels" => opts.check_kernels = true,
            "--no-progress" => opts.progress = false,
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
        i += 1;
    }
    opts
}

fn spec_of(opts: &Options) -> SamplingSpec {
    SamplingSpec::parse(&opts.sampling).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(2);
    })
}

/// `cluster`: print the deterministic sampling plan for one trace.
fn cluster(opts: &Options) -> i32 {
    let path = opts.trace.clone().unwrap_or_else(|| usage());
    let spec = spec_of(opts);
    let tf = TraceFile::open(&path).unwrap_or_else(|e| {
        eprintln!("opening {}: {e}", path.display());
        exit(1);
    });
    let m = tf.manifest();
    // cluster with the trace's own generator seed, exactly as grid
    // cells do (their workload seed IS the generator seed)
    let seed = m
        .spec_field("seed")
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(opts.base_seed);
    let plan = match build_plan(&tf, spec, seed) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("building plan: {e}");
            return 1;
        }
    };
    println!(
        "trace: {} ({} cores, {} instructions/core, interval {})",
        path.display(),
        m.cores.len(),
        m.cores.first().map_or(0, |c| c.instructions),
        m.interval_instr,
    );
    println!(
        "plan: {} segments over {} aligned instructions, seed {seed:#x}",
        plan.segments.len(),
        plan.total_instructions,
    );
    println!("interval  weight    detail  starts");
    for seg in &plan.segments {
        let starts: Vec<String> = seg.start.iter().map(u64::to_string).collect();
        println!(
            "{:>8}  {:.6}  {:>8}  {}",
            seg.interval,
            seg.weight,
            seg.detail,
            starts.join(",")
        );
    }
    println!(
        "detailed instructions/core: {} (ramp {} per segment)",
        plan.detailed_instructions, plan.spec.ramp,
    );
    0
}

/// `inspect`: dump the per-interval feature matrix.
fn inspect(opts: &Options) -> i32 {
    let path = opts.trace.clone().unwrap_or_else(|| usage());
    let tf = TraceFile::open(&path).unwrap_or_else(|e| {
        eprintln!("opening {}: {e}", path.display());
        exit(1);
    });
    let cores = tf.manifest().cores.len();
    let mut per_core = Vec::with_capacity(cores);
    for c in 0..cores {
        match tf.intervals_for(c) {
            Ok(iv) => per_core.push(iv),
            Err(e) => {
                eprintln!("intervals for core {c}: {e}");
                return 1;
            }
        }
    }
    let fs = extract_features(&per_core);
    let mut out = String::from("interval,instructions");
    for n in DIM_NAMES {
        out.push_str(&format!(",{n}"));
    }
    for n in DIM_NAMES {
        out.push_str(&format!(",norm_{n}"));
    }
    out.push('\n');
    for j in 0..fs.len() {
        out.push_str(&format!("{j},{}", fs.instructions[j]));
        for v in fs.raw[j] {
            out.push_str(&format!(",{v}"));
        }
        for v in fs.norm[j] {
            out.push_str(&format!(",{v}"));
        }
        out.push('\n');
    }
    match &opts.csv {
        Some(p) => {
            if let Err(e) = std::fs::write(p, &out) {
                eprintln!("writing {}: {e}", p.display());
                return 1;
            }
            println!("inspect: wrote {} intervals to {}", fs.len(), p.display());
        }
        None => print!("{out}"),
    }
    0
}

/// Record any missing validation traces into `dir`.
fn record_missing(opts: &Options, dir: &std::path::Path, workloads: &[String]) {
    let index = TraceIndex::scan(dir).unwrap_or_else(|e| {
        eprintln!("scanning {}: {e}", dir.display());
        exit(1);
    });
    // quota past the measured end: fetch cursors lead retirement by the
    // ROB contents, so the recording must cover the runahead too
    let quota = opts.warmup + opts.instructions + 50_000;
    for wl in workloads {
        let seed = workload_seed(wl, opts.cores as u32, opts.base_seed);
        if index.lookup(wl, opts.cores, seed).is_some() {
            continue;
        }
        let name = format!("{}_c{}_s{seed:x}.ctf", wl.replace('+', "-"), opts.cores);
        let path = dir.join(name);
        eprintln!("recording {} ({} instructions/core)", path.display(), quota);
        record_workload(
            &path,
            wl,
            opts.cores,
            seed,
            quota,
            Codec::Compact,
            opts.interval,
        )
        .unwrap_or_else(|e| {
            eprintln!("recording {wl}: {e}");
            exit(1);
        });
    }
}

/// Rerun every sampled cell on the reference kernel and demand
/// result-identity with the event-driven run.
fn check_kernels(opts: &Options, params: &RunParams, workloads: &[String]) -> usize {
    let dir = opts.trace_dir.clone().expect("checked in validate");
    let index = TraceIndex::scan(&dir).unwrap_or_else(|e| {
        eprintln!("scanning {}: {e}", dir.display());
        exit(1);
    });
    let spec = spec_of(opts);
    let mut mismatches = 0;
    for wl in workloads {
        let seed = workload_seed(wl, opts.cores as u32, opts.base_seed);
        let Some(entry) = index.lookup(wl, opts.cores, seed) else {
            eprintln!("kernel check: no trace for {wl}, skipping");
            mismatches += 1;
            continue;
        };
        let tf = TraceFile::open(&entry.path).unwrap_or_else(|e| {
            eprintln!("opening {}: {e}", entry.path.display());
            exit(1);
        });
        let cell = CellSpec {
            experiment: sampling::NAME.to_string(),
            workload: wl.clone(),
            scheme: opts.scheme.clone(),
            cores: opts.cores as u32,
            instructions: opts.instructions,
            warmup: opts.warmup,
            seed: opts.base_seed,
            prefetch: "paper".to_string(),
            track_unused: false,
            record_epochs: false,
            trace: entry.hash_hex(),
            sampling: opts.sampling.clone(),
            noc: String::new(),
            workers: 0,
        };
        let plan = chrome_simpoint::build_plan_windowed(
            &tf,
            spec,
            cell.workload_seed(),
            cell.warmup,
            cell.instructions,
        )
        .unwrap_or_else(|e| {
            eprintln!("plan for {wl}: {e}");
            exit(1);
        });
        let event = sampled_cell_result(&cell, params, &tf, &plan, Kernel::EventDriven);
        let reference = sampled_cell_result(&cell, params, &tf, &plan, Kernel::Reference);
        if event == reference {
            eprintln!("kernel check: {wl} identical");
        } else {
            eprintln!("kernel check: {wl} DIVERGED between kernels");
            mismatches += 1;
        }
    }
    mismatches
}

/// `validate`: full-vs-sampled error table with a hard gate.
fn validate(opts: &Options) -> i32 {
    let dir = opts.trace_dir.clone().unwrap_or_else(|| usage());
    spec_of(opts); // reject malformed specs before any work
    let params = RunParams {
        cores: opts.cores,
        instructions: opts.instructions,
        warmup: opts.warmup,
        seed: opts.base_seed,
        jobs: opts.jobs,
        resume: opts.resume,
        manifest: opts.manifest.clone(),
        trace_dir: Some(dir.clone()),
        homo_workloads: opts.workloads,
        progress: opts.progress,
        // cells carry their own sampling spec; the global axis would
        // sample the full-reference cells too
        sampling: None,
        ..RunParams::default()
    };
    let workloads = sampling::workloads(&params);
    if opts.record_missing {
        std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
            eprintln!("creating {}: {e}", dir.display());
            exit(1);
        });
        record_missing(opts, &dir, &workloads);
    }
    let cells = sampling::cells(&params, &workloads, &opts.scheme, &opts.sampling);
    let report = run_grid(&params, cells);
    let rows = sampling::error_rows(&workloads, &report.outcomes);
    sampling::table(&rows).finish().unwrap_or_else(|e| {
        eprintln!("writing results table: {e}");
        exit(1);
    });
    if let Some(path) = &opts.out_table {
        let mut tsv = ErrorRow::header();
        tsv.push('\n');
        for r in &rows {
            tsv.push_str(&r.render());
            tsv.push('\n');
        }
        if let Err(e) = std::fs::write(path, tsv) {
            eprintln!("writing {}: {e}", path.display());
            return 1;
        }
        eprintln!("validate: wrote {}", path.display());
    }

    let mut failures = 0usize;
    if rows.len() != workloads.len() {
        eprintln!(
            "validate: only {} of {} workloads produced paired results",
            rows.len(),
            workloads.len()
        );
        failures += workloads.len() - rows.len();
    }
    for r in &rows {
        let mut bad = Vec::new();
        if r.ipc_err_pct() > opts.ipc_tol {
            bad.push(format!(
                "ipc err {:.2}% > {:.2}%",
                r.ipc_err_pct(),
                opts.ipc_tol
            ));
        }
        if r.mpki_err_pct() > opts.mpki_tol {
            bad.push(format!(
                "mpki err {:.2}% > {:.2}%",
                r.mpki_err_pct(),
                opts.mpki_tol
            ));
        }
        if r.reduction < opts.min_reduction {
            bad.push(format!(
                "reduction {:.1}x < {:.1}x",
                r.reduction, opts.min_reduction
            ));
        }
        if !bad.is_empty() {
            eprintln!("validate: {} FAILED: {}", r.workload, bad.join(", "));
            failures += 1;
        }
    }
    if opts.check_kernels {
        failures += check_kernels(opts, &params, &workloads);
    }
    if failures == 0 {
        eprintln!(
            "validate: PASS — {} workloads within ±{:.1}% IPC / ±{:.1}% MPKI at ≥{:.1}x reduction",
            rows.len(),
            opts.ipc_tol,
            opts.mpki_tol,
            opts.min_reduction
        );
        0
    } else {
        eprintln!("validate: FAIL — {failures} check(s) failed");
        1
    }
}

fn main() {
    let opts = parse_args();
    let code = match opts.command.as_str() {
        "cluster" => cluster(&opts),
        "inspect" => inspect(&opts),
        "validate" => validate(&opts),
        _ => usage(),
    };
    exit(code);
}
