//! Table III: CHROME storage-overhead breakdown for the 4-core, 12MB,
//! 12-way LLC configuration.

use chrome_core::{Chrome, ChromeConfig};
use chrome_sim::{LlcPolicy, SimConfig};

fn main() {
    let cfg = SimConfig::with_cores(4);
    let llc_blocks = cfg.llc().sets() * cfg.llc_ways;
    let chrome = Chrome::new(ChromeConfig::default());
    let overhead = chrome.storage_overhead(llc_blocks);
    println!(
        "{}",
        overhead.render("Table III: CHROME storage overhead (4-core, 12MB LLC)")
    );
    println!(
        "paper total: 92.70 KB; measured: {:.2} KB",
        overhead.total_kib()
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write(
        "results/tab03_overhead.tsv",
        overhead
            .iter()
            .map(|(n, b)| format!("{n}\t{:.2}", b as f64 / 8.0 / 1024.0))
            .collect::<Vec<_>>()
            .join("\n")
            + &format!("\nTOTAL\t{:.2}\n", overhead.total_kib()),
    )
    .expect("write tsv");
}
