//! Table III: CHROME storage-overhead breakdown for the 4-core, 12MB,
//! 12-way LLC configuration.

use chrome_bench::experiments::overheads;

fn main() {
    overheads::tab03();
}
