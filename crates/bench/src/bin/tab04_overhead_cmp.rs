//! Table IV: storage overhead across schemes (4-core, 12-way, 12MB LLC),
//! with the holistic / concurrency-aware capability matrix.

use chrome_bench::build_any_policy;
use chrome_bench::TableWriter;
use chrome_core::{Chrome, ChromeConfig};
use chrome_sim::{LlcPolicy, SimConfig};

fn main() {
    let cfg = SimConfig::with_cores(4);
    let llc_blocks = cfg.llc().sets() * cfg.llc_ways;
    let mut table = TableWriter::new(
        "tab04_overhead_cmp",
        &[
            "scheme",
            "holistic",
            "concurrency_aware",
            "overhead_kb",
            "paper_kb",
        ],
    );
    let rows: [(&str, &str, &str, f64); 5] = [
        ("Hawkeye", "No", "No", 146.0),
        ("Glider", "No", "No", 254.0),
        ("Mockingjay", "Yes", "No", 170.6),
        ("CARE", "No", "Yes", 130.5),
        ("CHROME", "Yes", "Yes", 92.7),
    ];
    for (scheme, holistic, conc, paper_kb) in rows {
        let overhead = if scheme == "CHROME" {
            // hardware budget uses the paper's 64-sampled-set config
            Chrome::new(ChromeConfig::default()).storage_overhead(llc_blocks)
        } else {
            build_any_policy(scheme)
                .expect("known scheme")
                .storage_overhead(llc_blocks)
        };
        table.row(vec![
            scheme.to_string(),
            holistic.to_string(),
            conc.to_string(),
            format!("{:.1}", overhead.total_kib()),
            format!("{paper_kb:.1}"),
        ]);
    }
    table.finish().expect("write results");
}
