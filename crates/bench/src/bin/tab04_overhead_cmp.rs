//! Table IV: storage overhead across schemes (4-core, 12-way, 12MB LLC),
//! with the holistic / concurrency-aware capability matrix.

use chrome_bench::experiments::overheads;

fn main() {
    overheads::tab04();
}
