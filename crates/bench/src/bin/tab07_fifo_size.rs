//! Table VII: EQ FIFO-size sweep — speedup over LRU, UPKSA, and the
//! EQ storage overhead.
//!
//! Thin wrapper: builds the plan and executes it on the grid engine
//! (`--jobs`, `--retries`, `--resume`, `--manifest`).

use chrome_bench::experiments::tab07;
use chrome_bench::{run_plans, RunParams};

fn main() {
    let params = RunParams::from_args();
    std::process::exit(run_plans(&params, vec![tab07::plan(&params)]));
}
