//! Table VII: EQ FIFO-size sweep — speedup over LRU, Q-table updates
//! per kilo sampled accesses (UPKSA), and the EQ storage overhead.

use chrome_bench::{geomean, run_workload, RunParams, TableWriter};
use chrome_traces::spec::spec_workloads;

fn main() {
    let mut params = RunParams::from_args_ignoring(&["--homo-workloads"]);
    params.record_epochs = true;
    let homo_count = RunParams::arg_usize("--homo-workloads", 8);
    let workloads: Vec<&str> = spec_workloads().into_iter().take(homo_count).collect();
    let bases: Vec<_> = workloads
        .iter()
        .map(|wl| run_workload(&params, wl, "LRU"))
        .collect();
    let mut table = TableWriter::new(
        "tab07_fifo_size",
        &[
            "fifo_size",
            "speedup_pct",
            "upksa",
            "eq_occupancy",
            "eq_overflows",
            "overhead_kb_64q",
        ],
    );
    for fifo in [12usize, 16, 20, 24, 28, 32, 36] {
        let scheme = format!("CHROME-fifo={fifo}");
        let mut speedups = Vec::new();
        let mut upksa_sum = 0.0;
        let mut n = 0u32;
        let mut occ_sum = 0.0;
        let mut overflow_sum = 0.0;
        for (wl, base) in workloads.iter().zip(&bases) {
            let r = run_workload(&params, wl, &scheme);
            speedups.push(r.weighted_speedup_vs(base));
            if let Some((_, v)) = r.report.iter().find(|(k, _)| k == "upksa") {
                upksa_sum += v;
                n += 1;
            }
            // EQ state from the final epoch record: mean FIFO occupancy
            // and cumulative overflow evictions at end of run
            if let Some(last) = r.epochs.records().last() {
                occ_sum += last.policy.eq_occupancy;
                overflow_sum += last.policy.eq_overflows as f64;
            }
        }
        // Table VII reports the EQ storage at the paper's 64 queues
        let overhead_kb = 64.0 * fifo as f64 * 58.0 / 8.0 / 1024.0;
        let wls = workloads.len().max(1) as f64;
        table.row_f(
            &fifo.to_string(),
            &[
                (geomean(&speedups) - 1.0) * 100.0,
                upksa_sum / n.max(1) as f64,
                occ_sum / wls,
                overflow_sum / wls,
                overhead_kb,
            ],
        );
        eprintln!("done fifo={fifo}");
    }
    table.finish().expect("write results");
}
