//! Simulator-throughput microbenchmark: wall-clock cost of the paper
//! grid's inner loop, per scheme, under both scheduling kernels.
//!
//! For every scheme the binary runs the same homogeneous workload twice
//! — once under the event-driven kernel, once under the naive reference
//! stepper — and reports simulated-cycles/second, MIPS (millions of
//! simulated instructions per wall second) and the event-vs-reference
//! speedup. The differential tests guarantee both runs produce
//! identical results, so the ratio is a pure scheduling-overhead
//! measurement.
//!
//! ```text
//! throughput [--workload W] [--schemes A,B,...] [--out FILE]
//!            [--baseline FILE] [common flags: --quick, --cores, ...]
//! ```
//!
//! With `--out FILE` a machine-readable summary is written (the
//! checked-in `BENCH_sim_throughput.json` is one of these). With
//! `--baseline FILE` the run exits non-zero if aggregate MIPS fell more
//! than 30% below the baseline's — the CI perf-smoke regression gate.

use std::time::Instant;

use chrome_bench::registry::{all_schemes, build_any_policy};
use chrome_bench::runner::RunParams;
use chrome_exec::json;
use chrome_sim::{Kernel, System};
use chrome_traces::mix;

/// Tolerated MIPS regression vs the checked-in baseline (CI gate).
const MIPS_REGRESSION_FLOOR: f64 = 0.7;

fn arg_string(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

struct SchemeTiming {
    scheme: String,
    sim_cycles: u64,
    instructions: u64,
    event_elapsed: f64,
    reference_elapsed: f64,
}

impl SchemeTiming {
    fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.event_elapsed
    }

    fn mips(&self) -> f64 {
        self.instructions as f64 / self.event_elapsed / 1e6
    }

    fn speedup(&self) -> f64 {
        self.reference_elapsed / self.event_elapsed
    }
}

/// Run one (scheme, kernel) cell and return (elapsed seconds, measured
/// simulated cycles).
fn time_cell(params: &RunParams, workload: &str, scheme: &str, kernel: Kernel) -> (f64, u64) {
    let traces = mix::homogeneous(workload, params.cores, params.seed)
        .unwrap_or_else(|| panic!("unknown workload {workload}"));
    let policy = build_any_policy(scheme).unwrap_or_else(|| panic!("unknown scheme {scheme}"));
    let mut sys = System::with_policy(params.sim_config(), traces, policy);
    let t0 = Instant::now();
    let results = sys.run_with_kernel(params.instructions, params.warmup, kernel);
    (t0.elapsed().as_secs_f64().max(1e-9), results.total_cycles)
}

fn main() {
    let params = RunParams::from_args_ignoring(&["--workload", "--schemes", "--out", "--baseline"]);
    let workload = arg_string("--workload").unwrap_or_else(|| "mcf".to_string());
    let schemes: Vec<String> = match arg_string("--schemes") {
        Some(s) => s
            .split(',')
            .filter(|x| !x.is_empty())
            .map(Into::into)
            .collect(),
        None => all_schemes().iter().map(|s| s.to_string()).collect(),
    };

    println!(
        "== sim throughput: {workload}, {} cores, {} instr/core, warmup {} ==",
        params.cores, params.instructions, params.warmup
    );
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "scheme", "Mcycles/s", "MIPS", "event(s)", "ref(s)", "speedup"
    );

    let mut rows = Vec::with_capacity(schemes.len());
    for scheme in &schemes {
        let (event_elapsed, sim_cycles) =
            time_cell(&params, &workload, scheme, Kernel::EventDriven);
        let (reference_elapsed, ref_cycles) =
            time_cell(&params, &workload, scheme, Kernel::Reference);
        assert_eq!(
            sim_cycles, ref_cycles,
            "kernels must simulate identical cycle counts ({scheme})"
        );
        let row = SchemeTiming {
            scheme: scheme.clone(),
            sim_cycles,
            instructions: params.instructions * params.cores as u64,
            event_elapsed,
            reference_elapsed,
        };
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>10.3} {:>10.3} {:>8.2}x",
            row.scheme,
            row.cycles_per_sec() / 1e6,
            row.mips(),
            row.event_elapsed,
            row.reference_elapsed,
            row.speedup()
        );
        rows.push(row);
    }

    let total_instr: u64 = rows.iter().map(|r| r.instructions).sum();
    let total_event: f64 = rows.iter().map(|r| r.event_elapsed).sum();
    let total_ref: f64 = rows.iter().map(|r| r.reference_elapsed).sum();
    let aggregate_mips = total_instr as f64 / total_event / 1e6;
    let aggregate_speedup = total_ref / total_event;
    println!(
        "aggregate: {aggregate_mips:.2} MIPS, event-driven speedup {aggregate_speedup:.2}x over \
         reference"
    );

    if let Some(path) = arg_string("--out") {
        let payload = render_json(&params, &workload, &rows, aggregate_mips, aggregate_speedup);
        std::fs::write(&path, payload).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }

    if let Some(path) = arg_string("--baseline") {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let doc = json::parse(&text).unwrap_or_else(|| panic!("{path}: malformed JSON"));
        let base_mips = doc
            .get("aggregate_mips")
            .and_then(json::JsonValue::as_f64)
            .unwrap_or_else(|| panic!("{path}: missing aggregate_mips"));
        let floor = base_mips * MIPS_REGRESSION_FLOOR;
        println!(
            "baseline gate: current {aggregate_mips:.2} MIPS vs baseline {base_mips:.2} \
             (floor {floor:.2})"
        );
        if aggregate_mips < floor {
            eprintln!(
                "THROUGHPUT REGRESSION: {aggregate_mips:.2} MIPS is more than 30% below the \
                 baseline {base_mips:.2}"
            );
            std::process::exit(1);
        }
    }
}

/// A JSON string literal (escaped and quoted).
fn quoted(s: &str) -> String {
    format!("\"{}\"", json::escape(s))
}

fn render_json(
    params: &RunParams,
    workload: &str,
    rows: &[SchemeTiming],
    aggregate_mips: f64,
    aggregate_speedup: f64,
) -> String {
    let scheme_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"scheme\":{},\"sim_cycles\":{},\"instructions\":{},\
                 \"event_elapsed_sec\":{:.3},\"reference_elapsed_sec\":{:.3},\
                 \"sim_cycles_per_sec\":{:.0},\"mips\":{:.3},\"speedup\":{:.3}}}",
                quoted(&r.scheme),
                r.sim_cycles,
                r.instructions,
                r.event_elapsed,
                r.reference_elapsed,
                r.cycles_per_sec(),
                r.mips(),
                r.speedup(),
            )
        })
        .collect();
    format!(
        "{{\n  \"name\": \"sim_throughput\",\n  \"workload\": {},\n  \"cores\": {},\n  \
         \"instructions_per_core\": {},\n  \"warmup_per_core\": {},\n  \"schemes\": [\n{}\n  ],\n  \
         \"aggregate_mips\": {:.3},\n  \"aggregate_speedup\": {:.3}\n}}\n",
        quoted(workload),
        params.cores,
        params.instructions,
        params.warmup,
        scheme_rows.join(",\n"),
        aggregate_mips,
        aggregate_speedup,
    )
}
