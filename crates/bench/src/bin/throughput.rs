//! Simulator-throughput matrix benchmark: wall-clock cost of the paper
//! grid's inner loop across workloads, core counts and schemes.
//!
//! Each cell of the matrix (workload x cores x scheme) is timed under
//! the event-driven kernel with best-of-N repetitions — the minimum
//! elapsed time over `--reps` runs — because the benchmark box is a
//! shared machine whose per-run noise is one-sided (interference only
//! ever makes a run slower). Warmup instructions run *untimed* before
//! the measured region, so small cells are not dominated by cache/page
//! ramp-up. One reference-kernel run per cell provides the
//! event-vs-reference speedup; the differential tests guarantee both
//! kernels produce identical results, so the ratio is a pure
//! scheduling-overhead measurement.
//!
//! ```text
//! throughput [--workloads A,B,...] [--core-counts 1,4,16]
//!            [--schemes A,B,...] [--reps N] [--out FILE]
//!            [--baseline FILE] [common flags: --quick, --seed, ...]
//! ```
//!
//! With `--out FILE` a machine-readable summary is written (the
//! checked-in `BENCH_sim_throughput.json` is one of these). With
//! `--baseline FILE` the run exits non-zero if any matrix cell's MIPS
//! fell more than 10% below the same cell in the baseline, or if the
//! aggregate did — the CI perf-smoke regression gate. Baseline cells
//! with no counterpart in the current run (and vice versa) are skipped,
//! so the gate tolerates matrix reshapes.

use std::time::Instant;

use chrome_bench::registry::build_any_slot;
use chrome_bench::runner::RunParams;
use chrome_exec::json;
use chrome_sim::{Kernel, System};
use chrome_traces::mix;

/// Per-cell and aggregate MIPS floor vs the checked-in baseline: fail
/// on a >10% drop (CI gate). Best-of-N timing keeps the noise inside
/// this band on the shared benchmark box.
const MIPS_REGRESSION_FLOOR: f64 = 0.9;

/// Default measured instructions per core. Small enough that the full
/// 18-cell matrix runs in seconds, large enough that per-cell elapsed
/// time (with warmup untimed) is dominated by the simulation loop.
const DEFAULT_INSTRUCTIONS: u64 = 400_000;
const DEFAULT_WARMUP: u64 = 80_000;

fn arg_string(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_list(name: &str, default: &[&str]) -> Vec<String> {
    match arg_string(name) {
        Some(s) => s
            .split(',')
            .filter(|x| !x.is_empty())
            .map(Into::into)
            .collect(),
        None => default.iter().map(|s| s.to_string()).collect(),
    }
}

#[derive(Clone)]
struct CellTiming {
    workload: String,
    cores: usize,
    scheme: String,
    /// Canonical mesh-NoC spec; empty = uniform-latency LLC. Part of
    /// the cell key (suffix) only when set, so pre-NoC baselines keep
    /// matching their cells.
    noc: String,
    sim_cycles: u64,
    /// Total measured instructions (per-core quota x cores).
    instructions: u64,
    /// Best-of-N event-kernel elapsed seconds.
    event_elapsed: f64,
    /// Single-run reference-kernel elapsed seconds.
    reference_elapsed: f64,
}

impl CellTiming {
    fn mips(&self) -> f64 {
        self.instructions as f64 / self.event_elapsed / 1e6
    }

    fn speedup(&self) -> f64 {
        self.reference_elapsed / self.event_elapsed
    }

    /// Stable identity of a cell across runs (the gate's join key).
    fn key(&self) -> String {
        if self.noc.is_empty() {
            format!("{}/{}c/{}", self.workload, self.cores, self.scheme)
        } else {
            format!("{}/{}c/{}/noc", self.workload, self.cores, self.scheme)
        }
    }
}

/// Run one (workload, cores, scheme, kernel) configuration once:
/// untimed warmup, then a timed measured region. Returns (elapsed
/// seconds, measured simulated cycles).
fn run_once(
    params: &RunParams,
    workload: &str,
    cores: usize,
    scheme: &str,
    noc: &str,
    kernel: Kernel,
) -> (f64, u64) {
    let traces = mix::homogeneous(workload, cores, params.seed)
        .unwrap_or_else(|| panic!("unknown workload {workload}"));
    let policy = build_any_slot(scheme).unwrap_or_else(|| panic!("unknown scheme {scheme}"));
    let mut p = params.clone();
    p.cores = cores;
    p.noc = noc.to_string();
    let mut sys = System::with_policy(p.sim_config(), traces, policy);
    sys.set_step_workers(params.step_workers.max(1));
    // Warm caches, TLBs, DRAM rows and policy state outside the timed
    // region (the warmup quota is measured-but-discarded).
    if params.warmup > 0 {
        sys.run_with_kernel(params.warmup, 0, kernel);
    }
    let t0 = Instant::now();
    let results = sys.run_with_kernel(params.instructions, 0, kernel);
    (t0.elapsed().as_secs_f64().max(1e-9), results.total_cycles)
}

/// Time one matrix cell: best-of-`reps` under the event kernel plus one
/// reference-kernel run, with the cycle-count cross-check.
fn time_cell(
    params: &RunParams,
    workload: &str,
    cores: usize,
    scheme: &str,
    noc: &str,
    reps: usize,
) -> CellTiming {
    let mut event_elapsed = f64::INFINITY;
    let mut sim_cycles = 0;
    for _ in 0..reps.max(1) {
        let (elapsed, cycles) = run_once(params, workload, cores, scheme, noc, Kernel::EventDriven);
        event_elapsed = event_elapsed.min(elapsed);
        sim_cycles = cycles;
    }
    let (reference_elapsed, ref_cycles) =
        run_once(params, workload, cores, scheme, noc, Kernel::Reference);
    assert_eq!(
        sim_cycles, ref_cycles,
        "kernels must simulate identical cycle counts ({workload}/{cores}c/{scheme})"
    );
    CellTiming {
        workload: workload.to_string(),
        cores,
        scheme: scheme.to_string(),
        noc: noc.to_string(),
        sim_cycles,
        instructions: params.instructions * cores as u64,
        event_elapsed,
        reference_elapsed,
    }
}

fn main() {
    let mut params = RunParams::from_args_ignoring(&[
        "--workloads",
        "--core-counts",
        "--schemes",
        "--reps",
        "--out",
        "--baseline",
        "--merge-baseline",
        "--noc-core-counts",
    ]);
    // Bench-specific quota defaults (the library default of 3M/core is
    // sized for experiments, not an 18-cell matrix); explicit
    // --instructions / --warmup still win.
    let args: Vec<String> = std::env::args().collect();
    if !args.iter().any(|a| a == "--instructions") {
        params.instructions = DEFAULT_INSTRUCTIONS;
        if args.iter().any(|a| a == "--quick") {
            params.instructions /= 10;
        }
    }
    if !args.iter().any(|a| a == "--warmup") {
        params.warmup = DEFAULT_WARMUP;
        if args.iter().any(|a| a == "--quick") {
            params.warmup /= 10;
        }
    }

    let workloads = arg_list("--workloads", &["mcf", "libquantum", "bfs-ur"]);
    let core_counts: Vec<usize> = arg_list("--core-counts", &["1", "4", "16"])
        .iter()
        .map(|s| s.parse().expect("--core-counts takes numbers"))
        .collect();
    let schemes = arg_list("--schemes", &["LRU", "CHROME"]);
    let reps: usize = arg_string("--reps").map_or(3, |s| s.parse().expect("--reps takes a number"));

    println!(
        "== sim throughput matrix: {} instr/core, warmup {} (untimed), best of {reps}, probe \
         kernel {} ==",
        params.instructions,
        params.warmup,
        chrome_sim::probe::kernel_name()
    );
    println!(
        "{:<24} {:>12} {:>12} {:>10} {:>9}",
        "cell", "Mcycles/s", "MIPS", "event(s)", "speedup"
    );

    let mut cells = Vec::new();
    let mut run = |workload: &str, cores: usize, scheme: &str, noc: &str| {
        let cell = time_cell(&params, workload, cores, scheme, noc, reps);
        println!(
            "{:<24} {:>12.2} {:>12.2} {:>10.3} {:>8.2}x",
            cell.key(),
            cell.sim_cycles as f64 / cell.event_elapsed / 1e6,
            cell.mips(),
            cell.event_elapsed,
            cell.speedup()
        );
        cells.push(cell);
    };
    for workload in &workloads {
        for &cores in &core_counts {
            for scheme in &schemes {
                run(workload, cores, scheme, "");
            }
        }
    }
    // Mesh-NoC cells: the sliced-LLC hot path (routing, link queues,
    // per-slice accounting) has its own cost profile, so it gets its own
    // gated rows at the scaling sweep's machine sizes. One slice per
    // four cores, matching the scaling_sweep experiment.
    let noc_core_counts: Vec<usize> = arg_list("--noc-core-counts", &["16", "64"])
        .iter()
        .map(|s| s.parse().expect("--noc-core-counts takes numbers"))
        .collect();
    for &cores in &noc_core_counts {
        let noc = chrome_noc::NocConfig {
            slices: (cores / 4).max(1),
            ..chrome_noc::NocConfig::default()
        }
        .canonical();
        for scheme in &schemes {
            run(&workloads[0], cores, scheme, &noc);
        }
    }

    let total_instr: u64 = cells.iter().map(|c| c.instructions).sum();
    let total_event: f64 = cells.iter().map(|c| c.event_elapsed).sum();
    let total_ref: f64 = cells.iter().map(|c| c.reference_elapsed).sum();
    let aggregate_mips = total_instr as f64 / total_event / 1e6;
    let aggregate_speedup = total_ref / total_event;
    println!(
        "aggregate: {aggregate_mips:.2} MIPS, event-driven speedup {aggregate_speedup:.2}x over \
         reference"
    );

    if let Some(path) = arg_string("--out") {
        let payload = render_json(&params, reps, &cells, aggregate_mips, aggregate_speedup);
        std::fs::write(&path, payload).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }

    if let Some(path) = arg_string("--merge-baseline") {
        merge_baseline(&path, &params, reps, cells.as_slice());
    }

    if let Some(path) = arg_string("--baseline") {
        let failures = check_baseline(&path, &params, &cells, aggregate_mips);
        if failures > 0 {
            eprintln!("THROUGHPUT REGRESSION: {failures} gate(s) failed against {path}");
            std::process::exit(1);
        }
    }
}

/// Apply the per-cell and aggregate regression gates against a baseline
/// JSON. Returns the number of failed gates (0 = pass).
///
/// MIPS is not scale-invariant: short `--quick` cells are dominated by
/// fixed per-run costs (system construction, first-touch page mapping),
/// so their throughput sits far below the same cell at full scale.
/// Gates therefore only engage when the baseline was measured at the
/// same per-core instruction count as this run; otherwise the
/// comparison is reported as skipped and passes.
fn check_baseline(
    path: &str,
    params: &RunParams,
    cells: &[CellTiming],
    aggregate_mips: f64,
) -> u32 {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let doc = json::parse(&text).unwrap_or_else(|| panic!("{path}: malformed JSON"));
    let mut failures = 0;

    let base_scale = doc
        .get("instructions_per_core")
        .and_then(json::JsonValue::as_f64);
    if base_scale != Some(params.instructions as f64) {
        println!(
            "baseline {path} was measured at a different instruction scale ({} vs {} per core); \
             MIPS gates skipped",
            base_scale.map_or_else(|| "unknown".to_string(), |s| format!("{s:.0}")),
            params.instructions
        );
        return 0;
    }

    // Per-cell gates over the intersection of the two matrices, while
    // accumulating both sides' matched totals so the aggregate gate
    // compares the *same* cell set (a reduced smoke matrix against a
    // full-matrix baseline would otherwise compare different mixes of
    // cheap and expensive cells).
    let mut matched = 0usize;
    let mut base_instr = 0u64;
    let mut base_elapsed = 0.0f64;
    let mut cur_instr = 0u64;
    let mut cur_elapsed = 0.0f64;
    for base in cells_from_json(path, &doc) {
        let Some(cur) = cells.iter().find(|c| c.key() == base.key()) else {
            continue; // matrix reshapes are not regressions
        };
        matched += 1;
        base_instr += base.instructions;
        base_elapsed += base.event_elapsed;
        cur_instr += cur.instructions;
        cur_elapsed += cur.event_elapsed;
        let base_mips = base.mips();
        let floor = base_mips * MIPS_REGRESSION_FLOOR;
        let cur_mips = cur.mips();
        let verdict = if cur_mips < floor { "FAIL" } else { "ok" };
        println!(
            "gate {:<24} current {cur_mips:>8.2} MIPS vs baseline {base_mips:>8.2} (floor \
             {floor:>8.2}) {verdict}",
            cur.key()
        );
        if cur_mips < floor {
            failures += 1;
        }
    }

    let (label, base_mips, cur_mips) = if matched > 0 {
        (
            "aggregate (matched)",
            base_instr as f64 / base_elapsed / 1e6,
            cur_instr as f64 / cur_elapsed / 1e6,
        )
    } else {
        // No shared cells (e.g. a schema-1 baseline without a cell
        // array): fall back to the stored whole-run aggregate.
        let stored = doc
            .get("aggregate_mips")
            .and_then(json::JsonValue::as_f64)
            .unwrap_or_else(|| panic!("{path}: missing aggregate_mips"));
        ("aggregate", stored, aggregate_mips)
    };
    let floor = base_mips * MIPS_REGRESSION_FLOOR;
    let verdict = if cur_mips < floor { "FAIL" } else { "ok" };
    println!(
        "gate {label:<24} current {cur_mips:>8.2} MIPS vs baseline {base_mips:>8.2} (floor \
         {floor:>8.2}) {verdict}"
    );
    if cur_mips < floor {
        failures += 1;
    }
    failures
}

/// Parse a schema-2 baseline document's cell array back into timings.
fn cells_from_json(path: &str, doc: &json::JsonValue) -> Vec<CellTiming> {
    let Some(rows) = doc.get("cells").and_then(json::JsonValue::as_arr) else {
        return Vec::new();
    };
    rows.iter()
        .map(|row| {
            let field = |name: &str| {
                row.get(name)
                    .unwrap_or_else(|| panic!("{path}: baseline cell missing {name}"))
            };
            CellTiming {
                workload: field("workload")
                    .as_str()
                    .unwrap_or_else(|| panic!("{path}: bad workload"))
                    .to_string(),
                // Absent in pre-NoC baselines: tolerate, meaning "off".
                noc: row
                    .get("noc")
                    .and_then(json::JsonValue::as_str)
                    .unwrap_or("")
                    .to_string(),
                cores: field("cores")
                    .as_u64()
                    .unwrap_or_else(|| panic!("{path}: bad cores")) as usize,
                scheme: field("scheme")
                    .as_str()
                    .unwrap_or_else(|| panic!("{path}: bad scheme"))
                    .to_string(),
                sim_cycles: field("sim_cycles")
                    .as_u64()
                    .unwrap_or_else(|| panic!("{path}: bad sim_cycles")),
                instructions: field("instructions")
                    .as_u64()
                    .unwrap_or_else(|| panic!("{path}: bad instructions")),
                event_elapsed: field("event_elapsed_sec")
                    .as_f64()
                    .unwrap_or_else(|| panic!("{path}: bad event_elapsed_sec")),
                reference_elapsed: field("reference_elapsed_sec")
                    .as_f64()
                    .unwrap_or_else(|| panic!("{path}: bad reference_elapsed_sec")),
            }
        })
        .collect()
}

/// Fold this run into the baseline at `path`, keeping the *slower*
/// record per cell (and any baseline cells this run did not revisit),
/// then rewrite the file with recomputed aggregates.
///
/// A drop-gate is only as good as its baseline: one lucky fast run
/// checked in as the yardstick turns every subsequent honest run into a
/// "regression" on a noisy host. Repeated `--merge-baseline` refreshes
/// ratchet the baseline toward the slowest best-of-N observed per cell
/// — the conservative envelope the 10% floor is meant to police. A
/// baseline at a different instruction scale (or missing) is replaced
/// outright.
fn merge_baseline(path: &str, params: &RunParams, reps: usize, cells: &[CellTiming]) {
    let mut merged: Vec<CellTiming> = match std::fs::read_to_string(path) {
        Ok(text) => {
            let doc = json::parse(&text).unwrap_or_else(|| panic!("{path}: malformed JSON"));
            let base_scale = doc
                .get("instructions_per_core")
                .and_then(json::JsonValue::as_f64);
            if base_scale == Some(params.instructions as f64) {
                cells_from_json(path, &doc)
            } else {
                println!("baseline {path} is at a different instruction scale; replacing");
                Vec::new()
            }
        }
        Err(_) => Vec::new(),
    };
    for cur in cells {
        match merged.iter_mut().find(|b| b.key() == cur.key()) {
            Some(base) if base.mips() <= cur.mips() => {}
            Some(base) => *base = cur.clone(),
            None => merged.push(cur.clone()),
        }
    }
    let total_instr: u64 = merged.iter().map(|c| c.instructions).sum();
    let total_event: f64 = merged.iter().map(|c| c.event_elapsed).sum();
    let total_ref: f64 = merged.iter().map(|c| c.reference_elapsed).sum();
    let aggregate_mips = total_instr as f64 / total_event / 1e6;
    let aggregate_speedup = total_ref / total_event;
    let payload = render_json(params, reps, &merged, aggregate_mips, aggregate_speedup);
    std::fs::write(path, payload).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!(
        "merged into {path}: {} cell(s), aggregate {aggregate_mips:.2} MIPS (slowest per-cell \
         records kept)",
        merged.len()
    );
}

/// A JSON string literal (escaped and quoted).
fn quoted(s: &str) -> String {
    format!("\"{}\"", json::escape(s))
}

fn render_json(
    params: &RunParams,
    reps: usize,
    cells: &[CellTiming],
    aggregate_mips: f64,
    aggregate_speedup: f64,
) -> String {
    let cell_rows: Vec<String> = cells
        .iter()
        .map(|c| {
            let noc = if c.noc.is_empty() {
                String::new()
            } else {
                format!("\"noc\":{},", quoted(&c.noc))
            };
            format!(
                "    {{\"workload\":{},\"cores\":{},\"scheme\":{},{noc}\"sim_cycles\":{},\
                 \"instructions\":{},\"event_elapsed_sec\":{:.4},\"reference_elapsed_sec\":{:.4},\
                 \"mips\":{:.3},\"speedup\":{:.3}}}",
                quoted(&c.workload),
                c.cores,
                quoted(&c.scheme),
                c.sim_cycles,
                c.instructions,
                c.event_elapsed,
                c.reference_elapsed,
                c.mips(),
                c.speedup(),
            )
        })
        .collect();
    format!(
        "{{\n  \"name\": \"sim_throughput\",\n  \"schema\": 2,\n  \"reps\": {},\n  \
         \"probe_kernel\": {},\n  \"instructions_per_core\": {},\n  \"warmup_per_core\": {},\n  \
         \"cells\": [\n{}\n  ],\n  \"aggregate_mips\": {:.3},\n  \"aggregate_speedup\": {:.3}\n}}\n",
        reps,
        quoted(chrome_sim::probe::kernel_name()),
        params.instructions,
        params.warmup,
        cell_rows.join(",\n"),
        aggregate_mips,
        aggregate_speedup,
    )
}
