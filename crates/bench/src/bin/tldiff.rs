//! Diff two telemetry artifact directories.
//!
//! Pairs files by name across the two directories: epoch series
//! (`*_epochs.csv`) are compared column-by-column with Welch's t-test
//! over the per-epoch samples, and attribution tables (`*_attrib.csv`)
//! cell-by-cell against a relative-change threshold. This is the
//! regression-detection primitive for profiler output: run a cell twice
//! (two schemes, two commits, two seeds), export with `--telemetry-out`,
//! then diff.
//!
//! ```text
//! tldiff DIR_A DIR_B [--t THRESH] [--rel THRESH] [--all] [--fail-on-diff]
//! ```
//!
//! `--t` sets the Welch-t significance threshold (default 3.0, roughly
//! p < 0.01 for long series), `--rel` the attribution relative-change
//! threshold (default 0.05 = 5%), `--all` prints insignificant columns
//! too, and `--fail-on-diff` exits 1 when any significant delta was
//! found (for CI gates).
//!
//! Sampled-replay exports carry a `<prefix>_sampling.json` manifest
//! next to their CSVs. A pair is only comparable when both sides were
//! produced by the same sampling plan (or both by full runs): epochs
//! from different plans — or a sampled run against a full one — are
//! different populations, so the pair is refused and counted as a
//! significant difference rather than t-tested into false confidence.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::exit;

use chrome_telemetry::diff::{diff_attrib_csv, diff_epoch_csv};

struct Options {
    dir_a: PathBuf,
    dir_b: PathBuf,
    t_threshold: f64,
    rel_threshold: f64,
    show_all: bool,
    fail_on_diff: bool,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dirs = Vec::new();
    let mut opts = Options {
        dir_a: PathBuf::new(),
        dir_b: PathBuf::new(),
        t_threshold: 3.0,
        rel_threshold: 0.05,
        show_all: false,
        fail_on_diff: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--t" => {
                i += 1;
                opts.t_threshold = args[i].parse().expect("--t takes a number");
            }
            "--rel" => {
                i += 1;
                opts.rel_threshold = args[i].parse().expect("--rel takes a number");
            }
            "--all" => opts.show_all = true,
            "--fail-on-diff" => opts.fail_on_diff = true,
            other if !other.starts_with("--") => dirs.push(PathBuf::from(other)),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    if dirs.len() != 2 {
        eprintln!("usage: tldiff DIR_A DIR_B [--t THRESH] [--rel THRESH] [--all] [--fail-on-diff]");
        exit(2);
    }
    opts.dir_b = dirs.pop().unwrap();
    opts.dir_a = dirs.pop().unwrap();
    opts
}

/// Artifact file names in `dir` matching `suffix`.
fn artifacts(dir: &Path, suffix: &str) -> BTreeSet<String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        eprintln!("cannot read {}", dir.display());
        exit(2);
    };
    entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(suffix))
        .collect()
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// The sampling manifest exported alongside `name` (an artifact file
/// ending in `suffix`), if the run was a sampled replay.
fn sampling_of(dir: &Path, name: &str, suffix: &str) -> Option<String> {
    let prefix = name.strip_suffix(suffix)?;
    std::fs::read_to_string(dir.join(format!("{prefix}_sampling.json"))).ok()
}

/// `Some(reason)` when the two artifacts must not be compared.
fn sampling_mismatch(a: Option<&String>, b: Option<&String>) -> Option<&'static str> {
    match (a, b) {
        (None, None) => None,
        (Some(_), None) => Some("A is a sampled replay, B a full run"),
        (None, Some(_)) => Some("A is a full run, B a sampled replay"),
        (Some(ma), Some(mb)) if ma != mb => Some("sampled replays use different plans"),
        _ => None,
    }
}

fn main() {
    let opts = parse_args();
    let mut significant = 0usize;
    let mut compared = 0usize;

    for suffix in ["_epochs.csv", "_attrib.csv"] {
        let in_a = artifacts(&opts.dir_a, suffix);
        let in_b = artifacts(&opts.dir_b, suffix);
        // Pair by identical name; when the prefixes differ (e.g. two
        // schemes of the same cell) but each side holds exactly one
        // artifact of this kind, pair those.
        let pairs: Vec<(String, String)> =
            if in_a.is_disjoint(&in_b) && in_a.len() == 1 && in_b.len() == 1 {
                vec![(
                    in_a.iter().next().unwrap().clone(),
                    in_b.iter().next().unwrap().clone(),
                )]
            } else {
                for only in in_a.symmetric_difference(&in_b) {
                    println!(
                        "~ {only}: only in {}",
                        if in_a.contains(only) { "A" } else { "B" }
                    );
                }
                in_a.intersection(&in_b)
                    .map(|n| (n.clone(), n.clone()))
                    .collect()
            };
        for (name_a, name_b) in pairs {
            compared += 1;
            let label = if name_a == name_b {
                name_a.clone()
            } else {
                format!("{name_a} vs {name_b}")
            };
            let sampling_a = sampling_of(&opts.dir_a, &name_a, suffix);
            let sampling_b = sampling_of(&opts.dir_b, &name_b, suffix);
            if let Some(reason) = sampling_mismatch(sampling_a.as_ref(), sampling_b.as_ref()) {
                println!("! {label}: not comparable — {reason}");
                significant += 1;
                continue;
            }
            let a = read(&opts.dir_a.join(&name_a));
            let b = read(&opts.dir_b.join(&name_b));
            if suffix == "_epochs.csv" {
                significant += diff_epochs(&label, &a, &b, &opts);
            } else {
                significant += diff_attrib(&label, &a, &b, &opts);
            }
        }
    }

    println!(
        "tldiff: {compared} file pair(s) compared, {significant} significant difference(s) \
         (t >= {}, rel > {:.0}%)",
        opts.t_threshold,
        100.0 * opts.rel_threshold
    );
    if opts.fail_on_diff && significant > 0 {
        exit(1);
    }
}

fn diff_epochs(name: &str, a: &str, b: &str, opts: &Options) -> usize {
    let Some(cols) = diff_epoch_csv(a, b, opts.t_threshold) else {
        println!("~ {name}: unparseable epoch CSV, skipped");
        return 0;
    };
    let mut n = 0;
    for c in &cols {
        if c.significant || opts.show_all {
            println!(
                "{} {name}: {:<24} {:>12.4} -> {:>12.4}  ({:+.1}%, t={:.2}, n={}/{})",
                if c.significant { "!" } else { " " },
                c.name,
                c.mean_a,
                c.mean_b,
                c.pct_change(),
                c.t_stat,
                c.n_a,
                c.n_b,
            );
        }
        n += c.significant as usize;
    }
    n
}

fn diff_attrib(name: &str, a: &str, b: &str, opts: &Options) -> usize {
    let Some(cells) = diff_attrib_csv(a, b, opts.rel_threshold) else {
        println!("~ {name}: unparseable attribution CSV, skipped");
        return 0;
    };
    for c in &cells {
        println!(
            "! {name}: [{}] {:<24} {:>12.0} -> {:>12.0}  ({:+.1}%)",
            c.key,
            c.column,
            c.a,
            c.b,
            100.0 * (c.b - c.a) / if c.a == 0.0 { 1.0 } else { c.a },
        );
    }
    cells.len()
}
