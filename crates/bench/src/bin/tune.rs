//! Internal tuning utility: compare CHROME variants against LRU on a
//! subset of workloads. Not a paper experiment.

use chrome_bench::{geomean, run_workload, RunParams};

fn main() {
    let mut params = RunParams::default();
    let args: Vec<String> = std::env::args().collect();
    let mut schemes: Vec<&str> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--instructions" => {
                i += 1;
                params.instructions = args[i].parse().expect("number");
            }
            "--warmup" => {
                i += 1;
                params.warmup = args[i].parse().expect("number");
            }
            "--cores" => {
                i += 1;
                params.cores = args[i].parse().expect("number");
            }
            s if !s.starts_with("--") => schemes.push(&args[i]),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    let workloads = ["gcc", "mcf", "soplex", "omnetpp", "milc", "hmmer"];
    let bases: Vec<_> = workloads
        .iter()
        .map(|wl| run_workload(&params, wl, "LRU"))
        .collect();
    for scheme in schemes {
        let mut speedups = Vec::new();
        for (wl, base) in workloads.iter().zip(&bases) {
            let r = run_workload(&params, wl, scheme);
            speedups.push(r.weighted_speedup_vs(base));
        }
        println!(
            "{scheme:<20} geomean={:.4}  per-wl={:?}",
            geomean(&speedups),
            speedups
                .iter()
                .map(|s| (s * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
    }
}
