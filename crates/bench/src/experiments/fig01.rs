//! Fig. 1: performance improvement over LRU on a 16-core system,
//! homogeneous SPEC workload mixes (the paper's motivating headline).

use chrome_exec::CellOutcome;
use chrome_traces::spec::spec_workloads;

use super::{cell, limit, ExperimentPlan};
use crate::grid::{speedup, CellResult};
use crate::registry::all_schemes;
use crate::runner::{geomean, RunParams};
use crate::table::TableWriter;

pub fn plan(params: &RunParams) -> ExperimentPlan {
    let mut params = params.clone();
    if params.cores == 4 {
        params.cores = 16; // figure default unless overridden
    }
    let schemes = all_schemes();
    let n = schemes.len();
    let workloads: Vec<String> = limit(
        spec_workloads().into_iter().map(str::to_string).collect(),
        params.homo_workloads,
    );
    let mut cells = Vec::new();
    for wl in &workloads {
        for scheme in schemes {
            cells.push(cell(&params, "fig01_16core", wl, scheme));
        }
    }
    let count = workloads.len();
    ExperimentPlan {
        name: "fig01_16core",
        cells,
        assemble: Box::new(move |out: &[CellOutcome<CellResult>]| {
            let mut table = TableWriter::new("fig01_16core", &["scheme", "speedup_over_lru_pct"]);
            for (si, scheme) in all_schemes().iter().skip(1).enumerate() {
                let speedups: Vec<f64> = (0..count)
                    .map(|wi| speedup(out, wi * n + si + 1, wi * n))
                    .collect();
                table.row_f(scheme, &[(geomean(&speedups) - 1.0) * 100.0]);
            }
            vec![table]
        }),
    }
}
