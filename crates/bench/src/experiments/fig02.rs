//! Fig. 2 (motivation): with Glider managing a 4-core LLC,
//! (a) the fraction of evicted blocks never reused before eviction
//!     (split into requested-again-later vs never-requested-again), and
//! (b) the fraction of those unused blocks that came from prefetching.

use chrome_exec::CellOutcome;
use chrome_traces::spec::spec_workloads;

use super::{cell, limit, ExperimentPlan};
use crate::grid::{cell_value, CellResult};
use crate::runner::RunParams;
use crate::table::TableWriter;

fn row(r: &CellResult) -> [f64; 4] {
    let evictions = r.evictions.max(1);
    let unused = r.evictions_unused;
    let (again, never, pf) = r.evicted_unused;
    let unused_frac = unused as f64 / evictions as f64;
    let denom = (again + never).max(1) as f64;
    [
        unused_frac,
        unused_frac * again as f64 / denom,
        unused_frac * never as f64 / denom,
        pf as f64 / unused.max(1) as f64,
    ]
}

pub fn plan(params: &RunParams) -> ExperimentPlan {
    let workloads: Vec<String> = limit(
        spec_workloads().into_iter().map(str::to_string).collect(),
        params.homo_workloads,
    );
    let cells = workloads
        .iter()
        .map(|wl| {
            let mut c = cell(params, "fig02_unused_blocks", wl, "Glider");
            c.track_unused = true;
            c
        })
        .collect();
    ExperimentPlan {
        name: "fig02_unused_blocks",
        cells,
        assemble: Box::new(move |out: &[CellOutcome<CellResult>]| {
            let mut table = TableWriter::new(
                "fig02_unused_blocks",
                &[
                    "workload",
                    "unused_frac",
                    "requested_again_frac",
                    "never_again_frac",
                    "prefetch_frac_of_unused",
                ],
            );
            let mut sums = [0.0f64; 4];
            for (wi, wl) in workloads.iter().enumerate() {
                let cells = cell_value(out, wi).map_or([f64::NAN; 4], row);
                for (i, v) in cells.iter().enumerate() {
                    sums[i] += v;
                }
                table.row_f(wl, &cells);
            }
            let count = workloads.len() as f64;
            let avg: Vec<f64> = sums.iter().map(|s| s / count).collect();
            table.row_f("AVERAGE", &avg);
            vec![table]
        }),
    }
}
