//! Fig. 3 (motivation): Hawkeye / Glider / Mockingjay speedups over LRU
//! on eight representative workloads under two prefetcher combinations:
//! (a) next-line@L1 + stride@L2, (b) stride@L1 + streamer@L2.

use chrome_exec::CellOutcome;

use super::{cell, limit, ExperimentPlan};
use crate::grid::{speedup, CellResult};
use crate::runner::RunParams;
use crate::table::TableWriter;

const WORKLOADS: [&str; 8] = [
    "mcf",
    "soplex",
    "wrf",
    "libquantum",
    "omnetpp",
    "xalancbmk",
    "gcc",
    "cc-ur",
];
const SCHEMES: [&str; 3] = ["Hawkeye", "Glider", "Mockingjay"];
const CONFIGS: [(&str, &str); 2] = [
    ("fig03a_nextline_stride", "paper"),
    ("fig03b_stride_streamer", "stride-streamer"),
];

pub fn plan(params: &RunParams) -> ExperimentPlan {
    let workloads: Vec<&str> = limit(WORKLOADS.to_vec(), params.homo_workloads);
    let mut cells = Vec::new();
    for (_, prefetch) in CONFIGS {
        for wl in &workloads {
            for scheme in std::iter::once("LRU").chain(SCHEMES) {
                let mut c = cell(params, "fig03_prefetcher_sensitivity", wl, scheme);
                c.prefetch = prefetch.to_string();
                cells.push(c);
            }
        }
    }
    let count = workloads.len();
    let per_wl = SCHEMES.len() + 1;
    ExperimentPlan {
        name: "fig03_prefetcher_sensitivity",
        cells,
        assemble: Box::new(move |out: &[CellOutcome<CellResult>]| {
            CONFIGS
                .iter()
                .enumerate()
                .map(|(ci, (table_name, _))| {
                    let mut table = TableWriter::new(table_name, &{
                        let mut h = vec!["workload"];
                        h.extend(SCHEMES);
                        h
                    });
                    for (wi, wl) in workloads.iter().enumerate() {
                        let base = (ci * count + wi) * per_wl;
                        let cells: Vec<f64> = (1..per_wl)
                            .map(|si| speedup(out, base + si, base))
                            .collect();
                        table.row_f(wl, &cells);
                    }
                    table
                })
                .collect()
        }),
    }
}
