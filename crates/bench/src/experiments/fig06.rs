//! Fig. 6: speedup over LRU for 4-core SPEC homogeneous mixes, all
//! schemes. The same cells also yield the paper's Figs. 7–9, so this
//! plan assembles those tables too:
//!
//! * `fig06_4core_spec.tsv` — weighted speedup over LRU,
//! * `fig07_demand_miss.tsv` — LLC demand miss ratio,
//! * `fig08_ephr.tsv` — effective prefetch hit ratio,
//! * `fig09_bypass.tsv` — bypass coverage/efficiency (Mockingjay, CHROME).

use chrome_exec::CellOutcome;
use chrome_traces::spec::spec_workloads;

use super::{cell, limit, ExperimentPlan};
use crate::grid::{metric, speedup, CellResult};
use crate::registry::all_schemes;
use crate::runner::{geomean, RunParams};
use crate::table::TableWriter;

pub fn plan(params: &RunParams) -> ExperimentPlan {
    let schemes = all_schemes();
    let workloads: Vec<String> = limit(
        spec_workloads().into_iter().map(str::to_string).collect(),
        params.homo_workloads,
    );
    let mut cells = Vec::new();
    for wl in &workloads {
        for scheme in schemes {
            let mut c = cell(params, "fig06_4core_spec", wl, scheme);
            c.track_unused = true;
            cells.push(c);
        }
    }
    ExperimentPlan {
        name: "fig06_4core_spec",
        cells,
        assemble: Box::new(move |out| assemble(&workloads, out)),
    }
}

fn assemble(workloads: &[String], out: &[CellOutcome<CellResult>]) -> Vec<TableWriter> {
    let schemes = all_schemes();
    let n = schemes.len();
    let mut speedup_t = TableWriter::new("fig06_4core_spec", &{
        let mut h = vec!["workload"];
        h.extend(schemes.iter().skip(1).copied());
        h
    });
    let mut miss_t = TableWriter::new("fig07_demand_miss", &{
        let mut h = vec!["workload"];
        h.extend(schemes.iter().copied());
        h
    });
    let mut ephr_t = TableWriter::new("fig08_ephr", &{
        let mut h = vec!["workload"];
        h.extend(schemes.iter().copied());
        h
    });
    let mut bypass_t = TableWriter::new(
        "fig09_bypass",
        &[
            "workload",
            "mockingjay_coverage",
            "mockingjay_efficiency",
            "chrome_coverage",
            "chrome_efficiency",
        ],
    );

    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); n - 1];
    let mut miss_sums = vec![0.0; n];
    let mut ephr_sums = vec![0.0; n];
    let mut bypass_sums = [0.0f64; 4];

    for (wi, wl) in workloads.iter().enumerate() {
        let base = wi * n;
        let mut miss_cells = Vec::new();
        let mut ephr_cells = Vec::new();
        let mut speed_cells = Vec::new();
        let mut bypass_cells = Vec::new();
        for (si, scheme) in schemes.iter().enumerate() {
            let i = base + si;
            let miss = metric(out, i, |r| r.demand_miss_ratio);
            let ephr = metric(out, i, |r| r.ephr);
            miss_sums[si] += miss;
            ephr_sums[si] += ephr;
            miss_cells.push(miss);
            ephr_cells.push(ephr);
            if si > 0 {
                let s = speedup(out, i, base);
                speedups[si - 1].push(s);
                speed_cells.push(s);
            }
            if *scheme == "Mockingjay" || *scheme == "CHROME" {
                bypass_cells.push(metric(out, i, |r| r.bypass_coverage));
                bypass_cells.push(metric(out, i, |r| {
                    let (again, never, _) = r.bypassed_outcome;
                    if again + never == 0 {
                        0.0
                    } else {
                        never as f64 / (again + never) as f64
                    }
                }));
            }
        }
        speedup_t.row_f(wl, &speed_cells);
        miss_t.row_f(wl, &miss_cells);
        ephr_t.row_f(wl, &ephr_cells);
        for (i, v) in bypass_cells.iter().enumerate() {
            bypass_sums[i] += v;
        }
        bypass_t.row_f(wl, &bypass_cells);
    }

    let count = workloads.len() as f64;
    let geo: Vec<f64> = speedups.iter().map(|v| geomean(v)).collect();
    speedup_t.row_f("GEOMEAN", &geo);
    miss_t.row_f(
        "AVERAGE",
        &miss_sums.iter().map(|s| s / count).collect::<Vec<_>>(),
    );
    ephr_t.row_f(
        "AVERAGE",
        &ephr_sums.iter().map(|s| s / count).collect::<Vec<_>>(),
    );
    bypass_t.row_f(
        "AVERAGE",
        &bypass_sums.iter().map(|s| s / count).collect::<Vec<_>>(),
    );
    vec![speedup_t, miss_t, ephr_t, bypass_t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_layout_is_workload_major() {
        let params = RunParams {
            homo_workloads: Some(2),
            ..RunParams::default()
        };
        let p = plan(&params);
        let n = all_schemes().len();
        assert_eq!(p.cells.len(), 2 * n);
        assert_eq!(p.cells[0].scheme, "LRU");
        assert_eq!(p.cells[n].scheme, "LRU");
        assert!(p.cells.iter().all(|c| c.track_unused));
        // base and scheme cells of a workload replay the same traces
        assert_eq!(p.cells[0].workload_seed(), p.cells[1].workload_seed());
    }
}
