//! Fig. 10: weighted speedup over LRU for 4-core heterogeneous mixes
//! (the paper uses 150 random mixes; scale with `--mixes`). Rows are
//! sorted by CHROME's speedup, as in the paper's S-curve.

use chrome_exec::CellOutcome;
use chrome_traces::mix::heterogeneous_names;

use super::{cell, ExperimentPlan};
use crate::grid::{speedup, CellResult};
use crate::runner::{geomean, RunParams};
use crate::table::TableWriter;

const SCHEMES: [&str; 4] = ["Hawkeye", "Glider", "Mockingjay", "CHROME"];

pub fn plan(params: &RunParams) -> ExperimentPlan {
    let mixes = params.mixes.unwrap_or(30);
    let names = heterogeneous_names(params.cores, mixes, 0xF16);
    let labels: Vec<String> = names.iter().map(|n| n.join("+")).collect();
    let mut cells = Vec::new();
    for label in &labels {
        for scheme in std::iter::once("LRU").chain(SCHEMES) {
            cells.push(cell(params, "fig10_hetero_4core", label, scheme));
        }
    }
    let per_mix = SCHEMES.len() + 1;
    ExperimentPlan {
        name: "fig10_hetero_4core",
        cells,
        assemble: Box::new(move |out: &[CellOutcome<CellResult>]| {
            let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
            let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); SCHEMES.len()];
            for (mi, label) in labels.iter().enumerate() {
                let base = mi * per_mix;
                let cells: Vec<f64> = (1..per_mix)
                    .map(|si| {
                        let ws = speedup(out, base + si, base);
                        per_scheme[si - 1].push(ws);
                        ws
                    })
                    .collect();
                rows.push((format!("mix{mi:03}:{label}"), cells));
            }
            // sort ascending by CHROME speedup (the paper's presentation);
            // total_cmp keeps NaN rows (failed cells) at the tail
            rows.sort_by(|a, b| a.1[3].total_cmp(&b.1[3]));
            let mut table = TableWriter::new("fig10_hetero_4core", &{
                let mut h = vec!["mix"];
                h.extend(SCHEMES);
                h
            });
            let mut chrome_best = 0;
            let mut chrome_over_mockingjay = 0;
            for (name, cells) in &rows {
                if cells[3] >= cells[0].max(cells[1]).max(cells[2]) {
                    chrome_best += 1;
                }
                if cells[3] >= cells[2] {
                    chrome_over_mockingjay += 1;
                }
                table.row_f(name, cells);
            }
            let geo: Vec<f64> = per_scheme.iter().map(|v| geomean(v)).collect();
            table.row_f("GEOMEAN", &geo);
            println!("CHROME best in {chrome_best}/{} mixes", rows.len());
            println!(
                "CHROME >= Mockingjay in {chrome_over_mockingjay}/{} mixes",
                rows.len()
            );
            vec![table]
        }),
    }
}
