//! Fig. 11: geometric-mean speedup over LRU for 4/8/16-core systems,
//! homogeneous and heterogeneous SPEC mixes.

use chrome_exec::CellOutcome;
use chrome_traces::mix::heterogeneous_names;
use chrome_traces::spec::spec_workloads;

use super::{cell, ExperimentPlan};
use crate::grid::{speedup, CellResult};
use crate::registry::all_schemes;
use crate::runner::{geomean, RunParams};
use crate::table::TableWriter;

const CORE_COUNTS: [usize; 3] = [4, 8, 16];

pub fn plan(params: &RunParams) -> ExperimentPlan {
    let hetero_mixes = params.mixes.unwrap_or(8);
    let homo_count = params.homo_workloads.unwrap_or(10);
    let schemes = all_schemes();
    let n = schemes.len();
    // homogeneous: a representative subset for the smaller core counts
    let homo: Vec<String> = spec_workloads()
        .into_iter()
        .take(homo_count)
        .map(str::to_string)
        .collect();

    let mut cells = Vec::new();
    // (cores, hetero mix labels) per row pair, mirrored by assemble
    let mut groups: Vec<(usize, Vec<String>)> = Vec::new();
    for cores in CORE_COUNTS {
        let hetero: Vec<String> = heterogeneous_names(cores, hetero_mixes, 0xF11)
            .iter()
            .map(|names| names.join("+"))
            .collect();
        for wl in homo.iter().chain(&hetero) {
            for scheme in schemes {
                let mut c = cell(params, "fig11_scalability", wl, scheme);
                c.cores = cores as u32;
                cells.push(c);
            }
        }
        groups.push((cores, hetero));
    }

    let homo_len = homo.len();
    ExperimentPlan {
        name: "fig11_scalability",
        cells,
        assemble: Box::new(move |out: &[CellOutcome<CellResult>]| {
            let mut table = TableWriter::new("fig11_scalability", &{
                let mut h = vec!["config"];
                h.extend(all_schemes().iter().skip(1).copied());
                h
            });
            let mut cursor = 0;
            for (cores, hetero) in &groups {
                for (tag, count) in [("homo", homo_len), ("hetero", hetero.len())] {
                    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); n - 1];
                    for w in 0..count {
                        let base = cursor + w * n;
                        for (si, list) in per_scheme.iter_mut().enumerate() {
                            list.push(speedup(out, base + si + 1, base));
                        }
                    }
                    cursor += count * n;
                    let geo: Vec<f64> = per_scheme.iter().map(|v| geomean(v)).collect();
                    table.row_f(&format!("{cores}-core-{tag}"), &geo);
                }
            }
            vec![table]
        }),
    }
}
