//! Fig. 12: CHROME vs N-CHROME (no concurrency-aware feedback) on
//! 4/8/16-core SPEC homogeneous mixes — the value of C-AMAT awareness.

use chrome_exec::CellOutcome;
use chrome_traces::spec::spec_workloads;

use super::{cell, ExperimentPlan};
use crate::grid::{speedup, CellResult};
use crate::runner::{geomean, RunParams};
use crate::table::TableWriter;

const CORE_COUNTS: [usize; 3] = [4, 8, 16];
const SCHEMES: [&str; 3] = ["LRU", "CHROME", "N-CHROME"];

pub fn plan(params: &RunParams) -> ExperimentPlan {
    // skip the heavier tail workloads at high core counts
    let homo_count = params.homo_workloads.unwrap_or(10);
    let workloads: Vec<String> = spec_workloads()
        .into_iter()
        .take(homo_count)
        .map(str::to_string)
        .collect();
    let mut cells = Vec::new();
    for cores in CORE_COUNTS {
        for wl in &workloads {
            for scheme in SCHEMES {
                let mut c = cell(params, "fig12_nchrome", wl, scheme);
                c.cores = cores as u32;
                cells.push(c);
            }
        }
    }
    let count = workloads.len();
    ExperimentPlan {
        name: "fig12_nchrome",
        cells,
        assemble: Box::new(move |out: &[CellOutcome<CellResult>]| {
            let mut table = TableWriter::new(
                "fig12_nchrome",
                &["config", "CHROME", "N-CHROME", "delta_pct"],
            );
            for (gi, cores) in CORE_COUNTS.iter().enumerate() {
                let mut chrome = Vec::new();
                let mut nchrome = Vec::new();
                for wi in 0..count {
                    let base = (gi * count + wi) * SCHEMES.len();
                    chrome.push(speedup(out, base + 1, base));
                    nchrome.push(speedup(out, base + 2, base));
                }
                let (gc, gn) = (geomean(&chrome), geomean(&nchrome));
                table.row_f(&format!("{cores}-core"), &[gc, gn, (gc - gn) * 100.0]);
            }
            vec![table]
        }),
    }
}
