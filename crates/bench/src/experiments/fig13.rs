//! Fig. 13: speedups over LRU on GAP graph workloads (unseen during
//! hyper-parameter tuning) for 4/8/16-core systems.

use chrome_exec::CellOutcome;
use chrome_traces::gap::gap_workloads;

use super::{cell, limit, ExperimentPlan};
use crate::grid::{speedup, CellResult};
use crate::registry::all_schemes;
use crate::runner::{geomean, RunParams};
use crate::table::TableWriter;

const CORE_COUNTS: [usize; 3] = [4, 8, 16];

pub fn plan(params: &RunParams) -> ExperimentPlan {
    let schemes = all_schemes();
    let n = schemes.len();
    // Table VI's 12 GAP traces (bfs/cc/pr/sssp x or/tw/ur)
    let workloads: Vec<String> = limit(
        gap_workloads()
            .iter()
            .filter(|w| !w.starts_with("bc-"))
            .map(|w| (*w).to_string())
            .collect(),
        params.homo_workloads,
    );
    let mut cells = Vec::new();
    for cores in CORE_COUNTS {
        for wl in &workloads {
            for scheme in schemes {
                let mut c = cell(params, "fig13_gap", wl, scheme);
                c.cores = cores as u32;
                cells.push(c);
            }
        }
    }
    let count = workloads.len();
    ExperimentPlan {
        name: "fig13_gap",
        cells,
        assemble: Box::new(move |out: &[CellOutcome<CellResult>]| {
            let mut table = TableWriter::new("fig13_gap", &{
                let mut h = vec!["config"];
                h.extend(all_schemes().iter().skip(1).copied());
                h
            });
            for (gi, cores) in CORE_COUNTS.iter().enumerate() {
                let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); n - 1];
                for wi in 0..count {
                    let base = (gi * count + wi) * n;
                    for (si, list) in per_scheme.iter_mut().enumerate() {
                        list.push(speedup(out, base + si + 1, base));
                    }
                }
                let geo: Vec<f64> = per_scheme.iter().map(|v| geomean(v)).collect();
                table.row_f(&format!("{cores}-core"), &geo);
            }
            vec![table]
        }),
    }
}
