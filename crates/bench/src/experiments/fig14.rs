//! Fig. 14: adaptability across prefetching schemes — geometric-mean
//! speedup over LRU on 4-core SPEC homogeneous mixes with
//! (a) stride@L1 + streamer@L2 and (b) IPCP.

use chrome_exec::CellOutcome;
use chrome_traces::spec::spec_workloads;

use super::{cell, ExperimentPlan};
use crate::grid::{speedup, CellResult};
use crate::registry::all_schemes;
use crate::runner::{geomean, RunParams};
use crate::table::TableWriter;

const CONFIGS: [(&str, &str); 2] = [("stride+streamer", "stride-streamer"), ("ipcp", "ipcp")];

pub fn plan(params: &RunParams) -> ExperimentPlan {
    let homo_count = params.homo_workloads.unwrap_or(14);
    let schemes = all_schemes();
    let n = schemes.len();
    let workloads: Vec<String> = spec_workloads()
        .into_iter()
        .take(homo_count)
        .map(str::to_string)
        .collect();
    let mut cells = Vec::new();
    for (_, prefetch) in CONFIGS {
        for wl in &workloads {
            for scheme in schemes {
                let mut c = cell(params, "fig14_prefetch_schemes", wl, scheme);
                c.prefetch = prefetch.to_string();
                cells.push(c);
            }
        }
    }
    let count = workloads.len();
    ExperimentPlan {
        name: "fig14_prefetch_schemes",
        cells,
        assemble: Box::new(move |out: &[CellOutcome<CellResult>]| {
            let mut table = TableWriter::new("fig14_prefetch_schemes", &{
                let mut h = vec!["prefetch_config"];
                h.extend(all_schemes().iter().skip(1).copied());
                h
            });
            for (ci, (tag, _)) in CONFIGS.iter().enumerate() {
                let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); n - 1];
                for wi in 0..count {
                    let base = (ci * count + wi) * n;
                    for (si, list) in per_scheme.iter_mut().enumerate() {
                        list.push(speedup(out, base + si + 1, base));
                    }
                }
                let geo: Vec<f64> = per_scheme.iter().map(|v| geomean(v)).collect();
                table.row_f(tag, &geo);
            }
            vec![table]
        }),
    }
}
