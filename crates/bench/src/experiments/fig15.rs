//! Fig. 15: CHROME state-feature ablation — PC only, PN only, and the
//! full PC+PN state, on 4-core SPEC homogeneous mixes.

use chrome_exec::CellOutcome;
use chrome_traces::spec::spec_workloads;

use super::{cell, ExperimentPlan};
use crate::grid::{speedup, CellResult};
use crate::runner::{geomean, RunParams};
use crate::table::TableWriter;

const VARIANTS: [(&str, &str); 6] = [
    ("PC-only", "CHROME-pc"),
    ("PN-only", "CHROME-pn"),
    ("PC+PN", "CHROME"),
    // the other Table I candidates (extension beyond the paper's Fig. 15)
    ("PC+delta", "CHROME-pcdelta"),
    ("PCseq+PN", "CHROME-pcseq"),
    ("PCoffset+PN", "CHROME-pcoffset"),
];

pub fn plan(params: &RunParams) -> ExperimentPlan {
    let homo_count = params.homo_workloads.unwrap_or(14);
    let workloads: Vec<String> = spec_workloads()
        .into_iter()
        .take(homo_count)
        .map(str::to_string)
        .collect();
    // cells: one LRU base block, then one block per variant
    let mut cells = Vec::new();
    for wl in &workloads {
        cells.push(cell(params, "fig15_features", wl, "LRU"));
    }
    for (_, scheme) in VARIANTS {
        for wl in &workloads {
            cells.push(cell(params, "fig15_features", wl, scheme));
        }
    }
    let count = workloads.len();
    ExperimentPlan {
        name: "fig15_features",
        cells,
        assemble: Box::new(move |out: &[CellOutcome<CellResult>]| {
            let mut table = TableWriter::new("fig15_features", &["variant", "geomean_speedup"]);
            for (vi, (label, _)) in VARIANTS.iter().enumerate() {
                let speedups: Vec<f64> = (0..count)
                    .map(|wi| speedup(out, (vi + 1) * count + wi, wi))
                    .collect();
                table.row_f(label, &[geomean(&speedups)]);
            }
            vec![table]
        }),
    }
}
