//! Fig. 16: hyper-parameter sensitivity of CHROME — learning rate α,
//! discount factor γ, exploration rate ε — on 4-core SPEC homogeneous
//! mixes.

use chrome_exec::CellOutcome;
use chrome_traces::spec::spec_workloads;

use super::{cell, ExperimentPlan};
use crate::grid::{speedup, CellResult};
use crate::runner::{geomean, RunParams};
use crate::table::TableWriter;

const SWEEPS: [(&str, &[f64]); 3] = [
    ("alpha", &[1e-5, 1e-3, 0.0498, 0.5, 1.0]),
    ("gamma", &[1e-3, 1e-1, 0.3679, 0.9]),
    ("eps", &[0.0, 0.001, 0.01, 0.1]),
];

pub fn plan(params: &RunParams) -> ExperimentPlan {
    let homo_count = params.homo_workloads.unwrap_or(8);
    let workloads: Vec<String> = spec_workloads()
        .into_iter()
        .take(homo_count)
        .map(str::to_string)
        .collect();
    // cells: one LRU base block, then one block per sweep setting
    let mut cells = Vec::new();
    for wl in &workloads {
        cells.push(cell(params, "fig16_hyperparams", wl, "LRU"));
    }
    for (key, values) in SWEEPS {
        for v in values {
            let scheme = format!("CHROME-{key}={v}");
            for wl in &workloads {
                cells.push(cell(params, "fig16_hyperparams", wl, &scheme));
            }
        }
    }
    let count = workloads.len();
    ExperimentPlan {
        name: "fig16_hyperparams",
        cells,
        assemble: Box::new(move |out: &[CellOutcome<CellResult>]| {
            let mut table = TableWriter::new("fig16_hyperparams", &["setting", "geomean_speedup"]);
            let mut block = 1;
            for (key, values) in SWEEPS {
                for v in values {
                    let speedups: Vec<f64> = (0..count)
                        .map(|wi| speedup(out, block * count + wi, wi))
                        .collect();
                    table.row_f(&format!("{key}={v}"), &[geomean(&speedups)]);
                    block += 1;
                }
            }
            vec![table]
        }),
    }
}
