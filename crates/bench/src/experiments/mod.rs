//! Declarative experiment plans over the grid engine.
//!
//! Every multi-cell experiment is a [`ExperimentPlan`]: a flat list of
//! [`CellSpec`]s plus an `assemble` closure that turns the outcomes
//! (always delivered in cell order) into its output tables. One plan
//! runs standalone through [`run_plans`]; `run_all` concatenates every
//! plan into a single scheduled grid and assembles each experiment from
//! its slice — so the full reproduction shares one work-stealing queue,
//! one checkpoint manifest, and one progress line.

pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig06;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod overheads;
pub mod sampling;
pub mod scaling;
pub mod tab07;

use chrome_exec::{CellOutcome, CellSpec, EngineConfig};

use crate::grid::{self, CellResult};
use crate::runner::RunParams;
use crate::table::TableWriter;

/// Closure assembling an experiment's tables from its cell outcomes.
pub type AssembleFn = Box<dyn FnOnce(&[CellOutcome<CellResult>]) -> Vec<TableWriter> + Send>;

/// One experiment: its simulation cells and its table assembly.
pub struct ExperimentPlan {
    /// Experiment name (also the primary TSV name).
    pub name: &'static str,
    /// Simulation cells, in the order `assemble` expects them.
    pub cells: Vec<CellSpec>,
    /// Turns outcomes (in cell order) into finished tables.
    pub assemble: AssembleFn,
}

impl std::fmt::Debug for ExperimentPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentPlan")
            .field("name", &self.name)
            .field("cells", &self.cells.len())
            .finish_non_exhaustive()
    }
}

/// Build a cell with the run-wide defaults from `params`.
pub(crate) fn cell(
    params: &RunParams,
    experiment: &'static str,
    workload: &str,
    scheme: &str,
) -> CellSpec {
    CellSpec {
        experiment: experiment.to_string(),
        workload: workload.to_string(),
        scheme: scheme.to_string(),
        cores: params.cores as u32,
        instructions: params.instructions,
        warmup: params.warmup,
        seed: params.seed,
        prefetch: "paper".to_string(),
        track_unused: false,
        record_epochs: false,
        trace: String::new(),
        sampling: String::new(),
        noc: params.noc.clone(),
        workers: params.step_workers as u32,
    }
}

/// Apply the `--homo-workloads` cap (when given) to a workload list.
pub(crate) fn limit<T>(items: Vec<T>, cap: Option<usize>) -> Vec<T> {
    match cap {
        Some(n) => items.into_iter().take(n).collect(),
        None => items,
    }
}

/// Every experiment plan, in `run_all` replay order.
#[must_use]
pub fn all_plans(params: &RunParams) -> Vec<ExperimentPlan> {
    vec![
        fig06::plan(params),
        fig02::plan(params),
        fig03::plan(params),
        fig10::plan(params),
        fig12::plan(params),
        fig15::plan(params),
        fig14::plan(params),
        tab07::plan(params),
        fig16::plan(params),
        fig11::plan(params),
        fig13::plan(params),
        fig01::plan(params),
    ]
}

/// Execute one or more plans as a single scheduled grid, assemble and
/// write each experiment's tables, and report failures.
///
/// Unlike the old sequential replay, a failed cell does not abort the
/// run: remaining cells still execute, the failure summary lists every
/// permanently failed cell, and only the final exit code (the returned
/// value) reflects them.
///
/// # Panics
///
/// Panics when result tables or the checkpoint manifest cannot be
/// written.
#[must_use]
pub fn run_plans(params: &RunParams, plans: Vec<ExperimentPlan>) -> i32 {
    let total: usize = plans.iter().map(|p| p.cells.len()).sum();
    let mut cells = Vec::with_capacity(total);
    let mut ranges = Vec::with_capacity(plans.len());
    for p in &plans {
        let start = cells.len();
        cells.extend(p.cells.iter().cloned());
        ranges.push(start..cells.len());
    }
    let jobs = EngineConfig {
        jobs: params.jobs.unwrap_or(0),
        ..EngineConfig::default()
    }
    .effective_jobs(total);
    eprintln!(
        "[exec] scheduling {total} cells from {} experiment(s) across {jobs} job(s)",
        plans.len(),
    );
    let report = grid::run_grid(params, cells);
    for (plan, range) in plans.into_iter().zip(ranges) {
        println!("\n########## {} ##########", plan.name);
        for table in (plan.assemble)(&report.outcomes[range]) {
            table.finish().expect("write results");
        }
    }
    let ok = report.outcomes.len() - report.failed;
    eprintln!(
        "[exec] grid complete: {ok}/{} ok ({} resumed, {} executed), {} failed, {:.1}s wall",
        report.outcomes.len(),
        report.resumed,
        report.executed,
        report.failed,
        report.wall_ms as f64 / 1000.0,
    );
    let failures = report.failures();
    if failures.is_empty() {
        0
    } else {
        eprintln!("[exec] permanently failed cells:");
        for (label, err) in &failures {
            eprintln!("[exec]   {label}: {err}");
        }
        1
    }
}
