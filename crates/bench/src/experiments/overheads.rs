//! Tables III and IV: storage-overhead accounting. These are pure
//! arithmetic over the policy configurations — no simulation cells —
//! so they run inline rather than through the grid.

use chrome_core::{Chrome, ChromeConfig};
use chrome_sim::{LlcPolicy, SimConfig};

use crate::registry::build_any_policy;
use crate::table::TableWriter;

/// Table III: CHROME storage-overhead breakdown for the 4-core, 12MB,
/// 12-way LLC configuration.
///
/// # Panics
///
/// Panics when `results/tab03_overhead.tsv` cannot be written.
pub fn tab03() {
    let cfg = SimConfig::with_cores(4);
    let llc_blocks = cfg.llc().sets() * cfg.llc_ways;
    let chrome = Chrome::new(ChromeConfig::default());
    let overhead = chrome.storage_overhead(llc_blocks);
    println!(
        "{}",
        overhead.render("Table III: CHROME storage overhead (4-core, 12MB LLC)")
    );
    println!(
        "paper total: 92.70 KB; measured: {:.2} KB",
        overhead.total_kib()
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write(
        "results/tab03_overhead.tsv",
        overhead
            .iter()
            .map(|(n, b)| format!("{n}\t{:.2}", b as f64 / 8.0 / 1024.0))
            .collect::<Vec<_>>()
            .join("\n")
            + &format!("\nTOTAL\t{:.2}\n", overhead.total_kib()),
    )
    .expect("write tsv");
}

/// Table IV: storage overhead across schemes (4-core, 12-way, 12MB
/// LLC), with the holistic / concurrency-aware capability matrix.
///
/// # Panics
///
/// Panics when `results/tab04_overhead_cmp.tsv` cannot be written.
pub fn tab04() {
    let cfg = SimConfig::with_cores(4);
    let llc_blocks = cfg.llc().sets() * cfg.llc_ways;
    let mut table = TableWriter::new(
        "tab04_overhead_cmp",
        &[
            "scheme",
            "holistic",
            "concurrency_aware",
            "overhead_kb",
            "paper_kb",
        ],
    );
    let rows: [(&str, &str, &str, f64); 5] = [
        ("Hawkeye", "No", "No", 146.0),
        ("Glider", "No", "No", 254.0),
        ("Mockingjay", "Yes", "No", 170.6),
        ("CARE", "No", "Yes", 130.5),
        ("CHROME", "Yes", "Yes", 92.7),
    ];
    for (scheme, holistic, conc, paper_kb) in rows {
        let overhead = if scheme == "CHROME" {
            // hardware budget uses the paper's 64-sampled-set config
            Chrome::new(ChromeConfig::default()).storage_overhead(llc_blocks)
        } else {
            build_any_policy(scheme)
                .expect("known scheme")
                .storage_overhead(llc_blocks)
        };
        table.row(vec![
            scheme.to_string(),
            holistic.to_string(),
            conc.to_string(),
            format!("{:.1}", overhead.total_kib()),
            format!("{paper_kb:.1}"),
        ]);
    }
    table.finish().expect("write results");
}
