//! Sampling validation: sampled-vs-full error table.
//!
//! For every workload, two cells run against the same recorded trace:
//! a full simulation (warmup + measured budget) and a representative-
//! interval sampled replay of the same budget. The assembled
//! `sampling_validation.tsv` lists, per workload, the full and
//! reconstructed IPC / MPKI / C-AMAT, their relative errors, and the
//! detail-reduction factor — the table the `simpoint validate` gate
//! (±3% IPC and MPKI at ≥10x reduction) asserts over.
//!
//! The plan pre-sets `CellSpec::sampling` on its sampled cells, so run
//! it WITHOUT the global `--sampling` grid axis (which would sample the
//! full-reference cells too); the `simpoint` binary strips it.

use chrome_exec::CellOutcome;
use chrome_simpoint::ErrorRow;
use chrome_traces::all_workloads;

use super::{cell, limit, ExperimentPlan};
use crate::grid::{cell_value, CellResult};
use crate::runner::RunParams;
use crate::table::TableWriter;

/// Experiment name (and primary TSV name).
pub const NAME: &str = "sampling_validation";

/// The validation workload list: every registered workload, capped by
/// `--homo-workloads`.
#[must_use]
pub fn workloads(params: &RunParams) -> Vec<String> {
    limit(
        all_workloads().into_iter().map(str::to_string).collect(),
        params.homo_workloads,
    )
}

/// Build the paired cell list: `[full, sampled]` per workload, in
/// workload order. Both cells share the workload identity (and thus the
/// trace); only the sampled one carries the sampling spec.
#[must_use]
pub fn cells(
    params: &RunParams,
    workloads: &[String],
    scheme: &str,
    sampling: &str,
) -> Vec<chrome_exec::CellSpec> {
    let mut out = Vec::with_capacity(workloads.len() * 2);
    for wl in workloads {
        let full = cell(params, NAME, wl, scheme);
        let mut sampled = full.clone();
        sampled.sampling = sampling.to_string();
        out.push(full);
        out.push(sampled);
    }
    out
}

/// Pair the outcomes back into per-workload [`ErrorRow`]s. Workloads
/// whose full or sampled cell failed are skipped (they surface through
/// the grid's failure report instead).
#[must_use]
pub fn error_rows(workloads: &[String], out: &[CellOutcome<CellResult>]) -> Vec<ErrorRow> {
    let mut rows = Vec::with_capacity(workloads.len());
    for (i, wl) in workloads.iter().enumerate() {
        let (Some(full), Some(sampled)) = (cell_value(out, 2 * i), cell_value(out, 2 * i + 1))
        else {
            continue;
        };
        rows.push(ErrorRow {
            workload: wl.clone(),
            full_ipc: full.ipc_sum(),
            sampled_ipc: sampled.ipc_sum(),
            full_mpki: full.report_metric("mpki").unwrap_or(f64::NAN),
            sampled_mpki: sampled.report_metric("mpki").unwrap_or(f64::NAN),
            full_camat: full.report_metric("camat").unwrap_or(f64::NAN),
            sampled_camat: sampled.report_metric("camat").unwrap_or(f64::NAN),
            reduction: sampled.report_metric("detail_reduction").unwrap_or(0.0),
        });
    }
    rows
}

/// Render the error rows as the `sampling_validation` table.
#[must_use]
pub fn table(rows: &[ErrorRow]) -> TableWriter {
    let header = ErrorRow::header();
    let names: Vec<&str> = header.split('\t').collect();
    let mut t = TableWriter::new(NAME, &names);
    for r in rows {
        t.row(r.render().split('\t').map(str::to_string).collect());
    }
    t
}

/// Standalone experiment plan form, for `run_plans`. Requires
/// `--trace-dir` (sampled cells need recorded interval stats; record
/// with `--interval 5000` — the operating point balances per-segment
/// warmup-handoff bias against cluster-selection variance at that
/// granularity); the sampling spec comes from `--sampling`, defaulting
/// to the validated `k=26,ramp=2200,reps=3` operating point.
#[must_use]
pub fn plan(params: &RunParams) -> ExperimentPlan {
    let wls = workloads(params);
    let sampling = params
        .sampling
        .clone()
        .unwrap_or_else(|| "k=26,ramp=2200,reps=3".to_string());
    // the gate runs against the static LRU policy: it validates the
    // sampling estimator itself. Online-learning schemes (CHROME) are
    // path-dependent — sampled replay compresses the reward timeline
    // ~10x, the agent's learning trajectory diverges from the full
    // run's, and the gap is policy-state error the reconstruction
    // cannot (and should not) hide. See EXPERIMENTS.md.
    let cells = cells(params, &wls, "LRU", &sampling);
    ExperimentPlan {
        name: NAME,
        cells,
        assemble: Box::new(move |out| vec![table(&error_rows(&wls, out))]),
    }
}
