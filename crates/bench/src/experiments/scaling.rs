//! NoC scaling sweep: CHROME vs LRU on 16- and 64-core meshes with
//! sliced LLCs, heterogeneous SPEC mixes.
//!
//! Where Fig. 11 sweeps core counts under the uniform-latency LLC,
//! this sweep turns the mesh NoC on and scales the slice count with
//! the machine (one slice per four cores), so LLC access cost grows
//! with distance and contention instead of staying flat. Cells also
//! run with parallel core stepping (8 workers) — the determinism the
//! `noc_equiv` suite proves means this changes wall-clock only, never
//! results.

use chrome_exec::CellOutcome;
use chrome_noc::NocConfig;
use chrome_traces::mix::heterogeneous_names;

use super::{cell, ExperimentPlan};
use crate::grid::{metric, CellResult};
use crate::runner::{geomean, RunParams};
use crate::table::TableWriter;

const CORE_COUNTS: [usize; 2] = [16, 64];
const SCHEMES: [&str; 2] = ["LRU", "CHROME"];

/// Canonical NoC spec for a machine of `cores` cores: one LLC slice
/// per four cores, default hop/serialization/queue parameters.
fn noc_spec(cores: usize) -> String {
    NocConfig {
        slices: (cores / 4).max(1),
        ..NocConfig::default()
    }
    .canonical()
}

pub fn plan(params: &RunParams) -> ExperimentPlan {
    let mixes = params.mixes.unwrap_or(3);
    let workers = if params.step_workers > 1 {
        params.step_workers
    } else {
        8
    };
    // `--cores 16` / `--cores 64` narrows the sweep to one machine size
    // (the CI smoke runs just the 16-core half); any other value keeps
    // the full sweep.
    let core_counts: Vec<usize> = if CORE_COUNTS.contains(&params.cores) {
        vec![params.cores]
    } else {
        CORE_COUNTS.to_vec()
    };
    let mut cells = Vec::new();
    let mut groups: Vec<(usize, Vec<String>)> = Vec::new();
    for cores in core_counts {
        let labels: Vec<String> = heterogeneous_names(cores, mixes, 0x5CA1E)
            .iter()
            .map(|names| names.join("+"))
            .collect();
        for wl in &labels {
            for scheme in SCHEMES {
                let mut c = cell(params, "scaling_sweep", wl, scheme);
                c.cores = cores as u32;
                c.noc = noc_spec(cores);
                c.workers = workers as u32;
                // Hold the total simulated-instruction budget roughly
                // flat across machine sizes so the 64-core rows stay
                // tractable at the default budget.
                c.instructions = params.instructions * 16 / cores as u64;
                c.warmup = params.warmup * 16 / cores as u64;
                cells.push(c);
            }
        }
        groups.push((cores, labels));
    }

    ExperimentPlan {
        name: "scaling_sweep",
        cells,
        assemble: Box::new(move |out: &[CellOutcome<CellResult>]| {
            let mut table = TableWriter::new(
                "scaling_sweep",
                &["config", "lru_ipc", "chrome_ipc", "speedup", "chrome_camat"],
            );
            let mut cursor = 0;
            for (cores, labels) in &groups {
                let mut speedups = Vec::new();
                for wl in labels {
                    let lru = cursor;
                    let chrome = cursor + 1;
                    cursor += SCHEMES.len();
                    let s = match (
                        out.get(lru).and_then(CellOutcome::value),
                        out.get(chrome).and_then(CellOutcome::value),
                    ) {
                        (Some(l), Some(c)) => c.weighted_speedup_vs(l),
                        _ => f64::NAN,
                    };
                    speedups.push(s);
                    let short: String = wl.chars().take(40).collect();
                    table.row_f(
                        &format!("{cores}c {short}"),
                        &[
                            metric(out, lru, CellResult::ipc_sum),
                            metric(out, chrome, CellResult::ipc_sum),
                            s,
                            metric(out, chrome, |r| {
                                r.report_metric("camat").unwrap_or(f64::NAN)
                            }),
                        ],
                    );
                }
                table.row_f(
                    &format!("{cores}-core geomean"),
                    &[f64::NAN, f64::NAN, geomean(&speedups), f64::NAN],
                );
            }
            vec![table]
        }),
    }
}
