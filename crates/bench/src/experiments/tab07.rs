//! Table VII: EQ FIFO-size sweep — speedup over LRU, Q-table updates
//! per kilo sampled accesses (UPKSA), and the EQ storage overhead.

use chrome_exec::CellOutcome;
use chrome_traces::spec::spec_workloads;

use super::{cell, ExperimentPlan};
use crate::grid::{cell_value, speedup, CellResult};
use crate::runner::{geomean, RunParams};
use crate::table::TableWriter;

const FIFO_SIZES: [usize; 7] = [12, 16, 20, 24, 28, 32, 36];

pub fn plan(params: &RunParams) -> ExperimentPlan {
    let homo_count = params.homo_workloads.unwrap_or(8);
    let workloads: Vec<String> = spec_workloads()
        .into_iter()
        .take(homo_count)
        .map(str::to_string)
        .collect();
    // cells: one LRU base block, then one block per FIFO size
    let mut cells = Vec::new();
    for wl in &workloads {
        let mut c = cell(params, "tab07_fifo_size", wl, "LRU");
        c.record_epochs = true;
        cells.push(c);
    }
    for fifo in FIFO_SIZES {
        let scheme = format!("CHROME-fifo={fifo}");
        for wl in &workloads {
            let mut c = cell(params, "tab07_fifo_size", wl, &scheme);
            c.record_epochs = true;
            cells.push(c);
        }
    }
    let count = workloads.len();
    ExperimentPlan {
        name: "tab07_fifo_size",
        cells,
        assemble: Box::new(move |out: &[CellOutcome<CellResult>]| {
            let mut table = TableWriter::new(
                "tab07_fifo_size",
                &[
                    "fifo_size",
                    "speedup_pct",
                    "upksa",
                    "eq_occupancy",
                    "eq_overflows",
                    "overhead_kb_64q",
                ],
            );
            for (bi, fifo) in FIFO_SIZES.iter().enumerate() {
                let mut speedups = Vec::new();
                let mut upksa_sum = 0.0;
                let mut n = 0u32;
                let mut occ_sum = 0.0;
                let mut overflow_sum = 0.0;
                for wi in 0..count {
                    let i = (bi + 1) * count + wi;
                    speedups.push(speedup(out, i, wi));
                    if let Some(r) = cell_value(out, i) {
                        if let Some(v) = r.report_metric("upksa") {
                            upksa_sum += v;
                            n += 1;
                        }
                        // EQ state from the final epoch record: mean FIFO
                        // occupancy and cumulative overflows at end of run
                        occ_sum += r.eq_occupancy;
                        overflow_sum += r.eq_overflows as f64;
                    }
                }
                // Table VII reports the EQ storage at the paper's 64 queues
                let overhead_kb = 64.0 * *fifo as f64 * 58.0 / 8.0 / 1024.0;
                let wls = count.max(1) as f64;
                table.row_f(
                    &fifo.to_string(),
                    &[
                        (geomean(&speedups) - 1.0) * 100.0,
                        upksa_sum / f64::from(n.max(1)),
                        occ_sum / wls,
                        overflow_sum / wls,
                        overhead_kb,
                    ],
                );
            }
            vec![table]
        }),
    }
}
