//! Grid execution of simulation cells via `chrome-exec`.
//!
//! [`run_grid`] is the single entry point every multi-cell experiment
//! binary (and `run_all`) funnels through: it maps each [`CellSpec`]
//! onto one simulator run, executes the grid across `--jobs` worker
//! threads with fault isolation and checkpoint/resume, and returns
//! outcomes in input order so table assembly is deterministic at any
//! thread count.
//!
//! [`CellResult`] is the compact, manifest-serializable slice of a
//! [`SchemeResult`](crate::runner::SchemeResult) that table assembly
//! consumes. Its codec round-trips floats exactly (shortest-form
//! `f64` printing), which is what lets a resumed run reproduce
//! byte-identical tables from manifest payloads alone.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use chrome_exec::{CellOutcome, CellSpec, Codec, EngineConfig, GridReport, JsonValue};
use chrome_sim::PrefetcherConfig;
use chrome_tracefile::{TraceFile, TraceIndex};
use chrome_traces::mix;

use chrome_simpoint::{build_plan_windowed, reconstruct, SamplingSpec, WorkloadPlan};

use crate::runner::{run_traces, run_traces_sampled, RunParams};

/// Resolution table for file-backed cells: trace content hash (the
/// [`CellSpec::trace`] value, fixed-width hex) to `.ctf` path. The hash
/// is the checkpoint-stable identity; the path is the run-local detail
/// that stays out of spec hashes so manifests survive directory moves.
pub type TraceMap = HashMap<String, PathBuf>;

/// Default checkpoint manifest for grid runs.
pub const DEFAULT_MANIFEST: &str = "results/manifest.jsonl";

/// Map a [`CellSpec::prefetch`] tag onto a prefetcher configuration.
///
/// # Panics
///
/// Panics on an unknown tag (a plan bug, not user input).
#[must_use]
pub fn prefetch_config(tag: &str) -> PrefetcherConfig {
    match tag {
        "paper" => PrefetcherConfig::default_paper(),
        "stride-streamer" => PrefetcherConfig::stride_streamer(),
        "ipcp" => PrefetcherConfig::ipcp(),
        "none" => PrefetcherConfig::none(),
        other => panic!("unknown prefetch tag {other}"),
    }
}

/// The manifest-serializable result of one simulation cell: everything
/// any experiment's table assembly reads, and nothing else.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Per-core IPC (speedups are ratios of these against a base cell).
    pub ipc: Vec<f64>,
    /// LLC demand miss ratio.
    pub demand_miss_ratio: f64,
    /// Effective prefetch hit ratio.
    pub ephr: f64,
    /// Bypass coverage.
    pub bypass_coverage: f64,
    /// Bypassed-block outcomes `(requested_again, never, prefetch)`.
    pub bypassed_outcome: (u64, u64, u64),
    /// Evicted-unused outcomes `(requested_again, never, prefetch)`.
    pub evicted_unused: (u64, u64, u64),
    /// LLC evictions.
    pub evictions: u64,
    /// LLC evictions of never-reused blocks.
    pub evictions_unused: u64,
    /// Scheme-specific report metrics (e.g. CHROME's UPKSA).
    pub report: Vec<(String, f64)>,
    /// Mean EQ FIFO occupancy from the final epoch (0 unless the cell
    /// recorded epochs).
    pub eq_occupancy: f64,
    /// Cumulative EQ FIFO overflows from the final epoch.
    pub eq_overflows: u64,
    /// Telemetry artifact paths this cell exported.
    pub artifacts: Vec<String>,
}

impl CellResult {
    /// Sum of per-core IPCs.
    #[must_use]
    pub fn ipc_sum(&self) -> f64 {
        self.ipc.iter().sum()
    }

    /// Normalized weighted speedup against a baseline cell of the same
    /// workload: `(1/n) Σ IPC_i / IPC_i^base`.
    #[must_use]
    pub fn weighted_speedup_vs(&self, base: &CellResult) -> f64 {
        let n = self.ipc.len() as f64;
        self.ipc
            .iter()
            .zip(&base.ipc)
            .map(|(a, b)| if *b > 0.0 { a / b } else { 0.0 })
            .sum::<f64>()
            / n
    }

    /// A named metric from the scheme report.
    #[must_use]
    pub fn report_metric(&self, key: &str) -> Option<f64> {
        self.report.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// Borrow the result of cell `i`, if it succeeded.
#[must_use]
pub fn cell_value(out: &[CellOutcome<CellResult>], i: usize) -> Option<&CellResult> {
    out.get(i).and_then(CellOutcome::value)
}

/// A metric of cell `i`, or NaN when the cell failed — failed cells
/// surface as NaN table entries and drop out of geomeans instead of
/// aborting the whole experiment.
pub fn metric<F: Fn(&CellResult) -> f64>(out: &[CellOutcome<CellResult>], i: usize, f: F) -> f64 {
    cell_value(out, i).map_or(f64::NAN, f)
}

/// Weighted speedup of cell `i` over base cell `b`, NaN if either failed.
#[must_use]
pub fn speedup(out: &[CellOutcome<CellResult>], i: usize, b: usize) -> f64 {
    match (cell_value(out, i), cell_value(out, b)) {
        (Some(r), Some(base)) => r.weighted_speedup_vs(base),
        _ => f64::NAN,
    }
}

/// Execute one cell: build its traces from the spec-derived seed, run
/// the simulator, and distill the result. This is the function the
/// engine schedules; a panic anywhere inside is the engine's to catch.
///
/// # Panics
///
/// Panics on unknown workload/scheme names or telemetry export errors.
#[must_use]
pub fn run_cell(spec: &CellSpec, telemetry_out: Option<&Path>) -> CellResult {
    run_cell_with_traces(spec, telemetry_out, None)
}

/// [`run_cell`] with an optional trace-resolution table. A cell whose
/// [`CellSpec::trace`] is set replays from the resolved `.ctf` file
/// (streaming, bounded memory) instead of the live generator; the file's
/// content hash is re-checked against the spec at open time, so a stale
/// resolution table can never silently swap trace contents.
///
/// # Panics
///
/// Additionally panics when a file-backed cell's trace hash cannot be
/// resolved, the file fails validation, or its shape (core count, hash)
/// disagrees with the spec.
#[must_use]
pub fn run_cell_with_traces(
    spec: &CellSpec,
    telemetry_out: Option<&Path>,
    trace_files: Option<&TraceMap>,
) -> CellResult {
    let seed = spec.workload_seed();
    let params = RunParams {
        cores: spec.cores as usize,
        instructions: spec.instructions,
        warmup: spec.warmup,
        prefetchers: prefetch_config(&spec.prefetch),
        seed,
        telemetry_out: telemetry_out.map(Path::to_path_buf),
        record_epochs: spec.record_epochs,
        noc: spec.noc.clone(),
        step_workers: spec.workers as usize,
        ..RunParams::default()
    };
    let tf = (!spec.trace.is_empty()).then(|| open_spec_trace(spec, trace_files));
    if !spec.sampling.is_empty() {
        let tf = tf.unwrap_or_else(|| {
            panic!(
                "cell {} requests sampling ({}) but is not file-backed; \
                 representative-interval sampling needs a recorded trace (--trace-dir)",
                spec.label(),
                spec.sampling
            )
        });
        return run_sampled_cell(spec, &params, &tf);
    }
    let traces = match &tf {
        Some(tf) => tf
            .sources()
            .unwrap_or_else(|e| panic!("streaming trace for {}: {e}", spec.label())),
        None => {
            if spec.workload.contains('+') {
                let names: Vec<&str> = spec.workload.split('+').collect();
                mix::build_mix(&names, seed)
                    .unwrap_or_else(|| panic!("unknown mix {}", spec.workload))
            } else {
                mix::homogeneous(&spec.workload, params.cores, seed)
                    .unwrap_or_else(|| panic!("unknown workload {}", spec.workload))
            }
        }
    };
    let r = run_traces(
        &params,
        traces,
        &spec.scheme,
        spec.track_unused,
        &spec.workload,
        Some(&spec.hash_hex()),
    );
    let (eq_occupancy, eq_overflows) = r.epochs.records().last().map_or((0.0, 0), |last| {
        (last.policy.eq_occupancy, last.policy.eq_overflows)
    });
    // every cell reports its aggregate MPKI and C-AMAT so sampled runs
    // have a full-run value to validate against
    let mut report = r.report;
    report.push(("mpki".into(), reconstruct::aggregate_mpki(&r.results)));
    report.push(("camat".into(), reconstruct::aggregate_camat(&r.results)));
    CellResult {
        ipc: r
            .results
            .per_core
            .iter()
            .map(chrome_sim::CoreStats::ipc)
            .collect(),
        demand_miss_ratio: r.results.llc.demand_miss_ratio(),
        ephr: r.results.llc.ephr(),
        bypass_coverage: r.results.llc.bypass_coverage(),
        bypassed_outcome: r.results.bypassed_outcome,
        evicted_unused: r.results.evicted_unused,
        evictions: r.results.llc.evictions,
        evictions_unused: r.results.llc.evictions_unused,
        report,
        eq_occupancy,
        eq_overflows,
        artifacts: r
            .artifacts
            .iter()
            .map(|p| p.to_string_lossy().into_owned())
            .collect(),
    }
}

/// Resolve and open a file-backed cell's trace, cross-checking content
/// hash and core count against the spec.
fn open_spec_trace(spec: &CellSpec, trace_files: Option<&TraceMap>) -> TraceFile {
    let path = trace_files
        .and_then(|m| m.get(&spec.trace))
        .unwrap_or_else(|| {
            panic!(
                "cell {} is file-backed (trace={}) but no trace map entry resolves it",
                spec.label(),
                spec.trace
            )
        });
    let tf =
        TraceFile::open(path).unwrap_or_else(|e| panic!("opening trace {}: {e}", path.display()));
    let m = tf.manifest();
    assert_eq!(
        m.hash_hex(),
        spec.trace,
        "trace file {} content hash diverged from the spec's",
        path.display()
    );
    assert_eq!(
        m.cores.len() as u32,
        spec.cores,
        "trace file {} holds the wrong number of core streams",
        path.display()
    );
    tf
}

/// Scale a per-interval counter rate up to the cell's full instruction
/// budget: `Σ wⱼ · (counterⱼ / instrⱼ) · budget`, rounded. Keeps
/// counter-valued [`CellResult`] fields comparable in magnitude to a
/// full run's.
fn weighted_scaled(
    weights: &[f64],
    results: &[chrome_sim::SimResults],
    budget: u64,
    counter: impl Fn(&chrome_sim::SimResults) -> u64,
) -> u64 {
    let wsum: f64 = weights.iter().sum();
    let mut rate = 0.0;
    for (w, r) in weights.iter().zip(results) {
        let instr: u64 = r.per_core.iter().map(|c| c.instructions).sum();
        if instr > 0 {
            rate += w / wsum * counter(r) as f64 / instr as f64;
        }
    }
    (rate * budget as f64).round() as u64
}

/// Reconstructed ratio of two counters, each first normalized to a
/// per-instruction rate and instruction-weighted across intervals.
fn weighted_ratio(
    weights: &[f64],
    results: &[chrome_sim::SimResults],
    num: impl Fn(&chrome_sim::SimResults) -> u64,
    den: impl Fn(&chrome_sim::SimResults) -> u64,
) -> f64 {
    let n = weighted_scaled(weights, results, 1_000_000, num) as f64;
    let d = weighted_scaled(weights, results, 1_000_000, den) as f64;
    if d > 0.0 {
        n / d
    } else {
        0.0
    }
}

/// Execute a sampled cell: build the deterministic sampling plan from
/// the trace's interval stats, replay only the representative intervals
/// (functional warmup + detailed ramp + measurement), and reconstruct
/// full-run metrics from the weighted per-interval results.
fn run_sampled_cell(spec: &CellSpec, params: &RunParams, tf: &TraceFile) -> CellResult {
    assert!(
        !spec.track_unused,
        "cell {}: evicted-unused tracking is whole-run state and cannot \
         be reconstructed from sampled intervals",
        spec.label()
    );
    let sampling = SamplingSpec::parse(&spec.sampling)
        .unwrap_or_else(|e| panic!("cell {}: {e}", spec.label()));
    // window the plan to exactly what a full run of this cell measures
    let plan = build_plan_windowed(
        tf,
        sampling,
        spec.workload_seed(),
        spec.warmup,
        spec.instructions,
    )
    .unwrap_or_else(|e| panic!("cell {}: building sampling plan: {e}", spec.label()));
    sampled_cell_result(spec, params, tf, &plan, chrome_sim::Kernel::default())
}

/// [`run_sampled_cell`] with a pre-built plan and explicit kernel — the
/// `simpoint` binary's validation path reuses this to check kernel
/// identity on the same plan.
pub fn sampled_cell_result(
    spec: &CellSpec,
    params: &RunParams,
    tf: &TraceFile,
    plan: &WorkloadPlan,
    kernel: chrome_sim::Kernel,
) -> CellResult {
    let traces = tf
        .sources()
        .unwrap_or_else(|e| panic!("streaming trace for {}: {e}", spec.label()));
    let run = run_traces_sampled(
        params,
        traces,
        &spec.scheme,
        plan,
        kernel,
        &spec.workload,
        Some(&spec.hash_hex()),
    );
    // functional control-variate pass: full interval coverage at zero
    // detailed cost, pairing with the measured segments above
    let profile_traces = tf
        .sources()
        .unwrap_or_else(|e| panic!("streaming trace for {}: {e}", spec.label()));
    let profile = crate::runner::run_functional_profile(params, profile_traces, &spec.scheme, plan);
    let weights: Vec<f64> = plan.segments.iter().map(|s| s.weight).collect();
    let rec = reconstruct::reconstruct_with_profile(plan, &run.results, &profile);
    let budget = spec.instructions * u64::from(spec.cores);
    let llc = |f: fn(&chrome_sim::CacheStats) -> u64| move |r: &chrome_sim::SimResults| f(&r.llc);
    let (eq_occupancy, eq_overflows) = run.epochs.records().last().map_or((0.0, 0), |last| {
        (last.policy.eq_occupancy, last.policy.eq_overflows)
    });
    let mut report = run.report;
    report.push(("sampled".into(), 1.0));
    report.push(("mpki".into(), rec.mpki));
    report.push(("camat".into(), rec.camat));
    report.push(("segments".into(), plan.segments.len() as f64));
    report.push((
        "detail_reduction".into(),
        plan.reduction(spec.warmup + spec.instructions),
    ));
    CellResult {
        ipc: rec.per_core_ipc,
        demand_miss_ratio: weighted_ratio(
            &weights,
            &run.results,
            llc(|l| l.demand_misses),
            llc(|l| l.demand_accesses),
        ),
        ephr: weighted_ratio(
            &weights,
            &run.results,
            llc(|l| l.prefetch_useful),
            llc(|l| l.prefetch_fills),
        ),
        bypass_coverage: weighted_ratio(&weights, &run.results, llc(|l| l.bypasses), |r| {
            r.llc.bypasses
                + (r.llc.demand_misses + r.llc.prefetch_misses).saturating_sub(r.llc.bypasses)
        }),
        bypassed_outcome: (0, 0, 0),
        evicted_unused: (0, 0, 0),
        evictions: weighted_scaled(&weights, &run.results, budget, llc(|l| l.evictions)),
        evictions_unused: weighted_scaled(
            &weights,
            &run.results,
            budget,
            llc(|l| l.evictions_unused),
        ),
        report,
        eq_occupancy,
        eq_overflows,
        artifacts: run
            .artifacts
            .iter()
            .map(|p| p.to_string_lossy().into_owned())
            .collect(),
    }
}

/// JSON codec for [`CellResult`] manifest payloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct CellCodec;

fn nums(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| chrome_exec::json::num(*v))
        .collect::<Vec<_>>()
        .join(",")
}

fn triple(t: (u64, u64, u64)) -> String {
    format!("[{},{},{}]", t.0, t.1, t.2)
}

fn parse_triple(v: Option<&JsonValue>) -> Option<(u64, u64, u64)> {
    let a = v?.as_arr()?;
    Some((
        a.first()?.as_u64()?,
        a.get(1)?.as_u64()?,
        a.get(2)?.as_u64()?,
    ))
}

impl Codec<CellResult> for CellCodec {
    fn encode(&self, r: &CellResult) -> String {
        use chrome_exec::json::{escape, num};
        let report: Vec<String> = r
            .report
            .iter()
            .map(|(k, v)| format!("[\"{}\",{}]", escape(k), num(*v)))
            .collect();
        let artifacts: Vec<String> = r
            .artifacts
            .iter()
            .map(|a| format!("\"{}\"", escape(a)))
            .collect();
        format!(
            "{{\"ipc\":[{}],\"miss\":{},\"ephr\":{},\"bypass\":{},\
             \"bypassed\":{},\"unused\":{},\"evictions\":{},\
             \"evictions_unused\":{},\"report\":[{}],\"eq_occ\":{},\
             \"eq_ovf\":{},\"artifacts\":[{}]}}",
            nums(&r.ipc),
            num(r.demand_miss_ratio),
            num(r.ephr),
            num(r.bypass_coverage),
            triple(r.bypassed_outcome),
            triple(r.evicted_unused),
            r.evictions,
            r.evictions_unused,
            report.join(","),
            num(r.eq_occupancy),
            r.eq_overflows,
            artifacts.join(","),
        )
    }

    fn decode(&self, payload: &JsonValue) -> Option<CellResult> {
        let floats = |key: &str| -> Option<Vec<f64>> {
            payload
                .get(key)?
                .as_arr()?
                .iter()
                .map(JsonValue::as_f64)
                .collect()
        };
        let report = payload
            .get("report")?
            .as_arr()?
            .iter()
            .map(|pair| {
                let p = pair.as_arr()?;
                Some((p.first()?.as_str()?.to_string(), p.get(1)?.as_f64()?))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(CellResult {
            ipc: floats("ipc")?,
            demand_miss_ratio: payload.get("miss")?.as_f64()?,
            ephr: payload.get("ephr")?.as_f64()?,
            bypass_coverage: payload.get("bypass")?.as_f64()?,
            bypassed_outcome: parse_triple(payload.get("bypassed"))?,
            evicted_unused: parse_triple(payload.get("unused"))?,
            evictions: payload.get("evictions")?.as_u64()?,
            evictions_unused: payload.get("evictions_unused")?.as_u64()?,
            report,
            eq_occupancy: payload.get("eq_occ")?.as_f64()?,
            eq_overflows: payload.get("eq_ovf")?.as_u64()?,
            artifacts: payload
                .get("artifacts")?
                .as_arr()?
                .iter()
                .map(|a| a.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
        })
    }

    fn artifacts(&self, r: &CellResult) -> Vec<String> {
        r.artifacts.clone()
    }
}

/// Resolve grid cells against a directory of recorded traces: every
/// cell whose workload identity (`workload`, `cores`, generator seed)
/// matches an indexed `.ctf` becomes file-backed — its
/// [`CellSpec::trace`] is set to the trace's content hash (changing the
/// checkpoint identity, so `--resume` never pairs a checkpoint with a
/// different trace revision) — and the returned [`TraceMap`] carries
/// the hash-to-path resolution. Cells without a matching trace keep the
/// live generator.
///
/// # Panics
///
/// Panics when the directory cannot be scanned (a CLI-input error, not
/// a cell fault).
pub fn resolve_traces(cells: &mut [CellSpec], dir: &Path) -> TraceMap {
    let index = TraceIndex::scan(dir)
        .unwrap_or_else(|e| panic!("scanning --trace-dir {}: {e}", dir.display()));
    for (path, reason) in &index.rejected {
        eprintln!("trace-dir: skipping {}: {reason}", path.display());
    }
    let mut map = TraceMap::new();
    let mut backed = 0usize;
    let total = cells.len();
    for cell in cells {
        let Some(entry) = index.lookup(&cell.workload, cell.cores as usize, cell.workload_seed())
        else {
            continue;
        };
        if entry.quota < cell.warmup + cell.instructions {
            eprintln!(
                "trace-dir: {} covers {} instructions/core but {} needs {}; \
                 replay will wrap around",
                entry.path.display(),
                entry.quota,
                cell.label(),
                cell.warmup + cell.instructions,
            );
        }
        cell.trace = entry.hash_hex();
        map.insert(cell.trace.clone(), entry.path.clone());
        backed += 1;
    }
    eprintln!(
        "trace-dir: {backed} of {total} cells file-backed from {}",
        dir.display()
    );
    map
}

/// Run a grid of simulation cells under the engine configured from
/// `params` (`--jobs`, `--retries`, `--resume`, `--manifest`,
/// `--trace-dir`). Outcomes come back in input order; failed cells
/// carry their panic payloads instead of aborting the run.
///
/// # Panics
///
/// Panics when the checkpoint manifest cannot be written.
#[must_use]
pub fn run_grid(params: &RunParams, mut cells: Vec<CellSpec>) -> GridReport<CellResult> {
    let trace_files = params
        .trace_dir
        .as_deref()
        .map(|dir| resolve_traces(&mut cells, dir));
    if let Some(sampling) = &params.sampling {
        assert!(
            trace_files.is_some(),
            "--sampling needs recorded interval stats; pass --trace-dir too"
        );
        SamplingSpec::parse(sampling).unwrap_or_else(|e| panic!("--sampling: {e}"));
        let mut sampled = 0usize;
        for cell in &mut cells {
            // sampling folds into the spec hash, so sampled cells never
            // share a checkpoint with full cells of the same identity
            if !cell.trace.is_empty() {
                cell.sampling = sampling.clone();
                sampled += 1;
            }
        }
        eprintln!(
            "sampling: {sampled} of {} cells sampled with {sampling}; \
             generator-backed cells stay full",
            cells.len()
        );
    }
    let manifest = params
        .manifest
        .clone()
        .unwrap_or_else(|| PathBuf::from(DEFAULT_MANIFEST));
    let cfg = EngineConfig {
        jobs: params.jobs.unwrap_or(0),
        retries: params.retries,
        backoff_ms: 100,
        backoff_cap_ms: 5_000,
        manifest_path: Some(manifest),
        resume: params.resume,
        progress: params.progress,
    };
    let telemetry_out = params.telemetry_out.clone();
    chrome_exec::run_grid(cells, &cfg, &CellCodec, move |spec| {
        run_cell_with_traces(spec, telemetry_out.as_deref(), trace_files.as_ref())
    })
    .unwrap_or_else(|e| panic!("grid manifest I/O failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CellResult {
        CellResult {
            ipc: vec![1.5, 1.0 / 3.0],
            demand_miss_ratio: 0.25,
            ephr: 0.75,
            bypass_coverage: 0.1,
            bypassed_outcome: (1, 2, 3),
            evicted_unused: (4, 5, 6),
            evictions: 100,
            evictions_unused: 40,
            report: vec![("upksa".into(), 12.5), ("q_mag".into(), 0.1)],
            eq_occupancy: 0.5,
            eq_overflows: 7,
            artifacts: vec!["results/telemetry/x_epochs.csv".into()],
        }
    }

    #[test]
    fn codec_roundtrips_exactly() {
        let r = sample();
        let encoded = CellCodec.encode(&r);
        let parsed = chrome_exec::json::parse(&encoded).expect("codec emits valid JSON");
        let back = CellCodec.decode(&parsed).expect("decodes");
        assert_eq!(back, r);
        // float bits survive (shortest round-trip printing)
        assert_eq!(back.ipc[1].to_bits(), (1.0f64 / 3.0).to_bits());
    }

    #[test]
    fn codec_roundtrips_through_render() {
        // resume path: payload is re-rendered into the manifest line
        let r = sample();
        let parsed = chrome_exec::json::parse(&CellCodec.encode(&r)).unwrap();
        let rerendered = chrome_exec::json::parse(&parsed.render()).unwrap();
        assert_eq!(CellCodec.decode(&rerendered).unwrap(), r);
    }

    #[test]
    fn weighted_speedup_matches_definition() {
        let mut a = sample();
        let mut b = sample();
        a.ipc = vec![2.0, 1.0];
        b.ipc = vec![1.0, 2.0];
        assert!((a.weighted_speedup_vs(&b) - (2.0 + 0.5) / 2.0).abs() < 1e-12);
        assert!((a.weighted_speedup_vs(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prefetch_tags_cover_all_configs() {
        assert_eq!(prefetch_config("paper"), PrefetcherConfig::default_paper());
        assert_eq!(
            prefetch_config("stride-streamer"),
            PrefetcherConfig::stride_streamer()
        );
        assert_eq!(prefetch_config("ipcp"), PrefetcherConfig::ipcp());
        assert_eq!(prefetch_config("none"), PrefetcherConfig::none());
    }

    fn unit_spec() -> CellSpec {
        CellSpec {
            experiment: "unit".into(),
            workload: "libquantum".into(),
            scheme: "LRU".into(),
            cores: 1,
            instructions: 20_000,
            warmup: 2_000,
            seed: 7,
            prefetch: "paper".into(),
            track_unused: false,
            record_epochs: false,
            trace: String::new(),
            sampling: String::new(),
            noc: String::new(),
            workers: 0,
        }
    }

    #[test]
    fn run_cell_produces_result() {
        let r = run_cell(&unit_spec(), None);
        assert_eq!(r.ipc.len(), 1);
        assert!(r.ipc[0] > 0.0);
        assert!(r.artifacts.is_empty());
    }

    #[test]
    fn sampled_cell_runs_and_reconstructs() {
        let dir = std::env::temp_dir().join("chrome-bench-grid-sampled");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut spec = unit_spec();
        spec.instructions = 60_000;
        spec.warmup = 5_000;
        chrome_tracefile::recorder::record_workload(
            &dir.join("libquantum.ctf"),
            &spec.workload,
            1,
            spec.workload_seed(),
            80_000,
            chrome_tracefile::Codec::Compact,
            5_000,
        )
        .unwrap();
        let map = resolve_traces(std::slice::from_mut(&mut spec), &dir);
        let full = run_cell_with_traces(&spec, None, Some(&map));
        spec.sampling = "k=3,ramp=1000".into();
        let sampled = run_cell_with_traces(&spec, None, Some(&map));
        // deterministic across repeats
        let again = run_cell_with_traces(&spec, None, Some(&map));
        assert_eq!(sampled, again);
        // reconstruction lands in the right ballpark of the full run
        assert!(sampled.ipc[0] > 0.0);
        let rel = (sampled.ipc_sum() - full.ipc_sum()).abs() / full.ipc_sum();
        assert!(rel < 0.25, "sampled IPC off by {:.1}%", rel * 100.0);
        assert!(sampled.report_metric("sampled") == Some(1.0));
        assert!(sampled.report_metric("mpki").is_some());
        assert!(full.report_metric("mpki").is_some());
        assert!(full.report_metric("sampled").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backed_cell_matches_live_generator() {
        let dir = std::env::temp_dir().join("chrome-bench-grid-tracedir");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut spec = unit_spec();
        // generous quota: covers warmup + instructions + ROB runahead,
        // so the replay never wraps and matches the generator exactly
        chrome_tracefile::recorder::record_workload(
            &dir.join("libquantum.ctf"),
            &spec.workload,
            1,
            spec.workload_seed(),
            40_000,
            chrome_tracefile::Codec::Compact,
            10_000,
        )
        .unwrap();
        let live = run_cell(&spec, None);
        let map = resolve_traces(std::slice::from_mut(&mut spec), &dir);
        assert!(!spec.trace.is_empty(), "cell resolved to the trace file");
        assert_eq!(map.len(), 1);
        let replayed = run_cell_with_traces(&spec, None, Some(&map));
        assert_eq!(replayed, live, "file replay must be result-identical");
        // an unrelated identity stays generator-backed
        let mut other = unit_spec();
        other.seed = 8;
        resolve_traces(std::slice::from_mut(&mut other), &dir);
        assert!(other.trace.is_empty());
    }
}
