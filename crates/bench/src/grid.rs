//! Grid execution of simulation cells via `chrome-exec`.
//!
//! [`run_grid`] is the single entry point every multi-cell experiment
//! binary (and `run_all`) funnels through: it maps each [`CellSpec`]
//! onto one simulator run, executes the grid across `--jobs` worker
//! threads with fault isolation and checkpoint/resume, and returns
//! outcomes in input order so table assembly is deterministic at any
//! thread count.
//!
//! [`CellResult`] is the compact, manifest-serializable slice of a
//! [`SchemeResult`](crate::runner::SchemeResult) that table assembly
//! consumes. Its codec round-trips floats exactly (shortest-form
//! `f64` printing), which is what lets a resumed run reproduce
//! byte-identical tables from manifest payloads alone.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use chrome_exec::{CellOutcome, CellSpec, Codec, EngineConfig, GridReport, JsonValue};
use chrome_sim::PrefetcherConfig;
use chrome_tracefile::{TraceFile, TraceIndex};
use chrome_traces::mix;

use crate::runner::{run_traces, RunParams};

/// Resolution table for file-backed cells: trace content hash (the
/// [`CellSpec::trace`] value, fixed-width hex) to `.ctf` path. The hash
/// is the checkpoint-stable identity; the path is the run-local detail
/// that stays out of spec hashes so manifests survive directory moves.
pub type TraceMap = HashMap<String, PathBuf>;

/// Default checkpoint manifest for grid runs.
pub const DEFAULT_MANIFEST: &str = "results/manifest.jsonl";

/// Map a [`CellSpec::prefetch`] tag onto a prefetcher configuration.
///
/// # Panics
///
/// Panics on an unknown tag (a plan bug, not user input).
#[must_use]
pub fn prefetch_config(tag: &str) -> PrefetcherConfig {
    match tag {
        "paper" => PrefetcherConfig::default_paper(),
        "stride-streamer" => PrefetcherConfig::stride_streamer(),
        "ipcp" => PrefetcherConfig::ipcp(),
        "none" => PrefetcherConfig::none(),
        other => panic!("unknown prefetch tag {other}"),
    }
}

/// The manifest-serializable result of one simulation cell: everything
/// any experiment's table assembly reads, and nothing else.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Per-core IPC (speedups are ratios of these against a base cell).
    pub ipc: Vec<f64>,
    /// LLC demand miss ratio.
    pub demand_miss_ratio: f64,
    /// Effective prefetch hit ratio.
    pub ephr: f64,
    /// Bypass coverage.
    pub bypass_coverage: f64,
    /// Bypassed-block outcomes `(requested_again, never, prefetch)`.
    pub bypassed_outcome: (u64, u64, u64),
    /// Evicted-unused outcomes `(requested_again, never, prefetch)`.
    pub evicted_unused: (u64, u64, u64),
    /// LLC evictions.
    pub evictions: u64,
    /// LLC evictions of never-reused blocks.
    pub evictions_unused: u64,
    /// Scheme-specific report metrics (e.g. CHROME's UPKSA).
    pub report: Vec<(String, f64)>,
    /// Mean EQ FIFO occupancy from the final epoch (0 unless the cell
    /// recorded epochs).
    pub eq_occupancy: f64,
    /// Cumulative EQ FIFO overflows from the final epoch.
    pub eq_overflows: u64,
    /// Telemetry artifact paths this cell exported.
    pub artifacts: Vec<String>,
}

impl CellResult {
    /// Sum of per-core IPCs.
    #[must_use]
    pub fn ipc_sum(&self) -> f64 {
        self.ipc.iter().sum()
    }

    /// Normalized weighted speedup against a baseline cell of the same
    /// workload: `(1/n) Σ IPC_i / IPC_i^base`.
    #[must_use]
    pub fn weighted_speedup_vs(&self, base: &CellResult) -> f64 {
        let n = self.ipc.len() as f64;
        self.ipc
            .iter()
            .zip(&base.ipc)
            .map(|(a, b)| if *b > 0.0 { a / b } else { 0.0 })
            .sum::<f64>()
            / n
    }

    /// A named metric from the scheme report.
    #[must_use]
    pub fn report_metric(&self, key: &str) -> Option<f64> {
        self.report.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// Borrow the result of cell `i`, if it succeeded.
#[must_use]
pub fn cell_value(out: &[CellOutcome<CellResult>], i: usize) -> Option<&CellResult> {
    out.get(i).and_then(CellOutcome::value)
}

/// A metric of cell `i`, or NaN when the cell failed — failed cells
/// surface as NaN table entries and drop out of geomeans instead of
/// aborting the whole experiment.
pub fn metric<F: Fn(&CellResult) -> f64>(out: &[CellOutcome<CellResult>], i: usize, f: F) -> f64 {
    cell_value(out, i).map_or(f64::NAN, f)
}

/// Weighted speedup of cell `i` over base cell `b`, NaN if either failed.
#[must_use]
pub fn speedup(out: &[CellOutcome<CellResult>], i: usize, b: usize) -> f64 {
    match (cell_value(out, i), cell_value(out, b)) {
        (Some(r), Some(base)) => r.weighted_speedup_vs(base),
        _ => f64::NAN,
    }
}

/// Execute one cell: build its traces from the spec-derived seed, run
/// the simulator, and distill the result. This is the function the
/// engine schedules; a panic anywhere inside is the engine's to catch.
///
/// # Panics
///
/// Panics on unknown workload/scheme names or telemetry export errors.
#[must_use]
pub fn run_cell(spec: &CellSpec, telemetry_out: Option<&Path>) -> CellResult {
    run_cell_with_traces(spec, telemetry_out, None)
}

/// [`run_cell`] with an optional trace-resolution table. A cell whose
/// [`CellSpec::trace`] is set replays from the resolved `.ctf` file
/// (streaming, bounded memory) instead of the live generator; the file's
/// content hash is re-checked against the spec at open time, so a stale
/// resolution table can never silently swap trace contents.
///
/// # Panics
///
/// Additionally panics when a file-backed cell's trace hash cannot be
/// resolved, the file fails validation, or its shape (core count, hash)
/// disagrees with the spec.
#[must_use]
pub fn run_cell_with_traces(
    spec: &CellSpec,
    telemetry_out: Option<&Path>,
    trace_files: Option<&TraceMap>,
) -> CellResult {
    let seed = spec.workload_seed();
    let params = RunParams {
        cores: spec.cores as usize,
        instructions: spec.instructions,
        warmup: spec.warmup,
        prefetchers: prefetch_config(&spec.prefetch),
        seed,
        telemetry_out: telemetry_out.map(Path::to_path_buf),
        record_epochs: spec.record_epochs,
        ..RunParams::default()
    };
    let traces = if spec.trace.is_empty() {
        if spec.workload.contains('+') {
            let names: Vec<&str> = spec.workload.split('+').collect();
            mix::build_mix(&names, seed).unwrap_or_else(|| panic!("unknown mix {}", spec.workload))
        } else {
            mix::homogeneous(&spec.workload, params.cores, seed)
                .unwrap_or_else(|| panic!("unknown workload {}", spec.workload))
        }
    } else {
        let path = trace_files
            .and_then(|m| m.get(&spec.trace))
            .unwrap_or_else(|| {
                panic!(
                    "cell {} is file-backed (trace={}) but no trace map entry resolves it",
                    spec.label(),
                    spec.trace
                )
            });
        let tf = TraceFile::open(path)
            .unwrap_or_else(|e| panic!("opening trace {}: {e}", path.display()));
        let m = tf.manifest();
        assert_eq!(
            m.hash_hex(),
            spec.trace,
            "trace file {} content hash diverged from the spec's",
            path.display()
        );
        assert_eq!(
            m.cores.len(),
            params.cores,
            "trace file {} holds the wrong number of core streams",
            path.display()
        );
        tf.sources()
            .unwrap_or_else(|e| panic!("streaming {}: {e}", path.display()))
    };
    let r = run_traces(
        &params,
        traces,
        &spec.scheme,
        spec.track_unused,
        &spec.workload,
        Some(&spec.hash_hex()),
    );
    let (eq_occupancy, eq_overflows) = r.epochs.records().last().map_or((0.0, 0), |last| {
        (last.policy.eq_occupancy, last.policy.eq_overflows)
    });
    CellResult {
        ipc: r
            .results
            .per_core
            .iter()
            .map(chrome_sim::CoreStats::ipc)
            .collect(),
        demand_miss_ratio: r.results.llc.demand_miss_ratio(),
        ephr: r.results.llc.ephr(),
        bypass_coverage: r.results.llc.bypass_coverage(),
        bypassed_outcome: r.results.bypassed_outcome,
        evicted_unused: r.results.evicted_unused,
        evictions: r.results.llc.evictions,
        evictions_unused: r.results.llc.evictions_unused,
        report: r.report,
        eq_occupancy,
        eq_overflows,
        artifacts: r
            .artifacts
            .iter()
            .map(|p| p.to_string_lossy().into_owned())
            .collect(),
    }
}

/// JSON codec for [`CellResult`] manifest payloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct CellCodec;

fn nums(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| chrome_exec::json::num(*v))
        .collect::<Vec<_>>()
        .join(",")
}

fn triple(t: (u64, u64, u64)) -> String {
    format!("[{},{},{}]", t.0, t.1, t.2)
}

fn parse_triple(v: Option<&JsonValue>) -> Option<(u64, u64, u64)> {
    let a = v?.as_arr()?;
    Some((
        a.first()?.as_u64()?,
        a.get(1)?.as_u64()?,
        a.get(2)?.as_u64()?,
    ))
}

impl Codec<CellResult> for CellCodec {
    fn encode(&self, r: &CellResult) -> String {
        use chrome_exec::json::{escape, num};
        let report: Vec<String> = r
            .report
            .iter()
            .map(|(k, v)| format!("[\"{}\",{}]", escape(k), num(*v)))
            .collect();
        let artifacts: Vec<String> = r
            .artifacts
            .iter()
            .map(|a| format!("\"{}\"", escape(a)))
            .collect();
        format!(
            "{{\"ipc\":[{}],\"miss\":{},\"ephr\":{},\"bypass\":{},\
             \"bypassed\":{},\"unused\":{},\"evictions\":{},\
             \"evictions_unused\":{},\"report\":[{}],\"eq_occ\":{},\
             \"eq_ovf\":{},\"artifacts\":[{}]}}",
            nums(&r.ipc),
            num(r.demand_miss_ratio),
            num(r.ephr),
            num(r.bypass_coverage),
            triple(r.bypassed_outcome),
            triple(r.evicted_unused),
            r.evictions,
            r.evictions_unused,
            report.join(","),
            num(r.eq_occupancy),
            r.eq_overflows,
            artifacts.join(","),
        )
    }

    fn decode(&self, payload: &JsonValue) -> Option<CellResult> {
        let floats = |key: &str| -> Option<Vec<f64>> {
            payload
                .get(key)?
                .as_arr()?
                .iter()
                .map(JsonValue::as_f64)
                .collect()
        };
        let report = payload
            .get("report")?
            .as_arr()?
            .iter()
            .map(|pair| {
                let p = pair.as_arr()?;
                Some((p.first()?.as_str()?.to_string(), p.get(1)?.as_f64()?))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(CellResult {
            ipc: floats("ipc")?,
            demand_miss_ratio: payload.get("miss")?.as_f64()?,
            ephr: payload.get("ephr")?.as_f64()?,
            bypass_coverage: payload.get("bypass")?.as_f64()?,
            bypassed_outcome: parse_triple(payload.get("bypassed"))?,
            evicted_unused: parse_triple(payload.get("unused"))?,
            evictions: payload.get("evictions")?.as_u64()?,
            evictions_unused: payload.get("evictions_unused")?.as_u64()?,
            report,
            eq_occupancy: payload.get("eq_occ")?.as_f64()?,
            eq_overflows: payload.get("eq_ovf")?.as_u64()?,
            artifacts: payload
                .get("artifacts")?
                .as_arr()?
                .iter()
                .map(|a| a.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
        })
    }

    fn artifacts(&self, r: &CellResult) -> Vec<String> {
        r.artifacts.clone()
    }
}

/// Resolve grid cells against a directory of recorded traces: every
/// cell whose workload identity (`workload`, `cores`, generator seed)
/// matches an indexed `.ctf` becomes file-backed — its
/// [`CellSpec::trace`] is set to the trace's content hash (changing the
/// checkpoint identity, so `--resume` never pairs a checkpoint with a
/// different trace revision) — and the returned [`TraceMap`] carries
/// the hash-to-path resolution. Cells without a matching trace keep the
/// live generator.
///
/// # Panics
///
/// Panics when the directory cannot be scanned (a CLI-input error, not
/// a cell fault).
pub fn resolve_traces(cells: &mut [CellSpec], dir: &Path) -> TraceMap {
    let index = TraceIndex::scan(dir)
        .unwrap_or_else(|e| panic!("scanning --trace-dir {}: {e}", dir.display()));
    for (path, reason) in &index.rejected {
        eprintln!("trace-dir: skipping {}: {reason}", path.display());
    }
    let mut map = TraceMap::new();
    let mut backed = 0usize;
    let total = cells.len();
    for cell in cells {
        let Some(entry) = index.lookup(&cell.workload, cell.cores as usize, cell.workload_seed())
        else {
            continue;
        };
        if entry.quota < cell.warmup + cell.instructions {
            eprintln!(
                "trace-dir: {} covers {} instructions/core but {} needs {}; \
                 replay will wrap around",
                entry.path.display(),
                entry.quota,
                cell.label(),
                cell.warmup + cell.instructions,
            );
        }
        cell.trace = entry.hash_hex();
        map.insert(cell.trace.clone(), entry.path.clone());
        backed += 1;
    }
    eprintln!(
        "trace-dir: {backed} of {total} cells file-backed from {}",
        dir.display()
    );
    map
}

/// Run a grid of simulation cells under the engine configured from
/// `params` (`--jobs`, `--retries`, `--resume`, `--manifest`,
/// `--trace-dir`). Outcomes come back in input order; failed cells
/// carry their panic payloads instead of aborting the run.
///
/// # Panics
///
/// Panics when the checkpoint manifest cannot be written.
#[must_use]
pub fn run_grid(params: &RunParams, mut cells: Vec<CellSpec>) -> GridReport<CellResult> {
    let trace_files = params
        .trace_dir
        .as_deref()
        .map(|dir| resolve_traces(&mut cells, dir));
    let manifest = params
        .manifest
        .clone()
        .unwrap_or_else(|| PathBuf::from(DEFAULT_MANIFEST));
    let cfg = EngineConfig {
        jobs: params.jobs.unwrap_or(0),
        retries: params.retries,
        backoff_ms: 100,
        backoff_cap_ms: 5_000,
        manifest_path: Some(manifest),
        resume: params.resume,
        progress: params.progress,
    };
    let telemetry_out = params.telemetry_out.clone();
    chrome_exec::run_grid(cells, &cfg, &CellCodec, move |spec| {
        run_cell_with_traces(spec, telemetry_out.as_deref(), trace_files.as_ref())
    })
    .unwrap_or_else(|e| panic!("grid manifest I/O failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CellResult {
        CellResult {
            ipc: vec![1.5, 1.0 / 3.0],
            demand_miss_ratio: 0.25,
            ephr: 0.75,
            bypass_coverage: 0.1,
            bypassed_outcome: (1, 2, 3),
            evicted_unused: (4, 5, 6),
            evictions: 100,
            evictions_unused: 40,
            report: vec![("upksa".into(), 12.5), ("q_mag".into(), 0.1)],
            eq_occupancy: 0.5,
            eq_overflows: 7,
            artifacts: vec!["results/telemetry/x_epochs.csv".into()],
        }
    }

    #[test]
    fn codec_roundtrips_exactly() {
        let r = sample();
        let encoded = CellCodec.encode(&r);
        let parsed = chrome_exec::json::parse(&encoded).expect("codec emits valid JSON");
        let back = CellCodec.decode(&parsed).expect("decodes");
        assert_eq!(back, r);
        // float bits survive (shortest round-trip printing)
        assert_eq!(back.ipc[1].to_bits(), (1.0f64 / 3.0).to_bits());
    }

    #[test]
    fn codec_roundtrips_through_render() {
        // resume path: payload is re-rendered into the manifest line
        let r = sample();
        let parsed = chrome_exec::json::parse(&CellCodec.encode(&r)).unwrap();
        let rerendered = chrome_exec::json::parse(&parsed.render()).unwrap();
        assert_eq!(CellCodec.decode(&rerendered).unwrap(), r);
    }

    #[test]
    fn weighted_speedup_matches_definition() {
        let mut a = sample();
        let mut b = sample();
        a.ipc = vec![2.0, 1.0];
        b.ipc = vec![1.0, 2.0];
        assert!((a.weighted_speedup_vs(&b) - (2.0 + 0.5) / 2.0).abs() < 1e-12);
        assert!((a.weighted_speedup_vs(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prefetch_tags_cover_all_configs() {
        assert_eq!(prefetch_config("paper"), PrefetcherConfig::default_paper());
        assert_eq!(
            prefetch_config("stride-streamer"),
            PrefetcherConfig::stride_streamer()
        );
        assert_eq!(prefetch_config("ipcp"), PrefetcherConfig::ipcp());
        assert_eq!(prefetch_config("none"), PrefetcherConfig::none());
    }

    fn unit_spec() -> CellSpec {
        CellSpec {
            experiment: "unit".into(),
            workload: "libquantum".into(),
            scheme: "LRU".into(),
            cores: 1,
            instructions: 20_000,
            warmup: 2_000,
            seed: 7,
            prefetch: "paper".into(),
            track_unused: false,
            record_epochs: false,
            trace: String::new(),
        }
    }

    #[test]
    fn run_cell_produces_result() {
        let r = run_cell(&unit_spec(), None);
        assert_eq!(r.ipc.len(), 1);
        assert!(r.ipc[0] > 0.0);
        assert!(r.artifacts.is_empty());
    }

    #[test]
    fn file_backed_cell_matches_live_generator() {
        let dir = std::env::temp_dir().join("chrome-bench-grid-tracedir");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut spec = unit_spec();
        // generous quota: covers warmup + instructions + ROB runahead,
        // so the replay never wraps and matches the generator exactly
        chrome_tracefile::recorder::record_workload(
            &dir.join("libquantum.ctf"),
            &spec.workload,
            1,
            spec.workload_seed(),
            40_000,
            chrome_tracefile::Codec::Compact,
            10_000,
        )
        .unwrap();
        let live = run_cell(&spec, None);
        let map = resolve_traces(std::slice::from_mut(&mut spec), &dir);
        assert!(!spec.trace.is_empty(), "cell resolved to the trace file");
        assert_eq!(map.len(), 1);
        let replayed = run_cell_with_traces(&spec, None, Some(&map));
        assert_eq!(replayed, live, "file replay must be result-identical");
        // an unrelated identity stays generator-backed
        let mut other = unit_spec();
        other.seed = 8;
        resolve_traces(std::slice::from_mut(&mut other), &dir);
        assert!(other.trace.is_empty());
    }
}
