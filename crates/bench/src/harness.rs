//! A minimal, dependency-free timing harness for the `benches/` targets
//! (gated behind the `bench-harness` feature so `cargo test`/`cargo
//! build` never need a benchmark registry from the network).
//!
//! Methodology: calibrate an iteration count against a fixed time
//! budget, then take several samples of that many iterations and report
//! the median and minimum ns/iteration. The median resists scheduler
//! noise; the minimum approximates the true cost of the hot path.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Time budget used to calibrate the per-sample iteration count.
const CALIBRATION_BUDGET: Duration = Duration::from_millis(20);
/// Samples taken per benchmark.
const SAMPLES: usize = 7;

/// Run `f` under the harness and print one result line.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    // Calibration doubles as warmup.
    let t0 = Instant::now();
    let mut iters: u64 = 0;
    while t0.elapsed() < CALIBRATION_BUDGET {
        black_box(f());
        iters += 1;
    }
    let per_sample = iters.max(1);
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / per_sample as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    println!(
        "{name:<44} median {:>11}/iter   min {:>11}/iter   ({per_sample} iters x {SAMPLES} samples)",
        fmt_ns(times[times.len() / 2]),
        fmt_ns(times[0]),
    );
}

/// Render nanoseconds with a human-scale unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(999.0), "999 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 us");
        assert_eq!(fmt_ns(2_000_000.0), "2.00 ms");
        assert_eq!(fmt_ns(3e9), "3.00 s");
    }
}
