//! # chrome-bench — the experiment harness
//!
//! One binary per paper figure/table (see `src/bin/`), plus this library
//! of shared runner utilities: a unified policy registry (baselines +
//! CHROME variants), simulation runners with warmup/measure phases,
//! speedup computation against the LRU baseline, and TSV/console table
//! output.

pub mod experiments;
pub mod grid;
pub mod harness;
pub mod registry;
pub mod runner;
pub mod table;

pub use experiments::{all_plans, run_plans, ExperimentPlan};
pub use grid::{resolve_traces, run_cell, run_cell_with_traces, run_grid, CellResult, TraceMap};
pub use registry::{all_schemes, build_any_policy, build_any_slot};
pub use runner::{geomean, run_mix, run_workload, RunParams, SchemeResult};
pub use table::TableWriter;
