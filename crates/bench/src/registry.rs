//! A unified policy registry covering the baselines and every CHROME
//! variant the experiments need.

use chrome_core::{Chrome, ChromeConfig, FeatureSelection};
use chrome_sim::policy::{BuiltinLru, PolicySlot};
use chrome_sim::LlcPolicy;

/// The scheme lineup of the paper's headline figures, in plot order.
pub fn all_schemes() -> &'static [&'static str] {
    &["LRU", "Hawkeye", "Glider", "Mockingjay", "CARE", "CHROME"]
}

/// Build a scheme as a [`PolicySlot`] for simulation runs. `"LRU"`
/// resolves to the simulator's built-in statically dispatched LRU
/// (decision-identical to the boxed baseline — same stamp/scan
/// algorithm — so results are unchanged); every other name goes
/// through [`build_any_policy`]. Overhead accounting
/// (`storage_overhead`) should keep using [`build_any_policy`], whose
/// `"LRU"` models the 4-bit hardware encoding rather than the
/// simulator's 64-bit stamps.
pub fn build_any_slot(name: &str) -> Option<PolicySlot> {
    if name == "LRU" {
        return Some(PolicySlot::from(BuiltinLru::new()));
    }
    build_any_policy(name).map(PolicySlot::from)
}

/// Build any scheme by name. Beyond the baselines and `"CHROME"` /
/// `"N-CHROME"`, structured names configure CHROME variants:
///
/// * `"CHROME-pc"` / `"CHROME-pn"` — feature ablation (Fig. 15),
/// * `"CHROME-fifo=<n>"` — EQ FIFO size sweep (Table VII),
/// * `"CHROME-alpha=<x>"`, `"CHROME-gamma=<x>"`, `"CHROME-eps=<x>"` —
///   hyper-parameter sweeps (Fig. 16).
pub fn build_any_policy(name: &str) -> Option<Box<dyn LlcPolicy>> {
    if let Some(p) = chrome_policies::build_policy(name) {
        return Some(p);
    }
    // Scale note: experiments sample 512 sets (vs the paper's 64) to
    // compensate for runs ~20x shorter than 200M instructions; hardware
    // budget tables (Table III/IV) still use `ChromeConfig::default()`.
    let experiment_cfg = || ChromeConfig {
        sampled_sets: 512,
        // the reward window must fit our shorter runs: at 200M
        // instructions a 28-deep FIFO is ~2% of a sampled set's traffic,
        // at single-digit-million scale it would swallow all of it
        eq_fifo_len: 8,
        ..Default::default()
    };
    match name {
        "CHROME" => return Some(Box::new(Chrome::new(experiment_cfg()))),
        "N-CHROME" => {
            let cfg = ChromeConfig {
                concurrency_aware: false,
                ..experiment_cfg()
            };
            return Some(Box::new(Chrome::new(cfg)));
        }
        "CHROME-pc" => {
            let cfg = ChromeConfig {
                features: FeatureSelection::PcOnly,
                ..experiment_cfg()
            };
            return Some(Box::new(Chrome::new(cfg)));
        }
        "CHROME-pn" => {
            let cfg = ChromeConfig {
                features: FeatureSelection::PnOnly,
                ..experiment_cfg()
            };
            return Some(Box::new(Chrome::new(cfg)));
        }
        // the other Table I feature candidates, for experimentation
        "CHROME-pcdelta" => {
            let cfg = ChromeConfig {
                features: FeatureSelection::PcAndDelta,
                ..experiment_cfg()
            };
            return Some(Box::new(Chrome::new(cfg)));
        }
        "CHROME-pcseq" => {
            let cfg = ChromeConfig {
                features: FeatureSelection::PcSeqAndPn,
                ..experiment_cfg()
            };
            return Some(Box::new(Chrome::new(cfg)));
        }
        "CHROME-pcoffset" => {
            let cfg = ChromeConfig {
                features: FeatureSelection::PcOffsetAndPn,
                ..experiment_cfg()
            };
            return Some(Box::new(Chrome::new(cfg)));
        }
        _ => {}
    }
    let (key, value) = name.strip_prefix("CHROME-")?.split_once('=')?;
    let mut cfg = experiment_cfg();
    match key {
        "fifo" => cfg.eq_fifo_len = value.parse().ok()?,
        "sets" => cfg.sampled_sets = value.parse().ok()?,
        "alpha" => cfg.alpha = value.parse().ok()?,
        "gamma" => cfg.gamma = value.parse().ok()?,
        "eps" => cfg.epsilon = value.parse().ok()?,
        _ => return None,
    }
    Some(Box::new(Chrome::new(cfg)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_build() {
        for s in all_schemes() {
            assert!(build_any_policy(s).is_some(), "{s}");
        }
        assert!(build_any_policy("N-CHROME").is_some());
        assert!(build_any_policy("SHiP++").is_some());
    }

    #[test]
    fn variant_names_parse() {
        assert_eq!(build_any_policy("CHROME-fifo=12").unwrap().name(), "CHROME");
        assert!(build_any_policy("CHROME-alpha=0.001").is_some());
        assert!(build_any_policy("CHROME-gamma=0.9").is_some());
        assert!(build_any_policy("CHROME-eps=0.01").is_some());
        assert!(build_any_policy("CHROME-pc").is_some());
        assert!(build_any_policy("CHROME-pn").is_some());
        assert!(build_any_policy("CHROME-pcdelta").is_some());
        assert!(build_any_policy("CHROME-pcseq").is_some());
        assert!(build_any_policy("CHROME-pcoffset").is_some());
        assert!(build_any_policy("CHROME-sets=1024").is_some());
        assert!(build_any_policy("DRRIP").is_some());
        assert!(build_any_policy("PACMan").is_some());
    }

    #[test]
    fn bad_variants_rejected() {
        assert!(build_any_policy("CHROME-fifo=abc").is_none());
        assert!(build_any_policy("CHROME-bogus=1").is_none());
        assert!(build_any_policy("nonsense").is_none());
    }
}
