//! Simulation runners shared by all experiment binaries.

use std::path::PathBuf;

use chrome_sim::{PrefetcherConfig, SimConfig, SimResults, System};
use chrome_telemetry::{AttribProfiler, EpochSeries, TelemetryConfig, TelemetrySink};
use chrome_traces::mix;

use crate::registry::build_any_slot;

/// Parameters for one experiment run. Command-line parsing for the
/// experiment binaries lives in [`RunParams::from_args`].
#[derive(Debug, Clone)]
pub struct RunParams {
    /// Cores in the simulated system.
    pub cores: usize,
    /// Measured instructions per core.
    pub instructions: u64,
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Prefetcher configuration.
    pub prefetchers: PrefetcherConfig,
    /// Base seed for workload generators.
    pub seed: u64,
    /// Directory for telemetry artifacts (`--telemetry-out DIR`); when
    /// set, every run exports its epoch series, event trace and metrics
    /// there, named `<workload>_<scheme>_*`.
    pub telemetry_out: Option<PathBuf>,
    /// Record the epoch series even without exporting it (experiment
    /// binaries that consume [`SchemeResult::epochs`] set this).
    pub record_epochs: bool,
    /// Enable the per-request latency-attribution profiler
    /// (`--profile`); implies a recording telemetry sink and populates
    /// [`SchemeResult::attrib`].
    pub profile: bool,
    /// Grid-engine worker threads (`--jobs N`); `None` means available
    /// parallelism.
    pub jobs: Option<usize>,
    /// Extra attempts for a panicking cell (`--retries K`).
    pub retries: u32,
    /// Skip cells already recorded `ok` in the manifest (`--resume`).
    pub resume: bool,
    /// Checkpoint manifest path (`--manifest PATH`); defaults to
    /// `results/manifest.jsonl` for grid runs.
    pub manifest: Option<PathBuf>,
    /// Directory of recorded `.ctf` trace files (`--trace-dir DIR`);
    /// grid cells whose workload identity matches a recorded trace
    /// replay from the file instead of the live generator, and mix the
    /// trace content hash into their checkpoint identity.
    pub trace_dir: Option<PathBuf>,
    /// Heterogeneous mix count for experiments that sweep mixes
    /// (`--mixes N`); each experiment applies its own default.
    pub mixes: Option<usize>,
    /// Cap on per-experiment workload lists (`--homo-workloads N`);
    /// each experiment applies its own default.
    pub homo_workloads: Option<usize>,
    /// Paint live grid progress to stderr (tests switch it off).
    pub progress: bool,
    /// Record a per-decision audit trail bounded to this many records
    /// (`--audit N`); populates [`SchemeResult::audit`] for auditable
    /// policies (CHROME and its ablations).
    pub audit: Option<usize>,
    /// Representative-interval sampling spec (`--sampling k=<k>,ramp=<n>`);
    /// file-backed grid cells replay only clustered representative
    /// intervals with functional warmup and reconstruct full-run
    /// metrics. Requires `--trace-dir`.
    pub sampling: Option<String>,
    /// Mesh-NoC spec in [`chrome_noc::NocConfig::canonical`] form
    /// (`--noc slices=4,hop=2,...`); empty keeps the NoC off and the
    /// simulator byte-identical to the uniform-latency model.
    pub noc: String,
    /// Worker threads for intra-simulation core stepping
    /// (`--step-workers N`); 0 and 1 both mean sequential.
    pub step_workers: usize,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            cores: 4,
            instructions: 3_000_000,
            warmup: 600_000,
            prefetchers: PrefetcherConfig::default_paper(),
            seed: 0x5EED,
            telemetry_out: None,
            record_epochs: false,
            profile: false,
            jobs: None,
            retries: 2,
            resume: false,
            manifest: None,
            trace_dir: None,
            mixes: None,
            homo_workloads: None,
            progress: true,
            audit: None,
            sampling: None,
            noc: String::new(),
            step_workers: 0,
        }
    }
}

impl RunParams {
    /// Parse common experiment flags from `std::env::args`:
    /// `--cores N`, `--instructions N`, `--warmup N`, `--quick`
    /// (divides the instruction budget by 10), `--full` (multiplies it
    /// by 10), `--seed N`, `--telemetry-out DIR`.
    pub fn from_args() -> Self {
        Self::from_args_ignoring(&[])
    }

    /// Like [`RunParams::from_args`], but skips the listed
    /// experiment-specific flags (each consuming one value argument);
    /// read those with [`RunParams::arg_usize`].
    ///
    /// # Panics
    ///
    /// Panics on unknown flags or malformed flag values.
    pub fn from_args_ignoring(extra_value_flags: &[&str]) -> Self {
        let mut p = RunParams::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            if extra_value_flags.contains(&args[i].as_str()) {
                i += 2;
                continue;
            }
            match args[i].as_str() {
                "--cores" => {
                    i += 1;
                    p.cores = args[i].parse().expect("--cores takes a number");
                }
                "--instructions" => {
                    i += 1;
                    p.instructions = args[i].parse().expect("--instructions takes a number");
                }
                "--warmup" => {
                    i += 1;
                    p.warmup = args[i].parse().expect("--warmup takes a number");
                }
                "--seed" => {
                    i += 1;
                    p.seed = args[i].parse().expect("--seed takes a number");
                }
                "--telemetry-out" => {
                    i += 1;
                    p.telemetry_out = Some(PathBuf::from(
                        args.get(i).expect("--telemetry-out takes a dir"),
                    ));
                }
                "--profile" => {
                    p.profile = true;
                }
                "--jobs" => {
                    i += 1;
                    p.jobs = Some(args[i].parse().expect("--jobs takes a number"));
                }
                "--retries" => {
                    i += 1;
                    p.retries = args[i].parse().expect("--retries takes a number");
                }
                "--resume" => {
                    p.resume = true;
                }
                "--manifest" => {
                    i += 1;
                    p.manifest = Some(PathBuf::from(args.get(i).expect("--manifest takes a path")));
                }
                "--trace-dir" => {
                    i += 1;
                    p.trace_dir =
                        Some(PathBuf::from(args.get(i).expect("--trace-dir takes a dir")));
                }
                "--mixes" => {
                    i += 1;
                    p.mixes = Some(args[i].parse().expect("--mixes takes a number"));
                }
                "--homo-workloads" => {
                    i += 1;
                    p.homo_workloads =
                        Some(args[i].parse().expect("--homo-workloads takes a number"));
                }
                "--audit" => {
                    i += 1;
                    p.audit = Some(args[i].parse().expect("--audit takes a record cap"));
                }
                "--sampling" => {
                    i += 1;
                    let spec = args.get(i).expect("--sampling takes k=<k>,ramp=<n>");
                    chrome_simpoint::SamplingSpec::parse(spec)
                        .unwrap_or_else(|e| panic!("--sampling: {e}"));
                    p.sampling = Some(spec.clone());
                }
                "--noc" => {
                    i += 1;
                    let spec = args.get(i).expect("--noc takes slices=..,hop=..,..");
                    let cfg =
                        chrome_noc::NocConfig::parse(spec).unwrap_or_else(|e| panic!("--noc: {e}"));
                    // Canonicalize at the CLI boundary so spec hashes
                    // never depend on key order or omitted defaults.
                    p.noc = cfg.canonical();
                }
                "--step-workers" => {
                    i += 1;
                    p.step_workers = args[i].parse().expect("--step-workers takes a number");
                }
                "--quick" => {
                    p.instructions /= 10;
                    p.warmup /= 10;
                }
                "--full" => {
                    p.instructions *= 10;
                    p.warmup *= 10;
                }
                other => panic!("unknown flag {other}"),
            }
            i += 1;
        }
        p
    }

    /// Read an experiment-specific `--flag N` from the command line.
    pub fn arg_usize(name: &str, default: usize) -> usize {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// The [`SimConfig`] this run implies.
    ///
    /// # Panics
    ///
    /// Panics if [`RunParams::noc`] is non-empty but unparsable.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::with_cores(self.cores);
        cfg.prefetchers = self.prefetchers;
        if !self.noc.is_empty() {
            cfg.noc = Some(
                chrome_noc::NocConfig::parse(&self.noc)
                    .unwrap_or_else(|e| panic!("bad noc spec {:?}: {e}", self.noc)),
            );
        }
        cfg
    }
}

/// The results of running one scheme on one workload/mix.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// Scheme name.
    pub scheme: String,
    /// Raw simulation results.
    pub results: SimResults,
    /// Scheme-specific report metrics (e.g. CHROME's UPKSA).
    pub report: Vec<(String, f64)>,
    /// Epoch-resolved telemetry series (empty unless the run recorded
    /// telemetry via `--telemetry-out` or [`RunParams::record_epochs`]).
    pub epochs: EpochSeries,
    /// Latency-attribution profiler state (populated only when
    /// [`RunParams::profile`] was set).
    pub attrib: Option<AttribProfiler>,
    /// Telemetry artifact files this run exported (empty without
    /// `--telemetry-out`).
    pub artifacts: Vec<PathBuf>,
    /// Binary per-decision audit trail (empty unless
    /// [`RunParams::audit`] was set and the policy is auditable).
    pub audit: Vec<u8>,
}

impl SchemeResult {
    /// Sum of per-core IPCs.
    pub fn ipc_sum(&self) -> f64 {
        self.results.ipc_sum()
    }

    /// Normalized weighted speedup against a baseline run of the same
    /// mix: `(1/n) Σ IPC_i / IPC_i^base`.
    pub fn weighted_speedup_vs(&self, base: &SchemeResult) -> f64 {
        let n = self.results.per_core.len() as f64;
        self.results
            .per_core
            .iter()
            .zip(&base.results.per_core)
            .map(|(a, b)| {
                let (ia, ib) = (a.ipc(), b.ipc());
                if ib > 0.0 {
                    ia / ib
                } else {
                    0.0
                }
            })
            .sum::<f64>()
            / n
    }
}

/// Run `scheme` on a homogeneous mix of `workload` (`cores` copies).
///
/// # Panics
///
/// Panics if the workload or scheme name is unknown.
pub fn run_workload(params: &RunParams, workload: &str, scheme: &str) -> SchemeResult {
    run_workload_tracked(params, workload, scheme, false)
}

/// [`run_workload`] with optional Fig.-2 evicted-unused tracking.
pub fn run_workload_tracked(
    params: &RunParams,
    workload: &str,
    scheme: &str,
    track_unused: bool,
) -> SchemeResult {
    let traces = mix::homogeneous(workload, params.cores, params.seed)
        .unwrap_or_else(|| panic!("unknown workload {workload}"));
    run_traces(params, traces, scheme, track_unused, workload, None)
}

/// Run `scheme` on a named heterogeneous mix.
///
/// # Panics
///
/// Panics if any workload or the scheme name is unknown.
pub fn run_mix(params: &RunParams, names: &[&str], scheme: &str) -> SchemeResult {
    let traces =
        mix::build_mix(names, params.seed).unwrap_or_else(|| panic!("unknown mix {names:?}"));
    run_traces(params, traces, scheme, false, &names.join("+"), None)
}

/// Turn a workload/scheme label into a safe artifact-file prefix. Grid
/// cells pass their spec hash as `tag`, which keeps artifact names
/// collision-free when concurrent cells from different experiments
/// share one `--telemetry-out` directory.
fn artifact_prefix(label: &str, scheme: &str, tag: Option<&str>) -> String {
    let raw = match tag {
        Some(t) => format!("{label}_{scheme}_{t}"),
        None => format!("{label}_{scheme}"),
    };
    raw.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

pub(crate) fn run_traces(
    params: &RunParams,
    traces: Vec<Box<dyn chrome_sim::trace::TraceSource>>,
    scheme: &str,
    track_unused: bool,
    label: &str,
    artifact_tag: Option<&str>,
) -> SchemeResult {
    let policy = build_any_slot(scheme).unwrap_or_else(|| panic!("unknown scheme {scheme}"));
    let mut sys = System::with_policy(params.sim_config(), traces, policy);
    sys.set_step_workers(params.step_workers.max(1));
    if track_unused {
        sys.enable_unused_tracking();
    }
    if let Some(cap) = params.audit {
        sys.enable_audit(0, cap);
    }
    if params.telemetry_out.is_some() || params.record_epochs || params.profile {
        let cfg = TelemetryConfig {
            profile: params.profile,
            ..TelemetryConfig::default()
        };
        sys.set_telemetry(TelemetrySink::recording(cfg));
    }
    let results = sys.run(params.instructions, params.warmup);
    let report = sys.hierarchy().llc.policy.report();
    let epochs = sys
        .telemetry()
        .with(|t| t.epochs.clone())
        .unwrap_or_default();
    let attrib = if params.profile {
        sys.telemetry().with(|t| t.attrib.clone())
    } else {
        None
    };
    let artifacts = if let Some(dir) = &params.telemetry_out {
        sys.telemetry()
            .export(dir, &artifact_prefix(label, scheme, artifact_tag))
            .unwrap_or_else(|e| panic!("telemetry export to {dir:?} failed: {e}"))
    } else {
        Vec::new()
    };
    let audit = if params.audit.is_some() {
        sys.audit_bytes()
    } else {
        Vec::new()
    };
    SchemeResult {
        scheme: scheme.to_string(),
        results,
        report,
        epochs,
        attrib,
        artifacts,
        audit,
    }
}

/// The raw outputs of a sampled replay: one [`SimResults`] per
/// representative interval, in plan order, plus the shared policy
/// report and exported artifacts.
pub(crate) struct SampledRun {
    /// Per-interval measured results, plan order.
    pub results: Vec<SimResults>,
    /// Scheme-specific report metrics from the end-of-run policy state.
    pub report: Vec<(String, f64)>,
    /// Epoch-resolved telemetry (sequential across intervals).
    pub epochs: EpochSeries,
    /// Telemetry artifact files (includes `*_sampling.json`).
    pub artifacts: Vec<PathBuf>,
}

/// Run `scheme` over a sampled-replay plan: functionally warm to each
/// representative interval, run a detailed-but-unmeasured ramp, then
/// measure. The sampling manifest is attached to the telemetry sink so
/// exported artifact sets are self-describing.
pub(crate) fn run_traces_sampled(
    params: &RunParams,
    traces: Vec<Box<dyn chrome_sim::trace::TraceSource>>,
    scheme: &str,
    plan: &chrome_simpoint::WorkloadPlan,
    kernel: chrome_sim::Kernel,
    label: &str,
    artifact_tag: Option<&str>,
) -> SampledRun {
    let policy = build_any_slot(scheme).unwrap_or_else(|| panic!("unknown scheme {scheme}"));
    let mut sys = System::with_policy(params.sim_config(), traces, policy);
    sys.set_step_workers(params.step_workers.max(1));
    if params.telemetry_out.is_some() || params.record_epochs {
        sys.set_telemetry(TelemetrySink::recording(TelemetryConfig::default()));
    }
    sys.telemetry().set_sampling(sampling_manifest(plan));
    let results = sys.run_sampled(&plan.to_sim_plan(), kernel);
    let report = sys.hierarchy().llc.policy.report();
    let epochs = sys
        .telemetry()
        .with(|t| t.epochs.clone())
        .unwrap_or_default();
    let artifacts = if let Some(dir) = &params.telemetry_out {
        sys.telemetry()
            .export(dir, &artifact_prefix(label, scheme, artifact_tag))
            .unwrap_or_else(|e| panic!("telemetry export to {dir:?} failed: {e}"))
    } else {
        Vec::new()
    };
    SampledRun {
        results,
        report,
        epochs,
        artifacts,
    }
}

/// Functional-only profiling pass over a plan's aligned interval grid:
/// a fresh system (same scheme, same deterministic initial state as
/// the sampled run) walks the whole trace with the functional model,
/// yielding the per-interval control variates
/// [`chrome_simpoint::reconstruct::reconstruct_with_profile`] pairs
/// with detailed measurements. Costs zero detailed instructions.
pub(crate) fn run_functional_profile(
    params: &RunParams,
    traces: Vec<Box<dyn chrome_sim::trace::TraceSource>>,
    scheme: &str,
    plan: &chrome_simpoint::WorkloadPlan,
) -> chrome_sim::FunctionalProfile {
    let policy = build_any_slot(scheme).unwrap_or_else(|| panic!("unknown scheme {scheme}"));
    let mut sys = System::with_policy(params.sim_config(), traces, policy);
    sys.run_functional_profile(&plan.boundaries)
}

/// JSON manifest describing a sampled run's shape — the contract
/// `tldiff` uses to refuse silently diffing sampled against full runs.
pub(crate) fn sampling_manifest(plan: &chrome_simpoint::WorkloadPlan) -> String {
    let segments: Vec<String> = plan
        .segments
        .iter()
        .map(|s| {
            format!(
                "{{\"interval\":{},\"weight\":{},\"detail\":{}}}",
                s.interval,
                chrome_exec::json::num(s.weight),
                s.detail
            )
        })
        .collect();
    format!(
        "{{\"spec\":\"{}\",\"segments\":[{}],\"total_instructions\":{},\
         \"detailed_instructions\":{}}}",
        plan.spec.render(),
        segments.join(","),
        plan.total_instructions,
        plan.detailed_instructions,
    )
}

/// Geometric mean of a slice (ignores non-positive values defensively).
pub fn geomean(values: &[f64]) -> f64 {
    let vals: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
    if vals.is_empty() {
        return 0.0;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunParams {
        RunParams {
            cores: 1,
            instructions: 30_000,
            warmup: 3_000,
            ..Default::default()
        }
    }

    #[test]
    fn run_workload_produces_results() {
        let r = run_workload(&quick(), "libquantum", "LRU");
        assert!(r.ipc_sum() > 0.0);
        assert!(r.results.llc.demand_accesses > 0);
    }

    #[test]
    fn weighted_speedup_vs_self_is_one() {
        let r = run_workload(&quick(), "gcc", "LRU");
        assert!((r.weighted_speedup_vs(&r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chrome_report_is_populated() {
        let r = run_workload(&quick(), "mcf", "CHROME");
        assert!(r.report.iter().any(|(k, _)| k == "upksa"));
    }

    #[test]
    fn profile_run_populates_attrib_exactly() {
        let params = RunParams {
            warmup: 0,
            profile: true,
            ..quick()
        };
        let r = run_workload(&params, "libquantum", "LRU");
        let attrib = r.attrib.expect("profiling run returns attrib state");
        if cfg!(feature = "telemetry") {
            assert!(attrib.total_requests() > 0);
            assert_eq!(attrib.mismatches(), 0, "per-stage sums must telescope");
        }
        let plain = run_workload(&quick(), "libquantum", "LRU");
        assert!(plain.attrib.is_none());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 0.0]) - 2.0).abs() < 1e-12); // ignores zero
    }

    #[test]
    fn mix_runs_multiple_cores() {
        let params = RunParams {
            cores: 2,
            instructions: 20_000,
            warmup: 2_000,
            ..Default::default()
        };
        let r = run_mix(&params, &["mcf", "libquantum"], "LRU");
        assert_eq!(r.results.per_core.len(), 2);
    }

    /// Diagnostic (opt-in): isolate plan-selection error from
    /// functional-gap state error. Runs every interval with contiguous
    /// timed state (exhaustive plan, ramp 0), then reconstructs the
    /// full-run metrics from the k-plan's representatives using those
    /// oracle-state per-interval results. The residual is pure
    /// clustering/selection error; the gap to a real sampled run is
    /// functional-warmup state error.
    ///
    /// `SP_TRACE_DIR` must point at recorded traces;
    /// `SP_WORKLOADS`/`SP_SCHEME`/`SP_SAMPLING` narrow the sweep.
    #[test]
    #[ignore = "diagnostic: needs recorded traces in SP_TRACE_DIR"]
    fn oracle_state_reconstruction() {
        use chrome_simpoint::{build_plan_windowed, reconstruct, SamplingSpec};
        let dir = std::env::var("SP_TRACE_DIR").expect("SP_TRACE_DIR");
        let wls = std::env::var("SP_WORKLOADS").unwrap_or_else(|_| "pr-or".into());
        let scheme = std::env::var("SP_SCHEME").unwrap_or_else(|_| "LRU".into());
        let spec_str =
            std::env::var("SP_SAMPLING").unwrap_or_else(|_| "k=26,ramp=2200,reps=3".into());
        let mut params = RunParams {
            cores: 1,
            instructions: 6_000_000,
            warmup: 60_000,
            ..Default::default()
        };
        // SP_PREFETCH=none isolates prefetcher-state divergence from
        // demand-path divergence across functional gaps.
        if std::env::var("SP_PREFETCH").as_deref() == Ok("none") {
            params.prefetchers = chrome_sim::PrefetcherConfig::none();
        }
        let index = chrome_tracefile::TraceIndex::scan(std::path::Path::new(&dir)).unwrap();
        for wl in wls.split(',') {
            let seed = chrome_exec::workload_seed(wl, 1, params.seed);
            let entry = index.lookup(wl, 1, seed).expect("trace recorded");
            let tf = chrome_tracefile::TraceFile::open(&entry.path).unwrap();
            let exhaustive = SamplingSpec {
                k: usize::MAX / 2,
                ramp: 0,
                reps: 1,
            };
            let ex = build_plan_windowed(&tf, exhaustive, seed, params.warmup, params.instructions)
                .unwrap();
            let truth = run_traces_sampled(
                &params,
                tf.sources().unwrap(),
                &scheme,
                &ex,
                chrome_sim::Kernel::EventDriven,
                wl,
                None,
            );
            let w_ex: Vec<f64> = ex.segments.iter().map(|s| s.weight).collect();
            let full = reconstruct::reconstruct(&w_ex, &truth.results);
            let spec = SamplingSpec::parse(&spec_str).unwrap();
            let mut plan =
                build_plan_windowed(&tf, spec, seed, params.warmup, params.instructions).unwrap();
            // SP_RUNS=NxM replaces the clustered plan with N evenly
            // spaced systematic runs of M consecutive intervals each —
            // probes how state error scales with measured-run length.
            if let Ok(runs) = std::env::var("SP_RUNS") {
                let (n_runs, run_len) = runs.split_once('x').unwrap();
                let (n_runs, run_len): (usize, usize) =
                    (n_runs.parse().unwrap(), run_len.parse().unwrap());
                let spacing = ex.segments.len() / n_runs;
                let mut segs = Vec::new();
                for r in 0..n_runs {
                    let i = r * spacing + (spacing - run_len) / 2;
                    let group = &ex.segments[i..i + run_len];
                    segs.push(chrome_simpoint::Segment {
                        interval: group[0].interval,
                        weight: group.iter().map(|s| s.weight).sum(),
                        start: group[0].start.clone(),
                        detail: group.iter().map(|s| s.detail).sum(),
                    });
                }
                plan.detailed_instructions = segs.iter().map(|s| s.detail + plan.spec.ramp).sum();
                plan.segments = segs;
            }
            // SP_PROLOGUE=N prepends a weight-0 timed segment over the
            // last N warmup instructions, mirroring the full run's
            // timed warmup before the first functional gap.
            if let Ok(n) = std::env::var("SP_PROLOGUE") {
                let n: u64 = n.parse().unwrap();
                let n = n.min(params.warmup);
                if n > 0 {
                    plan.segments.insert(
                        0,
                        chrome_simpoint::Segment {
                            interval: usize::MAX,
                            weight: 0.0,
                            start: vec![params.warmup - n; 1],
                            detail: n,
                        },
                    );
                    plan.detailed_instructions += n;
                }
            }
            let by_interval: std::collections::HashMap<usize, &chrome_sim::SimResults> = ex
                .segments
                .iter()
                .zip(&truth.results)
                .map(|(s, r)| (s.interval, r))
                .collect();
            let sel: Vec<chrome_sim::SimResults> = plan
                .segments
                .iter()
                .filter(|s| s.interval != usize::MAX)
                .map(|s| by_interval[&s.interval].clone())
                .collect();
            let w_sel: Vec<f64> = plan
                .segments
                .iter()
                .filter(|s| s.interval != usize::MAX)
                .map(|s| s.weight)
                .collect();
            let w: Vec<f64> = plan.segments.iter().map(|s| s.weight).collect();
            let oracle = reconstruct::reconstruct(&w_sel, &sel);
            let real_run = run_traces_sampled(
                &params,
                tf.sources().unwrap(),
                &scheme,
                &plan,
                chrome_sim::Kernel::EventDriven,
                wl,
                None,
            );
            let real = reconstruct::reconstruct(&w, &real_run.results);
            let pct = |a: f64, b: f64| 100.0 * (a - b) / b;
            // SP_DETAIL=1 prints per-interval sampled-vs-oracle stat
            // deltas to localize which machine state diverges.
            if std::env::var("SP_DETAIL").as_deref() == Ok("1") {
                for ((seg, s), o) in plan
                    .segments
                    .iter()
                    .zip(&real_run.results)
                    .filter(|(seg, _)| seg.interval != usize::MAX)
                    .zip(&sel)
                {
                    eprintln!(
                        "  iv {:>4} w {:.3}: ipc {:+6.2}% dmiss {:+6.2}% l2pf {:+6.2}% \
                         llcpf {:+6.2}% pfuse {:+6.2}% shed {:+6.2}% [o: dmiss {} l2pf {} shed {}]",
                        seg.interval,
                        seg.weight,
                        pct(s.ipc_sum(), o.ipc_sum()),
                        pct(
                            s.llc.demand_misses as f64,
                            o.llc.demand_misses.max(1) as f64
                        ),
                        pct(
                            s.l2.iter().map(|c| c.prefetch_accesses).sum::<u64>() as f64,
                            o.l2.iter().map(|c| c.prefetch_accesses).sum::<u64>().max(1) as f64
                        ),
                        pct(
                            s.llc.prefetch_accesses as f64,
                            o.llc.prefetch_accesses.max(1) as f64
                        ),
                        pct(
                            s.llc.prefetch_useful as f64,
                            o.llc.prefetch_useful.max(1) as f64
                        ),
                        pct(
                            (s.llc.prefetch_dropped
                                + s.l2.iter().map(|c| c.prefetch_dropped).sum::<u64>())
                                as f64,
                            (o.llc.prefetch_dropped
                                + o.l2.iter().map(|c| c.prefetch_dropped).sum::<u64>())
                            .max(1) as f64
                        ),
                        o.llc.demand_misses,
                        o.l2.iter().map(|c| c.prefetch_accesses).sum::<u64>(),
                        o.llc.prefetch_dropped
                            + o.l2.iter().map(|c| c.prefetch_dropped).sum::<u64>(),
                    );
                }
            }
            eprintln!(
                "{wl}: full ipc {:.4} mpki {:.3} | oracle({}) ipc {:+.2}% mpki {:+.2}% | sampled ipc {:+.2}% mpki {:+.2}%",
                full.ipc,
                full.mpki,
                plan.segments.len(),
                pct(oracle.ipc, full.ipc),
                pct(oracle.mpki, full.mpki),
                pct(real.ipc, full.ipc),
                pct(real.mpki, full.mpki),
            );
        }
    }
}
