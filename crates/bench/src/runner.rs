//! Simulation runners shared by all experiment binaries.

use std::path::PathBuf;

use chrome_sim::{PrefetcherConfig, SimConfig, SimResults, System};
use chrome_telemetry::{AttribProfiler, EpochSeries, TelemetryConfig, TelemetrySink};
use chrome_traces::mix;

use crate::registry::build_any_policy;

/// Parameters for one experiment run. Command-line parsing for the
/// experiment binaries lives in [`RunParams::from_args`].
#[derive(Debug, Clone)]
pub struct RunParams {
    /// Cores in the simulated system.
    pub cores: usize,
    /// Measured instructions per core.
    pub instructions: u64,
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Prefetcher configuration.
    pub prefetchers: PrefetcherConfig,
    /// Base seed for workload generators.
    pub seed: u64,
    /// Directory for telemetry artifacts (`--telemetry-out DIR`); when
    /// set, every run exports its epoch series, event trace and metrics
    /// there, named `<workload>_<scheme>_*`.
    pub telemetry_out: Option<PathBuf>,
    /// Record the epoch series even without exporting it (experiment
    /// binaries that consume [`SchemeResult::epochs`] set this).
    pub record_epochs: bool,
    /// Enable the per-request latency-attribution profiler
    /// (`--profile`); implies a recording telemetry sink and populates
    /// [`SchemeResult::attrib`].
    pub profile: bool,
    /// Grid-engine worker threads (`--jobs N`); `None` means available
    /// parallelism.
    pub jobs: Option<usize>,
    /// Extra attempts for a panicking cell (`--retries K`).
    pub retries: u32,
    /// Skip cells already recorded `ok` in the manifest (`--resume`).
    pub resume: bool,
    /// Checkpoint manifest path (`--manifest PATH`); defaults to
    /// `results/manifest.jsonl` for grid runs.
    pub manifest: Option<PathBuf>,
    /// Directory of recorded `.ctf` trace files (`--trace-dir DIR`);
    /// grid cells whose workload identity matches a recorded trace
    /// replay from the file instead of the live generator, and mix the
    /// trace content hash into their checkpoint identity.
    pub trace_dir: Option<PathBuf>,
    /// Heterogeneous mix count for experiments that sweep mixes
    /// (`--mixes N`); each experiment applies its own default.
    pub mixes: Option<usize>,
    /// Cap on per-experiment workload lists (`--homo-workloads N`);
    /// each experiment applies its own default.
    pub homo_workloads: Option<usize>,
    /// Paint live grid progress to stderr (tests switch it off).
    pub progress: bool,
    /// Record a per-decision audit trail bounded to this many records
    /// (`--audit N`); populates [`SchemeResult::audit`] for auditable
    /// policies (CHROME and its ablations).
    pub audit: Option<usize>,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            cores: 4,
            instructions: 3_000_000,
            warmup: 600_000,
            prefetchers: PrefetcherConfig::default_paper(),
            seed: 0x5EED,
            telemetry_out: None,
            record_epochs: false,
            profile: false,
            jobs: None,
            retries: 2,
            resume: false,
            manifest: None,
            trace_dir: None,
            mixes: None,
            homo_workloads: None,
            progress: true,
            audit: None,
        }
    }
}

impl RunParams {
    /// Parse common experiment flags from `std::env::args`:
    /// `--cores N`, `--instructions N`, `--warmup N`, `--quick`
    /// (divides the instruction budget by 10), `--full` (multiplies it
    /// by 10), `--seed N`, `--telemetry-out DIR`.
    pub fn from_args() -> Self {
        Self::from_args_ignoring(&[])
    }

    /// Like [`RunParams::from_args`], but skips the listed
    /// experiment-specific flags (each consuming one value argument);
    /// read those with [`RunParams::arg_usize`].
    ///
    /// # Panics
    ///
    /// Panics on unknown flags or malformed flag values.
    pub fn from_args_ignoring(extra_value_flags: &[&str]) -> Self {
        let mut p = RunParams::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            if extra_value_flags.contains(&args[i].as_str()) {
                i += 2;
                continue;
            }
            match args[i].as_str() {
                "--cores" => {
                    i += 1;
                    p.cores = args[i].parse().expect("--cores takes a number");
                }
                "--instructions" => {
                    i += 1;
                    p.instructions = args[i].parse().expect("--instructions takes a number");
                }
                "--warmup" => {
                    i += 1;
                    p.warmup = args[i].parse().expect("--warmup takes a number");
                }
                "--seed" => {
                    i += 1;
                    p.seed = args[i].parse().expect("--seed takes a number");
                }
                "--telemetry-out" => {
                    i += 1;
                    p.telemetry_out = Some(PathBuf::from(
                        args.get(i).expect("--telemetry-out takes a dir"),
                    ));
                }
                "--profile" => {
                    p.profile = true;
                }
                "--jobs" => {
                    i += 1;
                    p.jobs = Some(args[i].parse().expect("--jobs takes a number"));
                }
                "--retries" => {
                    i += 1;
                    p.retries = args[i].parse().expect("--retries takes a number");
                }
                "--resume" => {
                    p.resume = true;
                }
                "--manifest" => {
                    i += 1;
                    p.manifest = Some(PathBuf::from(args.get(i).expect("--manifest takes a path")));
                }
                "--trace-dir" => {
                    i += 1;
                    p.trace_dir =
                        Some(PathBuf::from(args.get(i).expect("--trace-dir takes a dir")));
                }
                "--mixes" => {
                    i += 1;
                    p.mixes = Some(args[i].parse().expect("--mixes takes a number"));
                }
                "--homo-workloads" => {
                    i += 1;
                    p.homo_workloads =
                        Some(args[i].parse().expect("--homo-workloads takes a number"));
                }
                "--audit" => {
                    i += 1;
                    p.audit = Some(args[i].parse().expect("--audit takes a record cap"));
                }
                "--quick" => {
                    p.instructions /= 10;
                    p.warmup /= 10;
                }
                "--full" => {
                    p.instructions *= 10;
                    p.warmup *= 10;
                }
                other => panic!("unknown flag {other}"),
            }
            i += 1;
        }
        p
    }

    /// Read an experiment-specific `--flag N` from the command line.
    pub fn arg_usize(name: &str, default: usize) -> usize {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// The [`SimConfig`] this run implies.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::with_cores(self.cores);
        cfg.prefetchers = self.prefetchers;
        cfg
    }
}

/// The results of running one scheme on one workload/mix.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// Scheme name.
    pub scheme: String,
    /// Raw simulation results.
    pub results: SimResults,
    /// Scheme-specific report metrics (e.g. CHROME's UPKSA).
    pub report: Vec<(String, f64)>,
    /// Epoch-resolved telemetry series (empty unless the run recorded
    /// telemetry via `--telemetry-out` or [`RunParams::record_epochs`]).
    pub epochs: EpochSeries,
    /// Latency-attribution profiler state (populated only when
    /// [`RunParams::profile`] was set).
    pub attrib: Option<AttribProfiler>,
    /// Telemetry artifact files this run exported (empty without
    /// `--telemetry-out`).
    pub artifacts: Vec<PathBuf>,
    /// Binary per-decision audit trail (empty unless
    /// [`RunParams::audit`] was set and the policy is auditable).
    pub audit: Vec<u8>,
}

impl SchemeResult {
    /// Sum of per-core IPCs.
    pub fn ipc_sum(&self) -> f64 {
        self.results.ipc_sum()
    }

    /// Normalized weighted speedup against a baseline run of the same
    /// mix: `(1/n) Σ IPC_i / IPC_i^base`.
    pub fn weighted_speedup_vs(&self, base: &SchemeResult) -> f64 {
        let n = self.results.per_core.len() as f64;
        self.results
            .per_core
            .iter()
            .zip(&base.results.per_core)
            .map(|(a, b)| {
                let (ia, ib) = (a.ipc(), b.ipc());
                if ib > 0.0 {
                    ia / ib
                } else {
                    0.0
                }
            })
            .sum::<f64>()
            / n
    }
}

/// Run `scheme` on a homogeneous mix of `workload` (`cores` copies).
///
/// # Panics
///
/// Panics if the workload or scheme name is unknown.
pub fn run_workload(params: &RunParams, workload: &str, scheme: &str) -> SchemeResult {
    run_workload_tracked(params, workload, scheme, false)
}

/// [`run_workload`] with optional Fig.-2 evicted-unused tracking.
pub fn run_workload_tracked(
    params: &RunParams,
    workload: &str,
    scheme: &str,
    track_unused: bool,
) -> SchemeResult {
    let traces = mix::homogeneous(workload, params.cores, params.seed)
        .unwrap_or_else(|| panic!("unknown workload {workload}"));
    run_traces(params, traces, scheme, track_unused, workload, None)
}

/// Run `scheme` on a named heterogeneous mix.
///
/// # Panics
///
/// Panics if any workload or the scheme name is unknown.
pub fn run_mix(params: &RunParams, names: &[&str], scheme: &str) -> SchemeResult {
    let traces =
        mix::build_mix(names, params.seed).unwrap_or_else(|| panic!("unknown mix {names:?}"));
    run_traces(params, traces, scheme, false, &names.join("+"), None)
}

/// Turn a workload/scheme label into a safe artifact-file prefix. Grid
/// cells pass their spec hash as `tag`, which keeps artifact names
/// collision-free when concurrent cells from different experiments
/// share one `--telemetry-out` directory.
fn artifact_prefix(label: &str, scheme: &str, tag: Option<&str>) -> String {
    let raw = match tag {
        Some(t) => format!("{label}_{scheme}_{t}"),
        None => format!("{label}_{scheme}"),
    };
    raw.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

pub(crate) fn run_traces(
    params: &RunParams,
    traces: Vec<Box<dyn chrome_sim::trace::TraceSource>>,
    scheme: &str,
    track_unused: bool,
    label: &str,
    artifact_tag: Option<&str>,
) -> SchemeResult {
    let policy = build_any_policy(scheme).unwrap_or_else(|| panic!("unknown scheme {scheme}"));
    let mut sys = System::with_policy(params.sim_config(), traces, policy);
    if track_unused {
        sys.enable_unused_tracking();
    }
    if let Some(cap) = params.audit {
        sys.enable_audit(0, cap);
    }
    if params.telemetry_out.is_some() || params.record_epochs || params.profile {
        let cfg = TelemetryConfig {
            profile: params.profile,
            ..TelemetryConfig::default()
        };
        sys.set_telemetry(TelemetrySink::recording(cfg));
    }
    let results = sys.run(params.instructions, params.warmup);
    let report = sys.hierarchy().llc.policy.report();
    let epochs = sys
        .telemetry()
        .with(|t| t.epochs.clone())
        .unwrap_or_default();
    let attrib = if params.profile {
        sys.telemetry().with(|t| t.attrib.clone())
    } else {
        None
    };
    let artifacts = if let Some(dir) = &params.telemetry_out {
        sys.telemetry()
            .export(dir, &artifact_prefix(label, scheme, artifact_tag))
            .unwrap_or_else(|e| panic!("telemetry export to {dir:?} failed: {e}"))
    } else {
        Vec::new()
    };
    let audit = if params.audit.is_some() {
        sys.audit_bytes()
    } else {
        Vec::new()
    };
    SchemeResult {
        scheme: scheme.to_string(),
        results,
        report,
        epochs,
        attrib,
        artifacts,
        audit,
    }
}

/// Geometric mean of a slice (ignores non-positive values defensively).
pub fn geomean(values: &[f64]) -> f64 {
    let vals: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
    if vals.is_empty() {
        return 0.0;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunParams {
        RunParams {
            cores: 1,
            instructions: 30_000,
            warmup: 3_000,
            ..Default::default()
        }
    }

    #[test]
    fn run_workload_produces_results() {
        let r = run_workload(&quick(), "libquantum", "LRU");
        assert!(r.ipc_sum() > 0.0);
        assert!(r.results.llc.demand_accesses > 0);
    }

    #[test]
    fn weighted_speedup_vs_self_is_one() {
        let r = run_workload(&quick(), "gcc", "LRU");
        assert!((r.weighted_speedup_vs(&r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chrome_report_is_populated() {
        let r = run_workload(&quick(), "mcf", "CHROME");
        assert!(r.report.iter().any(|(k, _)| k == "upksa"));
    }

    #[test]
    fn profile_run_populates_attrib_exactly() {
        let params = RunParams {
            warmup: 0,
            profile: true,
            ..quick()
        };
        let r = run_workload(&params, "libquantum", "LRU");
        let attrib = r.attrib.expect("profiling run returns attrib state");
        if cfg!(feature = "telemetry") {
            assert!(attrib.total_requests() > 0);
            assert_eq!(attrib.mismatches(), 0, "per-stage sums must telescope");
        }
        let plain = run_workload(&quick(), "libquantum", "LRU");
        assert!(plain.attrib.is_none());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 0.0]) - 2.0).abs() < 1e-12); // ignores zero
    }

    #[test]
    fn mix_runs_multiple_cores() {
        let params = RunParams {
            cores: 2,
            instructions: 20_000,
            warmup: 2_000,
            ..Default::default()
        };
        let r = run_mix(&params, &["mcf", "libquantum"], "LRU");
        assert_eq!(r.results.per_core.len(), 2);
    }
}
