//! Console + TSV output for experiment tables.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Collects rows, pretty-prints them, and writes a TSV into `results/`.
#[derive(Debug)]
pub struct TableWriter {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// A table named `name` (used for the TSV filename) with the given
    /// column headers.
    pub fn new(name: &str, header: &[&str]) -> Self {
        TableWriter {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of preformatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Convenience: a label plus floating-point cells with 4 digits.
    pub fn row_f(&mut self, label: &str, values: &[f64]) {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.4}")));
        self.row(cells);
    }

    /// Render the table to a string (fixed-width columns).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout and write `results/<name>.tsv`. Returns the TSV
    /// path.
    ///
    /// # Errors
    ///
    /// Returns an error when the results directory or file cannot be
    /// written.
    pub fn finish(&self) -> std::io::Result<PathBuf> {
        println!("\n== {} ==", self.name);
        println!("{}", self.render());
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.tsv", self.name));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TableWriter::new("test", &["workload", "speedup"]);
        t.row_f("mcf", &[1.0912]);
        t.row_f("libquantum", &[1.002]);
        let s = t.render();
        assert!(s.contains("workload"));
        assert!(s.contains("1.0912"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_enforced() {
        let mut t = TableWriter::new("test", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
