//! Agent-refactor equivalence pins: the `chrome-core` environment
//! abstraction (generic SARSA engine + `Environment` trait) must leave
//! the hardware-LLC reproduction path *byte-identical*. These digests
//! were captured from the pre-refactor agent; any change to them means
//! the refactor (or later environment work) perturbed the paper
//! reproduction numbers.
//!
//! The digest covers the full `SimResults` plus the entire epoch
//! telemetry series (which includes the policy probe: EQ occupancy,
//! overflows, mean |Q|) rendered canonically and hashed with FNV-1a.
//! Every scheme of the paper lineup runs on a 4-core heterogeneous mix,
//! and every CHROME feature-selection variant runs as well, so each
//! feature-extraction branch is pinned.

use chrome_bench::registry::{all_schemes, build_any_policy};
use chrome_exec::fnv1a64;
use chrome_sim::{SimConfig, System};
use chrome_telemetry::{TelemetryConfig, TelemetrySink};
use chrome_traces::mix;

/// The pinned 4-core heterogeneous mix (distinct access characters:
/// pointer-chasing, streaming, branchy, scan-heavy).
const MIX: [&str; 4] = ["mcf", "libquantum", "gcc", "soplex"];
const SEED: u64 = 0xE9A1;
const INSTRUCTIONS: u64 = 12_000;
const WARMUP: u64 = 1_200;

/// Run one scheme on the pinned mixed grid and digest everything the
/// reproduction reports: SimResults (all counters, obstruction vectors)
/// and the epoch series (C-AMAT, deltas, policy probes).
fn digest(scheme: &str) -> u64 {
    let cfg = SimConfig::small_test(4);
    let traces = mix::build_mix(&MIX, SEED).expect("known workloads");
    let policy = build_any_policy(scheme).expect("known scheme");
    let mut sys = System::with_policy(cfg, traces, policy);
    sys.set_telemetry(TelemetrySink::recording(TelemetryConfig::default()));
    let results = sys.run(INSTRUCTIONS, WARMUP);
    let epochs = sys
        .telemetry()
        .with(|t| t.epochs.clone())
        .unwrap_or_default();
    // Debug rendering is canonical here: every field is a u64/bool/f64
    // (floats print shortest-roundtrip, so equal bits => equal text).
    let rendered = format!("{results:?}|{:?}", epochs.records());
    fnv1a64(rendered.as_bytes())
}

/// Pre-refactor digests. Regenerate ONLY if a deliberate semantic
/// change to the simulator or a policy is being made (the failure
/// message prints the observed value); the chrome-core environment
/// refactor must never move these.
const PINNED: [(&str, u64); 12] = [
    ("LRU", 0x67efdb20960f4f53),
    ("Hawkeye", 0x1accd4467933fefb),
    ("Glider", 0x4164d68743fcc1d3),
    ("Mockingjay", 0xb5c67dbd96ec2278),
    ("CARE", 0x7be0e512b8662257),
    ("CHROME", 0x9e92b47fd61f9822),
    ("N-CHROME", 0x7d41286e103f1260),
    ("CHROME-pc", 0xd39a4c46556ce672),
    ("CHROME-pn", 0xf710cacf624dc586),
    ("CHROME-pcdelta", 0xffa430cef3bf4826),
    ("CHROME-pcseq", 0xf8bcac7d33f27ab3),
    ("CHROME-pcoffset", 0x66aa26b49882fe4c),
];

#[test]
fn hardware_sim_path_is_byte_identical_to_pre_refactor() {
    let mut failures = Vec::new();
    for (scheme, want) in PINNED {
        let got = digest(scheme);
        println!("(\"{scheme}\", {got:#018x}),");
        if got != want {
            failures.push(format!("{scheme}: got {got:#018x}, pinned {want:#018x}"));
        }
    }
    assert!(
        failures.is_empty(),
        "hardware-sim digests diverged from the pre-refactor pins:\n{}",
        failures.join("\n")
    );
}

#[test]
fn pin_table_covers_the_paper_lineup() {
    for scheme in all_schemes() {
        assert!(
            PINNED.iter().any(|(s, _)| s == scheme),
            "{scheme} missing from the pin table"
        );
    }
}

/// The digest itself must be discriminating: distinct schemes on the
/// same mixed grid must not collide (guards against a digest that
/// ignores the interesting fields).
#[test]
fn digests_discriminate_between_schemes() {
    assert_ne!(digest("LRU"), digest("CHROME"));
    assert_ne!(digest("CHROME"), digest("N-CHROME"));
}
