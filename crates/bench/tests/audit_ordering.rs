//! Decision-observer ordering under the event-driven kernel: the audit
//! trail must record decisions in decision order (strictly increasing
//! ids, rewards only settling already-seen decisions), and the blob
//! must be byte-identical to the reference kernel's — cycle skipping is
//! a scheduling transform, not a reordering of the agent's control
//! flow.

use chrome_core::{Chrome, ChromeConfig};
use chrome_sim::{Kernel, SimConfig, System};
use chrome_telemetry::{parse_audit, AuditRecord};
use chrome_traces::mix;

fn audited_blob(kernel: Kernel) -> Vec<u8> {
    let cfg = SimConfig::with_cores(2);
    let traces = mix::homogeneous("gcc", 2, 0xA0D1).expect("known workload");
    let policy = Box::new(Chrome::new(ChromeConfig {
        sampled_sets: 512,
        eq_fifo_len: 8,
        ..ChromeConfig::default()
    }));
    let mut sys = System::with_policy(cfg, traces, policy);
    assert!(sys.enable_audit(0, 1 << 20));
    let _ = sys.run_with_kernel(120_000, 12_000, kernel);
    sys.audit_bytes()
}

#[test]
fn decision_callbacks_arrive_in_decision_order_under_the_event_driven_kernel() {
    let blob = audited_blob(Kernel::EventDriven);
    let segs = parse_audit(&blob).expect("well-formed blob");
    assert_eq!(segs.len(), 1);
    let mut decisions = 0u64;
    let mut last_id = None;
    let mut seen = std::collections::HashSet::new();
    for r in &segs[0].records {
        match r {
            AuditRecord::Decision(d) => {
                assert!(
                    Some(d.id) > last_id,
                    "decision {} observed after {last_id:?}",
                    d.id
                );
                last_id = Some(d.id);
                seen.insert(d.id);
                decisions += 1;
            }
            AuditRecord::Reward(w) => {
                assert!(
                    seen.contains(&w.id),
                    "reward for decision {} arrived before the decision",
                    w.id
                );
            }
        }
    }
    assert!(decisions > 0, "the run produced LLC decisions");
}

#[test]
fn audit_blob_is_identical_across_kernels() {
    let ed = audited_blob(Kernel::EventDriven);
    let rf = audited_blob(Kernel::Reference);
    assert!(!ed.is_empty());
    assert_eq!(
        ed, rf,
        "cycle skipping must not reorder or perturb the audit trail"
    );
}
