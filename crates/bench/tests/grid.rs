//! End-to-end grid determinism and resume tests on real simulation
//! cells: tables must be byte-identical at any thread count, and a
//! resumed run must reproduce them from manifest payloads alone.

use std::path::{Path, PathBuf};

use chrome_bench::experiments::fig06;
use chrome_bench::{run_grid, ExperimentPlan, RunParams, TableWriter};
use chrome_exec::load_manifest;

fn tmp_manifest(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("grid-tests");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir.join(name)
}

/// A miniature fig06 plan: 2 workloads x all schemes, scaled down to
/// 2 cores and a small instruction budget so the suite stays fast.
fn small_plan() -> ExperimentPlan {
    let params = RunParams {
        homo_workloads: Some(2),
        ..RunParams::default()
    };
    let mut p = fig06::plan(&params);
    for c in &mut p.cells {
        c.cores = 2;
        c.instructions = 12_000;
        c.warmup = 1_200;
    }
    p
}

fn exec_params(jobs: usize, manifest: &Path, resume: bool) -> RunParams {
    RunParams {
        jobs: Some(jobs),
        retries: 0,
        resume,
        manifest: Some(manifest.to_path_buf()),
        progress: false,
        ..RunParams::default()
    }
}

fn rendered(tables: Vec<TableWriter>) -> String {
    tables
        .into_iter()
        .map(|t| t.render())
        .collect::<Vec<_>>()
        .join("\n---\n")
}

fn digests(manifest: &Path) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = load_manifest(manifest)
        .expect("readable manifest")
        .into_iter()
        .map(|r| (r.spec_hash, r.digest))
        .collect();
    v.sort();
    v
}

#[test]
fn tables_are_byte_identical_across_thread_counts() {
    let m1 = tmp_manifest("det_jobs1.jsonl");
    let m8 = tmp_manifest("det_jobs8.jsonl");
    let p1 = small_plan();
    let p8 = small_plan();

    let r1 = run_grid(&exec_params(1, &m1, false), p1.cells.clone());
    let r8 = run_grid(&exec_params(8, &m8, false), p8.cells.clone());
    assert_eq!(r1.failed, 0);
    assert_eq!(r8.failed, 0);

    let t1 = rendered((p1.assemble)(&r1.outcomes));
    let t8 = rendered((p8.assemble)(&r8.outcomes));
    assert_eq!(t1, t8, "tables differ between --jobs 1 and --jobs 8");

    // the checkpoint manifests agree cell-for-cell on result digests
    let d1 = digests(&m1);
    assert_eq!(d1, digests(&m8));
    assert_eq!(d1.len(), p1.cells.len());
}

#[test]
fn resume_reproduces_tables_without_rerunning() {
    let m = tmp_manifest("resume.jsonl");
    let plan = small_plan();
    let half = plan.cells.len() / 2;

    // simulate an interrupted run: only the first half completes
    let partial = run_grid(&exec_params(4, &m, false), plan.cells[..half].to_vec());
    assert_eq!(partial.executed, half);

    // resumed full run: completed cells load from the manifest
    let resumed = run_grid(&exec_params(4, &m, true), plan.cells.clone());
    assert_eq!(resumed.resumed, half);
    assert_eq!(resumed.executed, plan.cells.len() - half);
    assert_eq!(resumed.failed, 0);
    let resumed_tables = rendered((plan.assemble)(&resumed.outcomes));

    // a second resume executes nothing at all
    let plan2 = small_plan();
    let replay = run_grid(&exec_params(4, &m, true), plan2.cells.clone());
    assert_eq!(replay.executed, 0);
    assert_eq!(replay.resumed, plan2.cells.len());

    // and still reproduces the same bytes as a fresh single-threaded run
    let m_fresh = tmp_manifest("resume_fresh.jsonl");
    let plan3 = small_plan();
    let fresh = run_grid(&exec_params(1, &m_fresh, false), plan3.cells.clone());
    let fresh_tables = rendered((plan3.assemble)(&fresh.outcomes));
    assert_eq!(
        rendered((plan2.assemble)(&replay.outcomes)),
        fresh_tables,
        "manifest-loaded results diverge from freshly computed ones"
    );
    assert_eq!(resumed_tables, fresh_tables);
}
