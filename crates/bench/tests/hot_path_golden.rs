//! Golden-digest pin for the data-oriented hot-path refactor: every
//! cell's `SimResults` and epoch-telemetry series must stay *byte
//! identical* to the digests captured on `main` before the SoA/SIMD/
//! enum-dispatch rework landed. `kernel_equiv.rs` proves the two
//! scheduling kernels agree with each other; this test proves the
//! whole simulator still agrees with its own past across policies,
//! kernels, prefetcher presets and geometries (including the full
//! Table V 12/20/12-way caches the SIMD probe has to mask correctly).
//!
//! Regenerate (only when an *intentional* semantic change lands) with:
//!
//! ```text
//! REGEN_HOT_PATH_GOLDEN=1 cargo test -p chrome-bench --test hot_path_golden
//! ```

use chrome_bench::registry::build_any_slot;
use chrome_sim::{Kernel, PrefetcherConfig, SimConfig, System};
use chrome_telemetry::{TelemetryConfig, TelemetrySink};
use chrome_traces::mix;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/hot_path_digests.txt"
);

/// FNV-1a over the canonical debug rendering — the same stable-hash
/// idiom the grid engine uses for spec hashes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

struct Cell {
    label: &'static str,
    workload: &'static str,
    scheme: &'static str,
    cores: usize,
    prefetchers: PrefetcherConfig,
    /// Use the full Table V geometry instead of `small_test`.
    full_geometry: bool,
    instructions: u64,
    warmup: u64,
}

fn cells() -> Vec<Cell> {
    let c =
        |label, workload, scheme, cores, prefetchers, full_geometry, instructions, warmup| Cell {
            label,
            workload,
            scheme,
            cores,
            prefetchers,
            full_geometry,
            instructions,
            warmup,
        };
    vec![
        // Policy coverage on the small geometry (8-way LLC).
        c(
            "lru-mcf-1",
            "mcf",
            "LRU",
            1,
            PrefetcherConfig::default_paper(),
            false,
            20_000,
            2_000,
        ),
        c(
            "lru-mcf-4",
            "mcf",
            "LRU",
            4,
            PrefetcherConfig::default_paper(),
            false,
            12_000,
            1_000,
        ),
        c(
            "chrome-mcf-1",
            "mcf",
            "CHROME",
            1,
            PrefetcherConfig::default_paper(),
            false,
            20_000,
            2_000,
        ),
        c(
            "chrome-mcf-4",
            "mcf",
            "CHROME",
            4,
            PrefetcherConfig::default_paper(),
            false,
            12_000,
            1_000,
        ),
        c(
            "hawkeye-mcf-2",
            "mcf",
            "Hawkeye",
            2,
            PrefetcherConfig::default_paper(),
            false,
            12_000,
            1_000,
        ),
        c(
            "glider-lib-2",
            "libquantum",
            "Glider",
            2,
            PrefetcherConfig::default_paper(),
            false,
            12_000,
            1_000,
        ),
        c(
            "mockingjay-mcf-2",
            "mcf",
            "Mockingjay",
            2,
            PrefetcherConfig::default_paper(),
            false,
            12_000,
            1_000,
        ),
        c(
            "care-mcf-2",
            "mcf",
            "CARE",
            2,
            PrefetcherConfig::default_paper(),
            false,
            12_000,
            1_000,
        ),
        // Prefetcher-kind coverage (every enum arm of the dispatcher).
        c(
            "lru-lib-none",
            "libquantum",
            "LRU",
            1,
            PrefetcherConfig::none(),
            false,
            16_000,
            1_000,
        ),
        c(
            "lru-lib-ss",
            "libquantum",
            "LRU",
            1,
            PrefetcherConfig::stride_streamer(),
            false,
            16_000,
            1_000,
        ),
        c(
            "lru-lib-ipcp",
            "libquantum",
            "LRU",
            1,
            PrefetcherConfig::ipcp(),
            false,
            16_000,
            1_000,
        ),
        // GAP workload + non-power-of-two full Table V geometry
        // (12-way L1, 20-way L2, 12-way LLC: the SIMD probe's masked
        // remainder lanes).
        c(
            "lru-bfs-full",
            "bfs-ur",
            "LRU",
            2,
            PrefetcherConfig::default_paper(),
            true,
            12_000,
            1_000,
        ),
        c(
            "chrome-mcf-full",
            "mcf",
            "CHROME",
            2,
            PrefetcherConfig::default_paper(),
            true,
            12_000,
            1_000,
        ),
    ]
}

fn digest_cell(cell: &Cell, kernel: Kernel) -> u64 {
    let mut cfg = if cell.full_geometry {
        SimConfig::with_cores(cell.cores)
    } else {
        SimConfig::small_test(cell.cores)
    };
    cfg.prefetchers = cell.prefetchers;
    let traces = mix::homogeneous(cell.workload, cfg.cores, 0xC0FFEE).expect("known workload");
    let policy = build_any_slot(cell.scheme).expect("known scheme");
    let mut sys = System::with_policy(cfg, traces, policy);
    sys.set_telemetry(TelemetrySink::recording(TelemetryConfig::default()));
    let results = sys.run_with_kernel(cell.instructions, cell.warmup, kernel);
    let epochs = sys
        .telemetry()
        .with(|t| t.epochs.clone())
        .unwrap_or_default();
    // Canonical rendering: Debug formatting of both payloads. f64 Debug
    // is shortest-roundtrip, so equal digests imply bit-equal floats.
    let rendered = format!("{results:?}|{:?}", epochs.records());
    fnv1a(rendered.as_bytes())
}

#[test]
fn hot_paths_match_pre_refactor_golden_digests() {
    let regen = std::env::var("REGEN_HOT_PATH_GOLDEN").is_ok();
    let mut lines = Vec::new();
    for cell in cells() {
        for (kname, kernel) in [
            ("event", Kernel::EventDriven),
            ("reference", Kernel::Reference),
        ] {
            let digest = digest_cell(&cell, kernel);
            lines.push(format!("{}/{kname} {digest:#018x}", cell.label));
        }
    }
    let current = lines.join("\n") + "\n";
    if regen {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &current).unwrap();
        eprintln!("regenerated {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden digest file missing — run with REGEN_HOT_PATH_GOLDEN=1 to create it");
    let golden_map: std::collections::BTreeMap<&str, &str> =
        golden.lines().filter_map(|l| l.split_once(' ')).collect();
    let mut mismatches = Vec::new();
    for line in current.lines() {
        let (label, digest) = line.split_once(' ').unwrap();
        match golden_map.get(label) {
            Some(&want) if want == digest => {}
            Some(&want) => mismatches.push(format!("{label}: got {digest}, golden {want}")),
            None => mismatches.push(format!("{label}: missing from golden file")),
        }
    }
    assert!(
        mismatches.is_empty(),
        "hot-path results diverged from the pre-refactor golden digests:\n{}",
        mismatches.join("\n")
    );
}
