//! Differential tests: the event-driven scheduling kernel must be a
//! pure scheduling transform. For every policy, core count, prefetcher
//! setting and a fan of randomized configurations, running the same
//! workload under [`Kernel::EventDriven`] and [`Kernel::Reference`]
//! must produce byte-identical [`SimResults`] (including obstruction
//! vectors) and identical epoch telemetry series.

use chrome_bench::registry::{all_schemes, build_any_policy};
use chrome_sim::{Kernel, SimConfig, System};
use chrome_telemetry::{EpochSeries, TelemetryConfig, TelemetrySink};
use chrome_traces::mix;

/// Run one scheme/workload/config under `kernel` with a recording
/// telemetry sink; returns the results plus the full epoch series.
fn run_kernel(
    cfg: &SimConfig,
    workload: &str,
    scheme: &str,
    instructions: u64,
    warmup: u64,
    kernel: Kernel,
) -> (chrome_sim::SimResults, EpochSeries) {
    let traces = mix::homogeneous(workload, cfg.cores, 0xD1FF).expect("known workload");
    let policy = build_any_policy(scheme).expect("known scheme");
    let mut sys = System::with_policy(cfg.clone(), traces, policy);
    sys.set_telemetry(TelemetrySink::recording(TelemetryConfig::default()));
    let results = sys.run_with_kernel(instructions, warmup, kernel);
    let epochs = sys
        .telemetry()
        .with(|t| t.epochs.clone())
        .unwrap_or_default();
    (results, epochs)
}

/// Assert both kernels agree exactly on one cell.
fn assert_equivalent(
    cfg: &SimConfig,
    workload: &str,
    scheme: &str,
    instructions: u64,
    warmup: u64,
) {
    let (r_ref, e_ref) = run_kernel(
        cfg,
        workload,
        scheme,
        instructions,
        warmup,
        Kernel::Reference,
    );
    let (r_evt, e_evt) = run_kernel(
        cfg,
        workload,
        scheme,
        instructions,
        warmup,
        Kernel::EventDriven,
    );
    assert_eq!(
        r_ref, r_evt,
        "SimResults diverged: {scheme} on {workload}, {} cores",
        cfg.cores
    );
    // Obstruction vectors ride inside SimResults, but call them out so a
    // divergence names the field immediately.
    for (i, (a, b)) in r_ref.per_core.iter().zip(&r_evt.per_core).enumerate() {
        assert_eq!(
            (a.obstructed_epochs, a.total_epochs),
            (b.obstructed_epochs, b.total_epochs),
            "obstruction vector diverged at core {i}: {scheme} on {workload}"
        );
    }
    assert_eq!(
        e_ref.records(),
        e_evt.records(),
        "epoch series diverged: {scheme} on {workload}, {} cores",
        cfg.cores
    );
    assert_eq!(e_ref, e_evt, "EpochSeries equality must match records()");
}

/// Every LLC policy of the paper lineup, at a multicore size, with the
/// default prefetchers — the main byte-identity sweep.
#[test]
fn every_policy_is_kernel_invariant_multicore() {
    let cfg = SimConfig::small_test(4);
    for scheme in all_schemes() {
        assert_equivalent(&cfg, "mcf", scheme, 8_000, 800);
    }
}

/// Single-core runs exercise the degenerate rotation (`n == 1`) where
/// every cycle has exactly one candidate core.
#[test]
fn every_policy_is_kernel_invariant_single_core() {
    let cfg = SimConfig::small_test(1);
    for scheme in all_schemes() {
        assert_equivalent(&cfg, "libquantum", scheme, 10_000, 1_000);
    }
}

/// Eight cores stress partial-stall phases: some cores skipped, some
/// stepped, within the same cycle.
#[test]
fn eight_core_mixed_phases_are_kernel_invariant() {
    let cfg = SimConfig::small_test(8);
    for scheme in ["LRU", "CHROME"] {
        assert_equivalent(&cfg, "mcf", scheme, 5_000, 500);
    }
}

/// Prefetchers off: clock jumps become longer (no prefetch traffic to
/// absorb DRAM slack), exercising the jump path harder.
#[test]
fn prefetchers_off_is_kernel_invariant() {
    let mut cfg = SimConfig::small_test(4);
    cfg.prefetchers = chrome_sim::PrefetcherConfig::none();
    for scheme in ["LRU", "Hawkeye", "CHROME"] {
        assert_equivalent(&cfg, "mcf", scheme, 8_000, 800);
    }
}

/// Zero warmup: the measurement boundary coincides with cycle 0, a
/// corner where a stale warmup-loop jump could shift epoch numbering.
#[test]
fn zero_warmup_is_kernel_invariant() {
    let cfg = SimConfig::small_test(2);
    assert_equivalent(&cfg, "lbm", "LRU", 8_000, 0);
}

/// Randomized configurations: a deterministic xorshift walk over core
/// counts, ROB geometry, epoch lengths and workloads. Catches corner
/// interactions (tiny epochs force jump clamping; tiny ROBs force
/// near-permanent stall) that the fixed sweeps miss.
#[test]
fn randomized_configs_are_kernel_invariant() {
    let mut state: u64 = 0x9E3779B97F4A7C15;
    let mut next = move |bound: u64| {
        // xorshift64* — deterministic, no external entropy
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) % bound
    };
    let workloads = ["mcf", "libquantum", "omnetpp", "xz"];
    let schemes = ["LRU", "Glider", "CARE", "CHROME"];
    for trial in 0..6 {
        let cores = [1usize, 2, 4, 8][next(4) as usize];
        let mut cfg = SimConfig::small_test(cores);
        cfg.rob_size = [32usize, 64, 192][next(3) as usize];
        cfg.width = [2usize, 4][next(2) as usize];
        cfg.epoch_cycles = [2_500u64, 10_000, 40_000][next(3) as usize];
        if next(2) == 0 {
            cfg.prefetchers = chrome_sim::PrefetcherConfig::none();
        }
        let workload = workloads[next(4) as usize];
        let scheme = schemes[next(4) as usize];
        eprintln!(
            "trial {trial}: {scheme} on {workload}, {cores} cores, rob {}, epoch {}",
            cfg.rob_size, cfg.epoch_cycles
        );
        assert_equivalent(&cfg, workload, scheme, 4_000, 400);
    }
}
