//! Differential tests for the mesh NoC and the deterministic
//! work-stealing core stepper.
//!
//! Two independent equivalence claims are pinned here:
//!
//! 1. **Worker-count invariance.** Stepping cores through the parallel
//!    phase-A/phase-B pool must be a pure scheduling transform: for any
//!    worker count, both kernels, NoC off or on, the run produces
//!    byte-identical [`SimResults`] and identical epoch telemetry to the
//!    sequential stepper. Phase A (retire + issue planning) touches only
//!    core-private state; phase B applies the plans in rotation order,
//!    so shared-state mutation order is independent of which worker ran
//!    which core.
//! 2. **Kernel invariance under the NoC.** The event-driven kernel's
//!    clock jumps must stay exact when LLC latency is no longer uniform
//!    (per-slice routing, link contention).
//!
//! The NoC-*off* half of the matrix doubles as a regression guard: it
//! re-checks that the parallel stepper reproduces exactly what the
//! golden-digest tests hash.

use chrome_bench::registry::{all_schemes, build_any_policy};
use chrome_noc::NocConfig;
use chrome_sim::{Kernel, SimConfig, System};
use chrome_telemetry::{EpochSeries, TelemetryConfig, TelemetrySink};
use chrome_traces::mix;

/// Run one cell with an explicit kernel and stepping worker count.
fn run_cell(
    cfg: &SimConfig,
    workload: &str,
    scheme: &str,
    kernel: Kernel,
    workers: usize,
    instructions: u64,
    warmup: u64,
) -> (chrome_sim::SimResults, EpochSeries) {
    let traces = mix::homogeneous(workload, cfg.cores, 0x0C11).expect("known workload");
    let policy = build_any_policy(scheme).expect("known scheme");
    let mut sys = System::with_policy(cfg.clone(), traces, policy);
    sys.set_step_workers(workers);
    sys.set_telemetry(TelemetrySink::recording(TelemetryConfig::default()));
    let results = sys.run_with_kernel(instructions, warmup, kernel);
    let epochs = sys
        .telemetry()
        .with(|t| t.epochs.clone())
        .unwrap_or_default();
    (results, epochs)
}

/// Assert every (kernel × worker-count) combination agrees exactly with
/// the sequential reference run of the same cell.
fn assert_invariant(cfg: &SimConfig, workload: &str, scheme: &str, instructions: u64, warmup: u64) {
    let (r_base, e_base) = run_cell(
        cfg,
        workload,
        scheme,
        Kernel::Reference,
        1,
        instructions,
        warmup,
    );
    for kernel in [Kernel::Reference, Kernel::EventDriven] {
        for workers in [1usize, 4, 8] {
            if kernel == Kernel::Reference && workers == 1 {
                continue; // that is the baseline itself
            }
            let (r, e) = run_cell(cfg, workload, scheme, kernel, workers, instructions, warmup);
            assert_eq!(
                r_base, r,
                "SimResults diverged: {scheme} on {workload}, {} cores, \
                 {kernel:?}, {workers} workers, noc={:?}",
                cfg.cores, cfg.noc
            );
            assert_eq!(
                e_base.records(),
                e.records(),
                "epoch series diverged: {scheme} on {workload}, {} cores, \
                 {kernel:?}, {workers} workers, noc={:?}",
                cfg.cores,
                cfg.noc
            );
        }
    }
}

/// A 4-slice mesh config sized for the small-test LLC.
fn noc_on(cores: usize) -> SimConfig {
    let mut cfg = SimConfig::small_test(cores);
    cfg.noc = Some(NocConfig::default());
    cfg
}

/// NoC off: the parallel stepper must reproduce today's sequential
/// results bit-for-bit for every policy in the lineup.
#[test]
fn workers_are_invariant_with_noc_off() {
    let cfg = SimConfig::small_test(4);
    for scheme in ["LRU", "Hawkeye", "CHROME"] {
        assert_invariant(&cfg, "mcf", scheme, 6_000, 600);
    }
}

/// NoC on: routing and contention state must be insensitive to both the
/// kernel and the worker count.
#[test]
fn workers_are_invariant_with_noc_on() {
    let cfg = noc_on(4);
    for scheme in ["LRU", "Hawkeye", "CHROME"] {
        assert_invariant(&cfg, "mcf", scheme, 6_000, 600);
    }
}

/// Every registered policy, NoC on, both kernels, 1 vs 8 workers — the
/// broad sweep at a smaller budget.
#[test]
fn every_policy_is_worker_invariant_under_noc() {
    let cfg = noc_on(4);
    for scheme in all_schemes() {
        assert_invariant(&cfg, "libquantum", scheme, 4_000, 400);
    }
}

/// More cores than a worker pool can hold at once (16 cores, 4 workers)
/// exercises claim contention and the steal path hard; an 8×-entry mesh
/// also makes multi-hop routes common.
#[test]
fn sixteen_cores_exceeding_workers_are_invariant() {
    let cfg = noc_on(16);
    assert_invariant(&cfg, "mcf", "CHROME", 3_000, 300);
}

/// Single-core degenerate case: the pool must degrade to sequential
/// stepping (tasks <= 1) without perturbing anything.
#[test]
fn single_core_pool_degrades_to_sequential() {
    let cfg = noc_on(1);
    assert_invariant(&cfg, "libquantum", "LRU", 6_000, 600);
}

/// Slice-count sweep: 1, 2 and 8 slices change the set-to-slice map and
/// the mesh footprint; each must stay kernel- and worker-invariant.
#[test]
fn slice_counts_are_invariant() {
    for slices in [1usize, 2, 8] {
        let mut cfg = SimConfig::small_test(4);
        cfg.noc = Some(NocConfig {
            slices,
            ..NocConfig::default()
        });
        assert_invariant(&cfg, "omnetpp", "LRU", 4_000, 400);
    }
}

/// Deep contention: single-flit queues with a depth cap of 1 maximize
/// backpressure, the hardest case for event-driven clock jumps.
#[test]
fn tight_queues_are_invariant() {
    let mut cfg = SimConfig::small_test(8);
    cfg.noc = Some(NocConfig {
        slices: 8,
        hop_latency: 3,
        flits: 2,
        queue_depth: 1,
    });
    for scheme in ["LRU", "CHROME"] {
        assert_invariant(&cfg, "mcf", scheme, 4_000, 400);
    }
}

/// The NoC must actually change timing (otherwise these tests prove
/// nothing): the same cell with the mesh on must differ from the
/// uniform-latency model.
#[test]
fn noc_actually_perturbs_timing() {
    let off = SimConfig::small_test(4);
    let on = noc_on(4);
    let (r_off, _) = run_cell(&off, "mcf", "LRU", Kernel::Reference, 1, 6_000, 600);
    let (r_on, _) = run_cell(&on, "mcf", "LRU", Kernel::Reference, 1, 6_000, 600);
    assert_ne!(
        r_off, r_on,
        "a default mesh must add hop latency somewhere; identical results \
         mean the NoC is not wired into the LLC path"
    );
}
