//! The CHROME agent: an [`LlcPolicy`] that implements Algorithm 1 of the
//! paper — the RL decision task (ε-greedy action selection over the
//! Q-table on every LLC access) and the RL training task (reward
//! assignment through the Evaluation Queue and SARSA updates).
//!
//! Since the environment refactor this file holds only the *hardware
//! instantiation*: [`HwEnv`] supplies the paper's feature extraction
//! (PC signature + page number and the Table I variants), Table II
//! rewards, and C-AMAT obstruction feedback, while the RL mechanics
//! live in the generic [`crate::engine::RlEngine`] driven through
//! [`crate::env::Agent`]. [`Chrome`] wraps the pair with the LLC-side
//! state (per-block EPVs, victim selection, telemetry emission). The
//! `agent_equiv` integration test pins that this split reproduces the
//! pre-refactor simulation byte-for-byte.

use chrome_sim::overhead::StorageOverhead;
use chrome_sim::policy::{
    sampled_index, AccessInfo, CandidateLine, FillDecision, LlcPolicy, SystemFeedback,
};
use chrome_sim::types::{mix64, LineAddr};
use chrome_telemetry::{AuditLog, EventKind, PolicyEpochProbe, RewardRecord, TelemetrySink};

use crate::config::{ChromeConfig, FeatureSelection};
use crate::engine::{EngineConfig, RlEngine, ACTION_BYPASS, ACTION_HIT_EPVH};
use crate::env::{Agent, DecisionObserver, DecisionSnapshot, Environment};
use crate::eq::EqEntry;
use crate::rewards::RewardTable;

pub use crate::engine::{ChromeStats, EPV_MAX};

/// The hardware-LLC environment: the paper's feature extraction and
/// reward sources, bound to [`AccessInfo`] / [`SystemFeedback`].
#[derive(Debug)]
pub struct HwEnv {
    features: FeatureSelection,
    rewards: RewardTable,
    concurrency_aware: bool,
    multicore: bool,
    /// Per-core last accessed line (for the delta feature).
    last_line: Vec<u64>,
    /// Per-core rolling hash of the last four PCs (for the PC-sequence
    /// feature).
    pc_history: Vec<[u64; 4]>,
}

impl HwEnv {
    fn new(cfg: &ChromeConfig) -> Self {
        HwEnv {
            features: cfg.features,
            rewards: cfg.rewards,
            concurrency_aware: cfg.concurrency_aware,
            multicore: false,
            last_line: Vec::new(),
            pc_history: Vec::new(),
        }
    }

    /// Size the per-core feature history for `cores` cores.
    fn set_cores(&mut self, cores: usize) {
        self.multicore = cores > 1;
        self.last_line = vec![0; cores.max(1)];
        self.pc_history = vec![[0; 4]; cores.max(1)];
    }
}

impl Environment for HwEnv {
    type Access = AccessInfo;
    type Ctx = SystemFeedback;

    /// Extract the state feature vector for an access (paper §IV-A):
    /// PC signature hashed with the hit/miss bit, the is_prefetch bit
    /// and (in multicore systems) the core id; plus the physical page
    /// number. Returns the features in a fixed buffer.
    fn state(&mut self, info: &AccessInfo, hit: bool) -> ([u64; 2], usize) {
        let core_part = if self.multicore {
            (info.core as u64 + 1) << 24
        } else {
            0
        };
        let pc_sig =
            mix64(info.pc ^ ((hit as u64) << 62) ^ ((info.is_prefetch as u64) << 61) ^ core_part);
        let pn = info.line.page_number();
        let core = info.core.min(self.last_line.len().saturating_sub(1));
        let state = match self.features {
            FeatureSelection::PcOnly => ([pc_sig, 0], 1),
            FeatureSelection::PnOnly => ([pn, 0], 1),
            FeatureSelection::PcAndPn => ([pc_sig, pn], 2),
            FeatureSelection::PcAndDelta => {
                let delta = info.line.0.wrapping_sub(self.last_line[core]);
                ([pc_sig, mix64(info.pc ^ delta.wrapping_mul(0x9E37))], 2)
            }
            FeatureSelection::PcSeqAndPn => {
                let h = &self.pc_history[core];
                let seq = mix64(
                    h[0] ^ h[1].rotate_left(13)
                        ^ h[2].rotate_left(27)
                        ^ h[3].rotate_left(41)
                        ^ core_part,
                );
                ([seq, pn], 2)
            }
            FeatureSelection::PcOffsetAndPn => {
                let offset = info.line.0 & 0x3F; // line offset within page
                ([mix64(pc_sig ^ (offset << 48)), pn], 2)
            }
        };
        // update the per-core feature history
        self.last_line[core] = info.line.0;
        let h = &mut self.pc_history[core];
        h.rotate_right(1);
        h[0] = info.pc;
        state
    }

    fn key(&self, info: &AccessInfo) -> u64 {
        info.line.0
    }

    fn lane(&self, info: &AccessInfo) -> usize {
        info.core
    }

    fn matched_reward(&self, info: &AccessInfo, hit: bool) -> f64 {
        if hit {
            self.rewards.requested_hit(info.is_prefetch)
        } else {
            self.rewards.requested_miss(info.is_prefetch)
        }
    }

    fn unmatched_reward(&self, feedback: &SystemFeedback, entry: &EqEntry) -> f64 {
        let accurate = if entry.trigger_hit {
            entry.action == ACTION_HIT_EPVH
        } else {
            entry.action == ACTION_BYPASS
        };
        let obstructed = self.concurrency_aware && feedback.is_obstructed(entry.lane);
        self.rewards.not_requested(accurate, obstructed)
    }
}

/// Observer that forwards the agent's per-decision outcomes to the
/// telemetry sink, stamped with the triggering access's cycle and
/// core, and (when auditing) snapshots every decision and reward into
/// the policy's audit log. Audit capture is explicit opt-in, so it is
/// not gated behind the `telemetry` feature.
struct SinkObserver<'a> {
    sink: &'a TelemetrySink,
    audit: Option<&'a mut AuditLog>,
    cycle: u64,
    core: u32,
}

impl DecisionObserver for SinkObserver<'_> {
    fn reward_matched(&mut self, id: u64, reward: f64) {
        if cfg!(feature = "telemetry") {
            self.sink.emit(
                self.cycle,
                self.core,
                EventKind::RewardApplied {
                    reward,
                    matched: true,
                },
            );
        }
        if let Some(audit) = self.audit.as_deref_mut() {
            audit.push_reward(RewardRecord {
                id,
                matched: true,
                reward,
            });
        }
    }

    fn reward_unmatched(&mut self, id: u64, reward: f64) {
        if cfg!(feature = "telemetry") {
            self.sink.emit(
                self.cycle,
                self.core,
                EventKind::RewardApplied {
                    reward,
                    matched: false,
                },
            );
        }
        if let Some(audit) = self.audit.as_deref_mut() {
            audit.push_reward(RewardRecord {
                id,
                matched: false,
                reward,
            });
        }
    }

    fn wants_q_delta(&self) -> bool {
        cfg!(feature = "telemetry") && self.sink.is_enabled()
    }

    fn q_update(&mut self, delta: f64, action: usize) {
        self.sink.emit(
            self.cycle,
            self.core,
            EventKind::QUpdate {
                delta,
                action: action as u8,
            },
        );
    }

    fn wants_decisions(&self) -> bool {
        self.audit.is_some()
    }

    fn decision(&mut self, snap: &DecisionSnapshot) {
        if let Some(audit) = self.audit.as_deref_mut() {
            audit.push_decision(snap.to_record());
        }
    }
}

/// The CHROME policy (also serves as N-CHROME via
/// [`ChromeConfig::n_chrome`]).
pub struct Chrome {
    cfg: ChromeConfig,
    agent: Agent<HwEnv>,
    epv: Vec<u8>,
    num_sets: usize,
    ways: usize,
    pending_epv: u8,
    sink: TelemetrySink,
    audit: Option<AuditLog>,
    name: &'static str,
}

impl std::fmt::Debug for Chrome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chrome")
            .field("name", &self.name)
            .field("stats", self.stats())
            .finish_non_exhaustive()
    }
}

impl Chrome {
    /// Create a CHROME agent with the given configuration.
    pub fn new(cfg: ChromeConfig) -> Self {
        let engine = RlEngine::new(EngineConfig::from(&cfg));
        let env = HwEnv::new(&cfg);
        let name = if cfg.concurrency_aware {
            "CHROME"
        } else {
            "N-CHROME"
        };
        Chrome {
            agent: Agent::new(env, engine),
            epv: Vec::new(),
            num_sets: 0,
            ways: 0,
            pending_epv: 1,
            sink: TelemetrySink::noop(),
            audit: None,
            name,
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ChromeConfig {
        &self.cfg
    }

    /// Agent-internal statistics.
    pub fn stats(&self) -> &ChromeStats {
        &self.agent.engine.stats
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }
}

impl LlcPolicy for Chrome {
    fn initialize(&mut self, num_sets: usize, ways: usize, cores: usize) {
        self.num_sets = num_sets;
        self.ways = ways;
        self.epv = vec![EPV_MAX; num_sets * ways];
        self.agent.env.set_cores(cores);
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo, feedback: &SystemFeedback) {
        let si = sampled_index(set, self.num_sets, self.cfg.sampled_sets);
        let mut obs = SinkObserver {
            sink: &self.sink,
            audit: self.audit.as_mut(),
            cycle: info.cycle,
            core: info.core as u32,
        };
        let d = self.agent.on_access(si, info, true, feedback, &mut obs);
        let i = self.idx(set, way);
        self.epv[i] = (d.action - 4) as u8;
    }

    fn on_miss(
        &mut self,
        set: usize,
        info: &AccessInfo,
        feedback: &SystemFeedback,
    ) -> FillDecision {
        let si = sampled_index(set, self.num_sets, self.cfg.sampled_sets);
        let mut obs = SinkObserver {
            sink: &self.sink,
            audit: self.audit.as_mut(),
            cycle: info.cycle,
            core: info.core as u32,
        };
        let d = self.agent.on_access(si, info, false, feedback, &mut obs);
        if d.action == ACTION_BYPASS {
            FillDecision::Bypass
        } else {
            self.pending_epv = (d.action - 1) as u8;
            FillDecision::Insert
        }
    }

    fn choose_victim(&mut self, set: usize, c: &[CandidateLine], _: &AccessInfo) -> usize {
        // Victim = block with the highest EPV; age the set (RRIP-style)
        // until some block reaches EPV_MAX.
        let max = c
            .iter()
            .map(|cand| self.epv[self.idx(set, cand.way)])
            .max()
            .expect("candidates nonempty");
        if max < EPV_MAX {
            let bump = EPV_MAX - max;
            for cand in c {
                let i = self.idx(set, cand.way);
                self.epv[i] = (self.epv[i] + bump).min(EPV_MAX);
            }
        }
        c.iter()
            .find(|cand| self.epv[self.idx(set, cand.way)] >= EPV_MAX)
            .expect("aging guarantees a max-EPV block")
            .way
    }

    fn on_fill(&mut self, set: usize, way: usize, _: &AccessInfo, _: &SystemFeedback) {
        let i = self.idx(set, way);
        self.epv[i] = self.pending_epv;
    }

    fn on_evict(&mut self, _: usize, _: usize, _: LineAddr, _: bool) {}

    fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    fn enable_audit(&mut self, stream: u32, cap: usize) -> bool {
        self.audit = Some(AuditLog::new(stream, cap));
        true
    }

    fn audit(&self) -> Option<&AuditLog> {
        self.audit.as_ref()
    }

    fn epoch_probe(&self) -> PolicyEpochProbe {
        PolicyEpochProbe {
            eq_occupancy: self.agent.engine.eq().mean_occupancy(),
            eq_overflows: self.stats().eq_overflows,
            epsilon: self.cfg.epsilon,
            mean_q_mag: self.agent.engine.qtable().mean_abs_q(),
        }
    }

    fn name(&self) -> &str {
        self.name
    }

    fn report(&self) -> Vec<(String, f64)> {
        let stats = self.stats();
        vec![
            ("upksa".into(), stats.upksa()),
            ("q_updates".into(), stats.q_updates as f64),
            ("sampled_accesses".into(), stats.sampled_accesses as f64),
            ("explorations".into(), stats.explorations as f64),
            ("agent_bypasses".into(), stats.bypasses as f64),
        ]
    }

    fn storage_overhead(&self, llc_blocks: usize) -> StorageOverhead {
        let mut o = StorageOverhead::new();
        o.add_table(
            "Q-Table",
            (self.cfg.features.count() * self.cfg.sub_tables * self.cfg.sub_table_entries) as u64,
            16,
        );
        o.add_table(
            "EQ",
            (self.cfg.sampled_sets * self.cfg.eq_fifo_len) as u64,
            58,
        );
        o.add_table("EPV metadata", llc_blocks as u64, 2);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(line: u64, pc: u64, core: usize, prefetch: bool) -> AccessInfo {
        AccessInfo {
            core,
            pc,
            line: LineAddr(line),
            is_prefetch: prefetch,
            is_write: false,
            cycle: 0,
        }
    }

    fn cands(n: usize) -> Vec<CandidateLine> {
        (0..n)
            .map(|w| CandidateLine {
                way: w,
                line: LineAddr(w as u64),
                prefetch: false,
                dirty: false,
            })
            .collect()
    }

    fn mk() -> (Chrome, SystemFeedback) {
        let cfg = ChromeConfig {
            sampled_sets: 16,
            ..Default::default()
        };
        // sample every 4th of 64 sets
        let mut p = Chrome::new(cfg);
        p.initialize(64, 4, 1);
        (p, SystemFeedback::new(1))
    }

    #[test]
    fn names_reflect_awareness() {
        assert_eq!(Chrome::new(ChromeConfig::default()).name(), "CHROME");
        assert_eq!(Chrome::new(ChromeConfig::n_chrome()).name(), "N-CHROME");
    }

    #[test]
    fn sampled_accesses_counted_only_on_sampled_sets() {
        let (mut p, fb) = mk();
        p.on_miss(0, &info(1, 0x400, 0, false), &fb); // set 0 sampled
        p.on_miss(1, &info(2, 0x400, 0, false), &fb); // set 1 not
        assert_eq!(p.stats().sampled_accesses, 1);
    }

    #[test]
    fn fill_applies_chosen_epv() {
        let (mut p, fb) = mk();
        let d = p.on_miss(2, &info(1, 0x400, 0, false), &fb);
        if d == FillDecision::Insert {
            p.on_fill(2, 0, &info(1, 0x400, 0, false), &fb);
            assert!(p.epv[p.idx(2, 0)] <= EPV_MAX);
        }
    }

    #[test]
    fn victim_prefers_high_epv() {
        let (mut p, _fb) = mk();
        let (i0, i1, i2, i3) = (p.idx(3, 0), p.idx(3, 1), p.idx(3, 2), p.idx(3, 3));
        p.epv[i0] = 0;
        p.epv[i1] = 2;
        p.epv[i2] = 1;
        p.epv[i3] = 0;
        assert_eq!(p.choose_victim(3, &cands(4), &info(9, 0, 0, false)), 1);
    }

    #[test]
    fn victim_ages_when_no_max() {
        let (mut p, _fb) = mk();
        for w in 0..4 {
            let i = p.idx(3, w);
            p.epv[i] = 0;
        }
        let v = p.choose_victim(3, &cands(4), &info(9, 0, 0, false));
        assert_eq!(v, 0); // all aged to 2, first wins
        for w in 0..4 {
            assert_eq!(p.epv[p.idx(3, w)], 2);
        }
    }

    #[test]
    fn q_updates_happen_after_fifo_overflow() {
        let cfg = ChromeConfig {
            sampled_sets: 16,
            eq_fifo_len: 4,
            ..Default::default()
        };
        let mut p = Chrome::new(cfg);
        p.initialize(64, 4, 1);
        let fb = SystemFeedback::new(1);
        for l in 0..20u64 {
            p.on_miss(0, &info(l * 64, 0x400, 0, false), &fb);
        }
        assert!(
            p.stats().q_updates >= 10,
            "updates = {}",
            p.stats().q_updates
        );
        assert!(p.stats().unmatched_rewards > 0);
    }

    #[test]
    fn rerequested_address_gets_matched_reward() {
        let (mut p, fb) = mk();
        p.on_miss(0, &info(64, 0x400, 0, false), &fb);
        p.on_hit(0, 0, &info(64, 0x400, 0, false), &fb);
        assert_eq!(p.stats().matched_rewards, 1);
    }

    #[test]
    fn scanning_pattern_learns_bypass() {
        // feed a pure scan (no reuse) through one sampled set: the agent
        // should learn that bypassing maximizes reward
        // epsilon: explore a bit faster in this tiny test
        let cfg = ChromeConfig {
            sampled_sets: 64,
            epsilon: 0.05,
            ..Default::default()
        };
        let mut p = Chrome::new(cfg);
        p.initialize(64, 4, 1);
        let fb = SystemFeedback::new(1);
        for l in 0..60_000u64 {
            let set = (l % 64) as usize;
            p.on_miss(set, &info(l * 64, 0x400, 0, false), &fb);
        }
        let late_bypass_rate = {
            let before = p.stats().bypasses;
            let before_total = 10_000u64;
            for l in 0..before_total {
                let set = (l % 64) as usize;
                p.on_miss(set, &info((1 << 40) + l * 64, 0x400, 0, false), &fb);
            }
            (p.stats().bypasses - before) as f64 / before_total as f64
        };
        assert!(
            late_bypass_rate > 0.5,
            "agent should bypass a pure scan, rate = {late_bypass_rate}"
        );
    }

    #[test]
    fn reused_pattern_learns_to_insert() {
        let cfg = ChromeConfig {
            sampled_sets: 64,
            ..Default::default()
        };
        let mut p = Chrome::new(cfg);
        p.initialize(64, 4, 1);
        let fb = SystemFeedback::new(1);
        // alternate misses and hits on the same small line set: inserting
        // pays off (hits earn R_AC for the previous action)
        for rep in 0..3000u64 {
            let l = rep % 4;
            if rep < 8 {
                p.on_miss((l % 64) as usize, &info(l * 64, 0x700, 0, false), &fb);
            } else {
                p.on_hit((l % 64) as usize, 0, &info(l * 64, 0x700, 0, false), &fb);
            }
        }
        let before = p.stats().bypasses;
        for l in 0..1000u64 {
            p.on_miss(
                ((l * 7) % 64) as usize,
                &info((1 << 41) + l * 64, 0x700, 0, true),
                &fb,
            );
        }
        let rate = (p.stats().bypasses - before) as f64 / 1000.0;
        // hit-trained PC signature differs from miss signature, so this
        // checks the agent does not degenerate into always-bypass
        assert!(rate < 0.9, "rate = {rate}");
    }

    #[test]
    fn n_chrome_ignores_obstruction() {
        let mut cfg = ChromeConfig::n_chrome();
        cfg.eq_fifo_len = 2;
        cfg.sampled_sets = 64;
        let mut p = Chrome::new(cfg);
        p.initialize(64, 4, 2);
        let mut fb = SystemFeedback::new(2);
        fb.obstructed = vec![true, true];
        // All NR rewards must use the NOB values; we can't observe the
        // reward directly, but the agent must not crash and must train.
        for l in 0..100u64 {
            p.on_miss(0, &info(l * 64, 0x400, 1, false), &fb);
        }
        assert!(p.stats().q_updates > 50);
    }

    #[test]
    fn storage_overhead_matches_table_iii() {
        let p = Chrome::new(ChromeConfig::default());
        // 4-core 12MB LLC: 196608 blocks
        let o = p.storage_overhead(196_608);
        assert!(
            (o.total_kib() - 92.7).abs() < 0.1,
            "total = {}",
            o.total_kib()
        );
    }

    #[test]
    fn report_includes_upksa() {
        let (mut p, fb) = mk();
        for l in 0..200u64 {
            p.on_miss(0, &info(l * 64, 0x400, 0, false), &fb);
        }
        let report = p.report();
        assert!(report.iter().any(|(k, _)| k == "upksa"));
    }

    #[test]
    fn upksa_zero_without_accesses() {
        assert_eq!(ChromeStats::default().upksa(), 0.0);
    }

    #[test]
    fn every_feature_selection_runs() {
        use crate::config::FeatureSelection::*;
        for features in [
            PcOnly,
            PnOnly,
            PcAndPn,
            PcAndDelta,
            PcSeqAndPn,
            PcOffsetAndPn,
        ] {
            let mut cfg = ChromeConfig {
                features,
                ..Default::default()
            };
            cfg.sampled_sets = 16;
            let mut p = Chrome::new(cfg);
            p.initialize(64, 4, 2);
            let fb = SystemFeedback::new(2);
            for l in 0..500u64 {
                let set = (l % 64) as usize;
                let i = info(l * 64, 0x400 + (l % 8) * 4, (l % 2) as usize, l % 5 == 0);
                if l % 3 == 0 {
                    p.on_hit(set, 0, &i, &fb);
                } else {
                    let _ = p.on_miss(set, &i, &fb);
                }
            }
            assert!(p.stats().sampled_accesses > 0, "{features:?}");
        }
    }

    #[test]
    fn audit_trail_records_every_decision_in_order() {
        use chrome_telemetry::{parse_audit, AuditRecord};
        let (mut p, fb) = mk();
        assert!(LlcPolicy::enable_audit(&mut p, 3, 4096));
        for l in 0..300u64 {
            let set = (l % 64) as usize;
            if l % 4 == 3 {
                p.on_hit(set, 0, &info((l % 8) * 64, 0x400, 0, false), &fb);
            } else {
                let _ = p.on_miss(set, &info(l * 64, 0x400, 0, false), &fb);
            }
        }
        let log = LlcPolicy::audit(&p).expect("auditing enabled");
        let segs = parse_audit(&log.to_bytes()).expect("well-formed blob");
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].stream, 3);
        let mut decisions = 0u64;
        let mut last_id = None;
        let mut seen = std::collections::HashSet::new();
        for r in &segs[0].records {
            match r {
                AuditRecord::Decision(d) => {
                    assert!(Some(d.id) > last_id, "ids arrive in decision order");
                    last_id = Some(d.id);
                    seen.insert(d.id);
                    decisions += 1;
                }
                AuditRecord::Reward(w) => {
                    assert!(seen.contains(&w.id), "reward settles a seen decision");
                }
            }
        }
        assert_eq!(decisions, 300, "every access decided and was recorded");
        assert_eq!(decisions, p.stats().decisions);
    }

    #[test]
    fn audit_capture_does_not_perturb_the_agent() {
        let run = |audit: bool| {
            let (mut p, fb) = mk();
            if audit {
                LlcPolicy::enable_audit(&mut p, 0, 1 << 16);
            }
            for l in 0..2000u64 {
                let set = (l % 64) as usize;
                if l % 3 == 0 {
                    p.on_hit(set, 0, &info((l % 16) * 64, 0x400, 0, false), &fb);
                } else {
                    let _ = p.on_miss(set, &info(l * 64, 0x400, 0, false), &fb);
                }
            }
            *p.stats()
        };
        assert_eq!(run(false), run(true), "snapshotting is read-only");
    }

    #[test]
    fn delta_feature_distinguishes_strides() {
        let cfg = ChromeConfig {
            features: crate::config::FeatureSelection::PcAndDelta,
            ..Default::default()
        };
        let mut p = Chrome::new(cfg);
        p.initialize(64, 4, 1);
        // two accesses with the same pc but different deltas produce
        // different second features
        let a1 = info(0, 0x400, 0, false);
        let a2 = info(64 * 64, 0x400, 0, false); // delta 64 lines
        let a3 = info(64 * 65, 0x400, 0, false); // delta 1 line
        let _ = p.agent.env.state(&a1, false);
        let (s2, _) = p.agent.env.state(&a2, false);
        let (s3, _) = p.agent.env.state(&a3, false);
        assert_ne!(s2[1], s3[1], "different strides must differ in state");
    }

    #[test]
    fn pc_sequence_feature_tracks_history() {
        let cfg = ChromeConfig {
            features: crate::config::FeatureSelection::PcSeqAndPn,
            ..Default::default()
        };
        let mut p = Chrome::new(cfg);
        p.initialize(64, 4, 1);
        // same current context, different preceding PC history
        let warm = |p: &mut Chrome, pcs: [u64; 3]| {
            for pc in pcs {
                let _ = p.agent.env.state(&info(0, pc, 0, false), false);
            }
            p.agent.env.state(&info(64, 0x400, 0, false), false)
        };
        let (sa, _) = warm(&mut p, [0x1, 0x2, 0x3]);
        let (sb, _) = warm(&mut p, [0x9, 0x8, 0x7]);
        assert_ne!(sa[0], sb[0], "PC history must shape the sequence feature");
    }
}
