//! CHROME configuration: rewards, hyper-parameters, table geometry
//! (paper Tables II and III).

use crate::rewards::RewardTable;

/// Which program features form the state vector.
///
/// The paper's Table I lists the candidate features (control-flow,
/// data-access, and combinations); its feature-selection pass settles on
/// PC signature + page number ([`FeatureSelection::PcAndPn`]), ablated
/// in Fig. 15 against the single-feature variants. The remaining
/// variants here expose the other Table I candidates for
/// experimentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureSelection {
    /// PC signature only.
    PcOnly,
    /// Physical page number only.
    PnOnly,
    /// Both features (the paper's configuration).
    PcAndPn,
    /// PC signature + (PC ⊕ address-delta) combination (Table I
    /// "PC + delta").
    PcAndDelta,
    /// Hash of the last four PCs + page number (Table I "sequence of
    /// last 4 PCs").
    PcSeqAndPn,
    /// (PC ⊕ page-offset) combination + page number (Table I
    /// "PC + page offset").
    PcOffsetAndPn,
}

impl FeatureSelection {
    /// Number of active features.
    pub fn count(self) -> usize {
        match self {
            FeatureSelection::PcOnly | FeatureSelection::PnOnly => 1,
            _ => 2,
        }
    }
}

/// Full CHROME configuration. [`ChromeConfig::default`] reproduces the
/// paper's Tables II and III.
#[derive(Debug, Clone)]
pub struct ChromeConfig {
    /// Learning rate α (paper: 0.0498 ≈ e⁻³).
    pub alpha: f64,
    /// Discount factor γ (paper: 0.3679 ≈ e⁻¹).
    pub gamma: f64,
    /// Exploration rate ε (paper: 0.001).
    pub epsilon: f64,
    /// Reward values (paper Table II).
    pub rewards: RewardTable,
    /// Number of sampled sets feeding the Evaluation Queue.
    pub sampled_sets: usize,
    /// Entries per EQ FIFO (paper: 28; Table VII sweeps 12–36).
    pub eq_fifo_len: usize,
    /// Sub-tables per feature in the Q-table (paper: 4).
    pub sub_tables: usize,
    /// Entries per sub-table (paper: 2048).
    pub sub_table_entries: usize,
    /// Which features form the state.
    pub features: FeatureSelection,
    /// If false, the LLC-obstruction flag is ignored and the NOB reward
    /// values are always used — this is N-CHROME.
    pub concurrency_aware: bool,
    /// RNG seed for ε-greedy exploration.
    pub seed: u64,
}

impl Default for ChromeConfig {
    fn default() -> Self {
        ChromeConfig {
            alpha: 0.0498,
            gamma: 0.3679,
            epsilon: 0.001,
            rewards: RewardTable::default(),
            sampled_sets: 64,
            eq_fifo_len: 28,
            sub_tables: 4,
            sub_table_entries: 2048,
            features: FeatureSelection::PcAndPn,
            concurrency_aware: true,
            seed: 0xC42,
        }
    }
}

impl ChromeConfig {
    /// The N-CHROME ablation: identical workflow, no concurrency
    /// awareness (paper §VII-C).
    pub fn n_chrome() -> Self {
        ChromeConfig {
            concurrency_aware: false,
            ..Self::default()
        }
    }

    /// Optimistic initial Q-value, `1 / (1 − γ)` (paper §V-B).
    pub fn q_init(&self) -> f64 {
        1.0 / (1.0 - self.gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_ii() {
        let c = ChromeConfig::default();
        assert!((c.alpha - 0.0498).abs() < 1e-9);
        assert!((c.gamma - 0.3679).abs() < 1e-9);
        assert!((c.epsilon - 0.001).abs() < 1e-9);
        assert_eq!(c.eq_fifo_len, 28);
        assert_eq!(c.sampled_sets, 64);
        assert_eq!(c.sub_tables, 4);
        assert_eq!(c.sub_table_entries, 2048);
        assert!(c.concurrency_aware);
    }

    #[test]
    fn q_init_is_discount_sum() {
        let c = ChromeConfig::default();
        assert!((c.q_init() - 1.0 / (1.0 - 0.3679)).abs() < 1e-12);
    }

    #[test]
    fn n_chrome_differs_only_in_awareness() {
        let c = ChromeConfig::n_chrome();
        assert!(!c.concurrency_aware);
        assert!((c.alpha - ChromeConfig::default().alpha).abs() < 1e-12);
    }

    #[test]
    fn feature_counts() {
        assert_eq!(FeatureSelection::PcOnly.count(), 1);
        assert_eq!(FeatureSelection::PnOnly.count(), 1);
        assert_eq!(FeatureSelection::PcAndPn.count(), 2);
    }
}
