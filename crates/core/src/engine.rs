//! The environment-agnostic SARSA engine: ε-greedy selection over the
//! Q-table, the Evaluation Queue's delayed reward assignment, and the
//! SARSA update itself (Algorithm 1's RL decision + training tasks),
//! with no knowledge of *what* is being cached.
//!
//! The engine owns the pieces of CHROME that are pure reinforcement
//! learning — [`QTable`], [`EvalQueue`], the exploration RNG, and the
//! [`ChromeStats`] counters — while everything tied to a concrete access
//! stream (feature extraction, reward values, obstruction feedback)
//! lives behind the [`crate::env::Environment`] trait. The hardware-LLC
//! reproduction ([`crate::agent::Chrome`]) and the serving-cache agent
//! (`chrome-serve`) are both thin wrappers over this type; the
//! `agent_equiv` integration test pins that this factoring left the
//! paper reproduction byte-identical.

use chrome_sim::rng::SmallRng;

use crate::config::ChromeConfig;
use crate::eq::{EqEntry, EvalQueue};
use crate::qtable::{QTable, NUM_ACTIONS};

/// Highest eviction-priority value (2-bit EPV, three levels 0..=2).
pub const EPV_MAX: u8 = 2;

/// Action encoding: 0 = bypass; 1..=3 = insert with EPV (a-1);
/// 4..=6 = re-assign EPV (a-4) on a hit.
pub const ACTION_BYPASS: usize = 0;
/// Legal actions on a miss trigger (bypass or insert at an EPV).
pub const MISS_ACTIONS: [usize; 4] = [0, 1, 2, 3];
/// Legal actions on a hit trigger (re-assign the EPV).
pub const HIT_ACTIONS: [usize; 3] = [4, 5, 6];
/// The hit action that marks a block dead (highest EPV).
pub const ACTION_HIT_EPVH: usize = 6;

/// Fixed preference order for breaking *exact* Q ties — the signature
/// of an untrained state. Insert at mid priority on a miss, keep
/// (lowest eviction priority) on a hit, bypass last — so undertrained
/// states behave like SRRIP instead of acting randomly. *Learned*
/// preferences still win outright: a thrashing state's insert actions
/// are driven negative while bypass keeps its optimistic initial value,
/// so bypass is chosen without ever being tie-broken.
pub const TIE_RANK: [u8; NUM_ACTIONS] = [
    3, // bypass: last resort
    1, // insert at EPV0 (protect)
    0, // insert at EPV1 (neutral default)
    2, // insert at EPV2 (evict-first)
    0, // hit: EPV0 (keep)
    1, // hit: EPV1
    2, // hit: EPV2 (mark dead)
];

/// Counters the agent keeps about its own operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChromeStats {
    /// Accesses observed on sampled sets.
    pub sampled_accesses: u64,
    /// SARSA updates applied to the Q-table.
    pub q_updates: u64,
    /// ε-greedy explorations taken.
    pub explorations: u64,
    /// Bypass actions chosen.
    pub bypasses: u64,
    /// Rewards assigned by address match (re-requested within window).
    pub matched_rewards: u64,
    /// Rewards assigned at EQ eviction (never re-requested).
    pub unmatched_rewards: u64,
    /// EQ FIFO overflows (pushes that evicted the oldest entry).
    pub eq_overflows: u64,
    /// Decisions made (every access, sampled or not). Doubles as the
    /// audit trail's monotonic decision-id counter.
    pub decisions: u64,
}

impl ChromeStats {
    /// Q-table updates per kilo sampled accesses (paper Table VII).
    pub fn upksa(&self) -> f64 {
        if self.sampled_accesses == 0 {
            0.0
        } else {
            self.q_updates as f64 * 1000.0 / self.sampled_accesses as f64
        }
    }
}

/// Engine geometry and hyper-parameters: the environment-independent
/// subset of [`ChromeConfig`] (which additionally carries feature
/// selection, reward values and concurrency awareness — all environment
/// concerns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Learning rate α.
    pub alpha: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Exploration rate ε.
    pub epsilon: f64,
    /// Optimistic initial Q-value.
    pub q_init: f64,
    /// Number of state features (Q-table slices).
    pub features: usize,
    /// Sub-tables per feature.
    pub sub_tables: usize,
    /// Entries per sub-table.
    pub sub_table_entries: usize,
    /// Number of EQ FIFOs (sampled sets / sampled key buckets).
    pub sampled_sets: usize,
    /// Entries per EQ FIFO.
    pub eq_fifo_len: usize,
    /// RNG seed for ε-greedy exploration.
    pub seed: u64,
}

impl From<&ChromeConfig> for EngineConfig {
    fn from(cfg: &ChromeConfig) -> Self {
        EngineConfig {
            alpha: cfg.alpha,
            gamma: cfg.gamma,
            epsilon: cfg.epsilon,
            q_init: cfg.q_init(),
            features: cfg.features.count(),
            sub_tables: cfg.sub_tables,
            sub_table_entries: cfg.sub_table_entries,
            sampled_sets: cfg.sampled_sets,
            eq_fifo_len: cfg.eq_fifo_len,
            seed: cfg.seed,
        }
    }
}

/// What a training step (EQ overflow) did, so wrappers can emit
/// telemetry without the engine depending on a sink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainOutcome {
    /// Decision id of the trained (EQ-evicted) entry.
    pub id: u64,
    /// Reward assigned at eviction because the entry was never
    /// re-requested (`None` if it had already been matched).
    pub unmatched: Option<f64>,
    /// Action whose Q-value moved.
    pub action: usize,
    /// Pre-update TD delta (`target − Q`), computed only on request.
    pub delta: Option<f64>,
}

/// The generic SARSA engine.
#[derive(Debug)]
pub struct RlEngine {
    cfg: EngineConfig,
    qtable: QTable,
    eq: EvalQueue,
    rng: SmallRng,
    /// Agent-internal statistics.
    pub stats: ChromeStats,
}

impl RlEngine {
    /// Build the Q-table, EQ and exploration RNG for `cfg`.
    pub fn new(cfg: EngineConfig) -> Self {
        let qtable = QTable::new(
            cfg.features,
            cfg.sub_tables,
            cfg.sub_table_entries,
            cfg.q_init,
        );
        let eq = EvalQueue::new(cfg.sampled_sets, cfg.eq_fifo_len);
        RlEngine {
            rng: SmallRng::seed_from_u64(cfg.seed),
            qtable,
            eq,
            stats: ChromeStats::default(),
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Read access to the Q-table (epoch probes, decision forensics).
    pub fn qtable(&self) -> &QTable {
        &self.qtable
    }

    /// Read access to the Evaluation Queue (occupancy probes).
    pub fn eq(&self) -> &EvalQueue {
        &self.eq
    }

    /// Q-value of `(state, action)` under the current table.
    pub fn q(&self, state: &[u64], action: usize) -> f64 {
        self.qtable.q_state(state, action)
    }

    /// ε-greedy action selection among `legal` actions. Exact Q ties —
    /// common under optimistic initialization — break by the fixed
    /// defensive [`TIE_RANK`] preference.
    pub fn select(&mut self, state: &[u64], legal: &[usize]) -> usize {
        if self.rng.gen_f64() < self.cfg.epsilon {
            self.stats.explorations += 1;
            return legal[self.rng.gen_range(0..legal.len())];
        }
        let mut best = [0usize; 8];
        let mut n = 0;
        let mut best_q = f64::NEG_INFINITY;
        for &a in legal {
            let q = self.qtable.q_state(state, a);
            if q > best_q + 1e-9 {
                best_q = q;
                best[0] = a;
                n = 1;
            } else if (q - best_q).abs() <= 1e-9 {
                best[n] = a;
                n += 1;
            }
        }
        if n == 1 {
            return best[0];
        }
        *best[..n]
            .iter()
            .min_by_key(|&&a| TIE_RANK[a])
            .expect("nonempty tie set")
    }

    /// Reward-match step (Algorithm 1, lines 3–8): if `key` sits
    /// unrewarded in FIFO `si`, the earlier action is now evaluated by
    /// the current request's outcome. Returns the matched entry's
    /// decision id when a reward was assigned.
    pub fn try_match(&mut self, si: usize, key: u64, reward: f64) -> Option<u64> {
        let entry = self.eq.fifo(si).find_unrewarded(key)?;
        entry.reward = Some(reward);
        let id = entry.id;
        self.stats.matched_rewards += 1;
        Some(id)
    }

    /// Record the executed action in FIFO `si` and, on overflow,
    /// finalize the evicted entry's reward and run the SARSA update
    /// (Algorithm 1, lines 21–38). `unmatched_reward` supplies the
    /// dead-block reward when the evicted entry was never re-requested;
    /// `want_delta` asks for the pre-update TD delta (telemetry only —
    /// it costs an extra Q lookup).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        si: usize,
        id: u64,
        state: &[u64],
        action: usize,
        trigger_hit: bool,
        key: u64,
        lane: usize,
        unmatched_reward: impl FnOnce(&EqEntry) -> f64,
        want_delta: bool,
    ) -> Option<TrainOutcome> {
        let entry = EqEntry {
            id,
            state: crate::eq::EqState::from_slice(state),
            action,
            trigger_hit,
            key,
            lane,
            reward: None,
        };
        let capacity = self.eq.capacity();
        let (mut evicted, next) = self.eq.fifo(si).push(entry, capacity)?;
        self.stats.eq_overflows += 1;
        let mut unmatched = None;
        if evicted.reward.is_none() {
            let reward = unmatched_reward(&evicted);
            evicted.reward = Some(reward);
            self.stats.unmatched_rewards += 1;
            unmatched = Some(reward);
        }
        let reward = evicted.reward.expect("assigned above");
        let target = match next {
            Some((next_state, next_action)) => {
                reward + self.cfg.gamma * self.qtable.q_state(&next_state, next_action)
            }
            None => reward,
        };
        let delta =
            want_delta.then(|| target - self.qtable.q_state(&evicted.state, evicted.action));
        self.qtable
            .update(&evicted.state, evicted.action, target, self.cfg.alpha);
        self.stats.q_updates += 1;
        Some(TrainOutcome {
            id: evicted.id,
            unmatched,
            action: evicted.action,
            delta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> RlEngine {
        RlEngine::new(EngineConfig::from(&ChromeConfig::default()))
    }

    #[test]
    fn engine_config_mirrors_chrome_config() {
        let cfg = ChromeConfig::default();
        let e = EngineConfig::from(&cfg);
        assert_eq!(e.features, 2);
        assert_eq!(e.sampled_sets, 64);
        assert_eq!(e.eq_fifo_len, 28);
        assert!((e.q_init - cfg.q_init()).abs() < 1e-12);
        assert_eq!(e.seed, 0xC42);
    }

    #[test]
    fn untrained_miss_tie_breaks_to_neutral_insert() {
        let mut e = engine();
        // all Q equal at init → TIE_RANK picks insert-at-EPV1 (action 2)
        assert_eq!(e.select(&[1, 2], &MISS_ACTIONS), 2);
        assert_eq!(e.select(&[9, 9], &HIT_ACTIONS), 4);
    }

    #[test]
    fn learned_preference_beats_tie_rank() {
        let mut e = engine();
        let state = [77u64, 88u64];
        for _ in 0..300 {
            e.record(0, 0, &state, 0, false, 1, 0, |_| 25.0, false);
        }
        // drive bypass far above the others; it must win despite having
        // the worst tie rank
        for _ in 0..200 {
            e.qtable.update(&state, ACTION_BYPASS, 30.0, 0.1);
        }
        assert_eq!(e.select(&state, &MISS_ACTIONS), ACTION_BYPASS);
    }

    #[test]
    fn record_trains_only_on_overflow() {
        let mut e = engine();
        let state = [3u64, 4u64];
        for i in 0..e.config().eq_fifo_len as u64 {
            assert!(e
                .record(0, i, &state, 2, false, i, 0, |_| 0.0, false)
                .is_none());
        }
        let out = e
            .record(0, 999, &state, 2, false, 999, 0, |_| -10.0, false)
            .expect("overflow");
        assert_eq!(out.unmatched, Some(-10.0));
        assert_eq!(out.action, 2);
        assert_eq!(e.stats.q_updates, 1);
        assert_eq!(e.stats.eq_overflows, 1);
    }

    #[test]
    fn matched_entry_keeps_its_reward_at_overflow() {
        let mut e = engine();
        let state = [5u64, 6u64];
        e.record(0, 7, &state, 1, false, 42, 0, |_| 0.0, false);
        assert_eq!(e.try_match(0, 42, 20.0), Some(7));
        assert!(e.try_match(0, 42, 20.0).is_none(), "already rewarded");
        for i in 0..e.config().eq_fifo_len as u64 {
            e.record(0, 100 + i, &state, 1, false, 1000 + i, 0, |_| -7.0, false);
        }
        // the matched entry was evicted first; its unmatched slot is None
        assert_eq!(e.stats.matched_rewards, 1);
        assert!(e.stats.unmatched_rewards == 0 || e.stats.q_updates >= 1);
    }

    #[test]
    fn delta_reports_pre_update_td_error() {
        let mut e = engine();
        let state = [10u64, 11u64];
        for i in 0..e.config().eq_fifo_len as u64 {
            e.record(0, i, &state, 3, false, i, 0, |_| 0.0, false);
        }
        let q_before = e.q(&state, 3);
        let out = e
            .record(0, 500, &state, 3, false, 500, 0, |_| 12.0, true)
            .expect("overflow");
        let delta = out.delta.expect("requested");
        // target = 12 + γ·q(next); delta = target − q_before
        let expected = 12.0 + e.config().gamma * e.q(&state, 3) - q_before;
        // the post-update q(next) differs slightly from the one used at
        // record time; just sanity-check magnitude and sign coherence
        assert!((delta - expected).abs() < 1.0, "{delta} vs {expected}");
    }

    #[test]
    fn exploration_counts_under_forced_epsilon() {
        let mut e = RlEngine::new(EngineConfig {
            epsilon: 1.0,
            ..EngineConfig::from(&ChromeConfig::default())
        });
        for _ in 0..50 {
            let a = e.select(&[1, 2], &MISS_ACTIONS);
            assert!(MISS_ACTIONS.contains(&a));
        }
        assert_eq!(e.stats.explorations, 50);
    }
}
