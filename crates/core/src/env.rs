//! The environment abstraction: what CHROME's SARSA engine needs to
//! know about the thing it manages, and nothing more.
//!
//! The paper instantiates the agent against a hardware LLC (features =
//! PC signature + page number, rewards = Table II, obstruction =
//! C-AMAT). An [`Environment`] packages exactly that instance-specific
//! surface — feature extraction, the EQ match key, the per-decision
//! lane, and both reward sources — so the identical engine can drive
//! other access streams (the `chrome-serve` KV cache rewards with
//! observed hit/miss latency deltas instead). [`Agent`] composes an
//! environment with an [`RlEngine`] and runs Algorithm 1's per-access
//! flow in the exact order of the original hardware agent; the
//! `agent_equiv` test pins that order byte-for-byte.

use crate::engine::{RlEngine, ACTION_BYPASS, HIT_ACTIONS, MISS_ACTIONS};
use crate::eq::EqEntry;
use crate::qtable::NUM_ACTIONS;

/// An access stream the SARSA engine can manage.
pub trait Environment {
    /// One access/request (the hardware LLC's `AccessInfo`, a serving
    /// cache's request).
    type Access;
    /// System feedback consulted when a dead-block reward is assigned
    /// (the hardware's `SystemFeedback`; a shard's pressure snapshot).
    type Ctx: ?Sized;

    /// Extract the state feature vector for an access. Returns a fixed
    /// buffer plus the number of active features; may update internal
    /// feature history (last line, PC history, EWMAs).
    fn state(&mut self, access: &Self::Access, hit: bool) -> ([u64; 2], usize);

    /// The EQ match key: a later access with the same key assigns this
    /// decision its reward.
    fn key(&self, access: &Self::Access) -> u64;

    /// The lane (core, tenant, shard) charged with the decision — used
    /// by concurrency-aware dead-block rewards.
    fn lane(&self, access: &Self::Access) -> usize;

    /// Reward for an earlier action whose key was re-requested, judged
    /// by whether the current request hit.
    fn matched_reward(&self, access: &Self::Access, hit: bool) -> f64;

    /// Reward for an action whose key was never re-requested within the
    /// EQ window (the entry aged out of its FIFO).
    fn unmatched_reward(&self, ctx: &Self::Ctx, entry: &EqEntry) -> f64;

    /// Legal actions for a hit/miss trigger. The default is the paper's
    /// 7-action space: bypass/insert-at-EPV on a miss, re-assign-EPV on
    /// a hit.
    fn legal_actions(hit: bool) -> &'static [usize] {
        if hit {
            &HIT_ACTIONS
        } else {
            &MISS_ACTIONS
        }
    }
}

/// Everything [`Agent::on_access`] knew at decision time, offered to
/// observers that asked for full decision snapshots (the audit trail).
/// Building one costs `features × actions` pure Q reads, so it is
/// gated behind [`DecisionObserver::wants_decisions`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionSnapshot<'a> {
    /// Monotonic decision id (the EQ linkage id); reward callbacks
    /// reference it.
    pub id: u64,
    /// Active feature-slice values.
    pub state: &'a [u64],
    /// True when the triggering access hit.
    pub hit: bool,
    /// True when the access landed on a sampled set/bucket.
    pub sampled: bool,
    /// True when ε-greedy exploration overrode the greedy choice.
    pub explored: bool,
    /// The chosen action.
    pub action: usize,
    /// The EQ match key.
    pub key: u64,
    /// The issuing lane.
    pub lane: usize,
    /// Per-feature Q components `q[f][a]` (rows beyond the active
    /// feature count are zero). Q(s,a) is the max over features.
    pub q: [[f64; NUM_ACTIONS]; 2],
}

impl DecisionSnapshot<'_> {
    /// Convert to an audit-log record (Q components narrowed to f32).
    pub fn to_record(&self) -> chrome_telemetry::DecisionRecord {
        let mut state = [0u64; 2];
        state[..self.state.len()].copy_from_slice(self.state);
        let mut q = [[0f32; NUM_ACTIONS]; 2];
        for (row, src) in q.iter_mut().zip(self.q.iter()) {
            for (v, s) in row.iter_mut().zip(src.iter()) {
                *v = *s as f32;
            }
        }
        chrome_telemetry::DecisionRecord {
            id: self.id,
            key: self.key,
            state,
            lane: self.lane as u32,
            features: self.state.len() as u8,
            action: self.action as u8,
            hit: self.hit,
            sampled: self.sampled,
            explored: self.explored,
            q,
        }
    }
}

/// Per-decision hooks so wrappers can observe what [`Agent::on_access`]
/// did (telemetry emission) without the engine depending on a sink.
/// Every method defaults to a no-op. Reward callbacks carry the
/// decision id the reward settles, so observers can link them back to
/// earlier [`DecisionSnapshot`]s.
pub trait DecisionObserver {
    /// A delayed reward was assigned by key match to decision `id`.
    fn reward_matched(&mut self, _id: u64, _reward: f64) {}
    /// A dead-block reward was assigned to decision `id` at EQ
    /// eviction.
    fn reward_unmatched(&mut self, _id: u64, _reward: f64) {}
    /// True to have the training step compute the pre-update TD delta
    /// (costs an extra Q lookup; off by default).
    fn wants_q_delta(&self) -> bool {
        false
    }
    /// A SARSA update moved `action`'s Q-value by `delta` (only called
    /// when [`DecisionObserver::wants_q_delta`] returned true).
    fn q_update(&mut self, _delta: f64, _action: usize) {}
    /// True to receive a full [`DecisionSnapshot`] per access (costs
    /// the per-feature Q reads; off by default).
    fn wants_decisions(&self) -> bool {
        false
    }
    /// A decision was made (only called when
    /// [`DecisionObserver::wants_decisions`] returned true).
    fn decision(&mut self, _snap: &DecisionSnapshot) {}
}

/// The observer that observes nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoObserver;

impl DecisionObserver for NoObserver {}

/// What one access decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The selected action (paper encoding: 0 bypass, 1–3 insert at
    /// EPV a−1, 4–6 re-assign EPV a−4).
    pub action: usize,
    /// True when the access landed on a sampled set/bucket and was
    /// recorded in the EQ.
    pub sampled: bool,
    /// The state feature buffer the action was selected against.
    pub state: [u64; 2],
    /// Number of active features in `state`.
    pub features: usize,
}

/// A SARSA agent bound to an environment: the engine plus the
/// per-access control flow of Algorithm 1.
#[derive(Debug)]
pub struct Agent<E: Environment> {
    /// The environment (feature extraction + reward source).
    pub env: E,
    /// The environment-agnostic SARSA engine.
    pub engine: RlEngine,
}

impl<E: Environment> Agent<E> {
    /// Bind `env` to `engine`.
    pub fn new(env: E, engine: RlEngine) -> Self {
        Agent { env, engine }
    }

    /// Run one access through the full decision + training flow:
    /// reward-match (sampled only), feature extraction, ε-greedy
    /// selection, EQ record + SARSA train (sampled only). `si` is the
    /// sampled FIFO index, `None` when the access is unsampled (it then
    /// only selects an action).
    ///
    /// The step order is exactly the paper agent's; reordering it moves
    /// RNG draws and Q-updates and breaks byte-equivalence.
    pub fn on_access(
        &mut self,
        si: Option<usize>,
        access: &E::Access,
        hit: bool,
        ctx: &E::Ctx,
        obs: &mut impl DecisionObserver,
    ) -> Decision {
        let id = self.engine.stats.decisions;
        self.engine.stats.decisions += 1;
        if let Some(si) = si {
            self.engine.stats.sampled_accesses += 1;
            let reward = self.env.matched_reward(access, hit);
            if let Some(matched) = self.engine.try_match(si, self.env.key(access), reward) {
                obs.reward_matched(matched, reward);
            }
        }
        let (buf, n) = self.env.state(access, hit);
        let state = &buf[..n];
        let explorations_before = self.engine.stats.explorations;
        let action = self.engine.select(state, E::legal_actions(hit));
        if obs.wants_decisions() {
            // pure Q reads: no RNG draw, no table write, so snapshotting
            // cannot perturb byte-equivalence
            let mut q = [[0.0; NUM_ACTIONS]; 2];
            for (f, row) in q.iter_mut().enumerate().take(n) {
                for (a, slot) in row.iter_mut().enumerate() {
                    *slot = self.engine.qtable().q_feature(f, state[f], a);
                }
            }
            obs.decision(&DecisionSnapshot {
                id,
                state,
                hit,
                sampled: si.is_some(),
                explored: self.engine.stats.explorations != explorations_before,
                action,
                key: self.env.key(access),
                lane: self.env.lane(access),
                q,
            });
        }
        if let Some(si) = si {
            let env = &self.env;
            let outcome = self.engine.record(
                si,
                id,
                state,
                action,
                hit,
                env.key(access),
                env.lane(access),
                |entry| env.unmatched_reward(ctx, entry),
                obs.wants_q_delta(),
            );
            if let Some(out) = outcome {
                if let Some(reward) = out.unmatched {
                    obs.reward_unmatched(out.id, reward);
                }
                if let Some(delta) = out.delta {
                    obs.q_update(delta, out.action);
                }
            }
        }
        if !hit && action == ACTION_BYPASS {
            self.engine.stats.bypasses += 1;
        }
        Decision {
            action,
            sampled: si.is_some(),
            state: buf,
            features: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChromeConfig;
    use crate::engine::{EngineConfig, ACTION_HIT_EPVH};

    /// A toy environment: key-identity features, fixed rewards, lane 0.
    struct ToyEnv {
        matched: f64,
        unmatched: f64,
    }

    impl Environment for ToyEnv {
        type Access = u64;
        type Ctx = ();

        fn state(&mut self, access: &u64, hit: bool) -> ([u64; 2], usize) {
            ([*access, hit as u64], 2)
        }
        fn key(&self, access: &u64) -> u64 {
            *access
        }
        fn lane(&self, _: &u64) -> usize {
            0
        }
        fn matched_reward(&self, _: &u64, hit: bool) -> f64 {
            if hit {
                self.matched
            } else {
                -self.matched
            }
        }
        fn unmatched_reward(&self, _: &(), entry: &EqEntry) -> f64 {
            if entry.trigger_hit {
                self.unmatched
            } else {
                -self.unmatched
            }
        }
    }

    #[derive(Default)]
    struct CountingObserver {
        matched: u32,
        unmatched: u32,
        updates: u32,
        decisions: Vec<u64>,
        rewarded_ids: Vec<u64>,
    }

    impl DecisionObserver for CountingObserver {
        fn reward_matched(&mut self, id: u64, _: f64) {
            self.matched += 1;
            self.rewarded_ids.push(id);
        }
        fn reward_unmatched(&mut self, id: u64, _: f64) {
            self.unmatched += 1;
            self.rewarded_ids.push(id);
        }
        fn wants_q_delta(&self) -> bool {
            true
        }
        fn q_update(&mut self, _: f64, _: usize) {
            self.updates += 1;
        }
        fn wants_decisions(&self) -> bool {
            true
        }
        fn decision(&mut self, snap: &DecisionSnapshot) {
            self.decisions.push(snap.id);
        }
    }

    fn agent() -> Agent<ToyEnv> {
        let cfg = EngineConfig {
            eq_fifo_len: 4,
            ..EngineConfig::from(&ChromeConfig::default())
        };
        Agent::new(
            ToyEnv {
                matched: 20.0,
                unmatched: 10.0,
            },
            RlEngine::new(cfg),
        )
    }

    #[test]
    fn unsampled_access_selects_without_recording() {
        let mut a = agent();
        let d = a.on_access(None, &7, false, &(), &mut NoObserver);
        assert!(!d.sampled);
        assert!(MISS_ACTIONS.contains(&d.action));
        assert_eq!(a.engine.stats.sampled_accesses, 0);
        assert_eq!(a.engine.eq().total_entries(), 0);
    }

    #[test]
    fn observer_sees_match_and_training() {
        let mut a = agent();
        let mut obs = CountingObserver::default();
        a.on_access(Some(0), &42, false, &(), &mut obs);
        // same key again → the recorded action is matched
        a.on_access(Some(0), &42, true, &(), &mut obs);
        assert_eq!(obs.matched, 1);
        assert_eq!(a.engine.stats.matched_rewards, 1);
        // overflow the 4-deep FIFO with distinct keys → unmatched
        // rewards + q-updates flow through the observer
        for k in 100..110u64 {
            a.on_access(Some(0), &k, false, &(), &mut obs);
        }
        assert!(obs.unmatched > 0, "dead-block rewards observed");
        assert_eq!(obs.updates as u64, a.engine.stats.q_updates);
        // decision ids are issued in order and every reward settles a
        // decision the observer already saw
        assert!(obs.decisions.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(obs.decisions.len() as u64, a.engine.stats.decisions);
        for id in &obs.rewarded_ids {
            assert!(obs.decisions.contains(id), "reward for unseen id {id}");
        }
    }

    #[test]
    fn hit_actions_only_on_hits() {
        let mut a = agent();
        for k in 0..50u64 {
            let d = a.on_access(Some((k % 4) as usize), &k, true, &(), &mut NoObserver);
            assert!(HIT_ACTIONS.contains(&d.action), "{d:?}");
        }
    }

    #[test]
    fn legal_action_default_covers_paper_space() {
        assert_eq!(ToyEnv::legal_actions(false), &MISS_ACTIONS);
        assert_eq!(ToyEnv::legal_actions(true), &HIT_ACTIONS);
        assert!(ToyEnv::legal_actions(true).contains(&ACTION_HIT_EPVH));
    }

    #[test]
    fn bypass_stat_counts_only_miss_bypasses() {
        let mut a = agent();
        // drive the miss state's insert actions down so bypass wins
        let state = ([7u64, 0u64], 2);
        for action in [1, 2, 3] {
            for _ in 0..400 {
                a.engine.record(
                    0,
                    0,
                    &state.0[..state.1],
                    action,
                    false,
                    1,
                    0,
                    |_| -20.0,
                    false,
                );
            }
        }
        let before = a.engine.stats.bypasses;
        for _ in 0..20 {
            a.on_access(None, &7, false, &(), &mut NoObserver);
        }
        assert!(a.engine.stats.bypasses > before, "bypass learned");
    }
}
