//! The Evaluation Queue (paper §V-D): 64 per-sampled-set FIFOs that
//! delay reward assignment until an action's consequences are visible.

use std::collections::VecDeque;

/// Widest state feature vector any [`crate::env::Environment`] produces
/// (the engine's feature buffer is `[u64; 2]` across the hardware LLC
/// and the serving cache).
pub const MAX_FEATURES: usize = 2;

/// Inline state feature vector. Every sampled decision records its
/// state into the EQ and the SARSA step reads two states back per
/// overflow; with at most [`MAX_FEATURES`] features, a heap `Vec` here
/// is one allocation per decision plus one clone per training step on
/// the hottest policy path. Embedding the buffer makes [`EqEntry`]
/// plain `Copy` data, so the EQ never touches the allocator after
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EqState {
    buf: [u64; MAX_FEATURES],
    len: u8,
}

impl EqState {
    /// Capture `features` (at most [`MAX_FEATURES`] of them).
    ///
    /// # Panics
    ///
    /// Panics if the slice is wider than [`MAX_FEATURES`].
    #[inline]
    pub fn from_slice(features: &[u64]) -> Self {
        let mut buf = [0u64; MAX_FEATURES];
        buf[..features.len()].copy_from_slice(features);
        EqState {
            buf,
            len: features.len() as u8,
        }
    }

    /// The active features.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        &self.buf[..self.len as usize]
    }
}

impl std::ops::Deref for EqState {
    type Target = [u64];

    #[inline]
    fn deref(&self) -> &[u64] {
        self.as_slice()
    }
}

/// One recorded action awaiting (or holding) its reward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EqEntry {
    /// Decision id linking this entry to the audit trail — monotonic
    /// per engine, assigned at decision time.
    pub id: u64,
    /// State feature vector at decision time.
    pub state: EqState,
    /// Action index executed.
    pub action: usize,
    /// True if the action was triggered by a cache hit.
    pub trigger_hit: bool,
    /// Match key the action concerned — the line address in the
    /// hardware LLC (hashed to 16 bits in the hardware accounting, kept
    /// exact here for correctness), the key hash in a serving cache.
    pub key: u64,
    /// Issuing lane — core, tenant or shard — for concurrency-aware
    /// dead-block rewards.
    pub lane: usize,
    /// Assigned reward, if any yet.
    pub reward: Option<f64>,
}

/// A single FIFO of the EQ.
#[derive(Debug, Default)]
pub struct EqFifo {
    entries: VecDeque<EqEntry>,
}

/// The SARSA "next" state-action peeked at eviction time.
pub type NextSa = Option<(EqState, usize)>;

impl EqFifo {
    /// A FIFO with room for `capacity` entries (plus the one transient
    /// overflow slot `push` occupies before popping), so steady-state
    /// operation never reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        EqFifo {
            entries: VecDeque::with_capacity(capacity + 1),
        }
    }

    /// Find the newest unrewarded entry for `key` and return a mutable
    /// reference to it.
    pub fn find_unrewarded(&mut self, key: u64) -> Option<&mut EqEntry> {
        self.entries
            .iter_mut()
            .rev()
            .find(|e| e.key == key && e.reward.is_none())
    }

    /// Push a new entry; if the FIFO exceeds `capacity`, pop and return
    /// the oldest entry together with a peek at the new oldest
    /// (the SARSA "next" state-action).
    pub fn push(&mut self, entry: EqEntry, capacity: usize) -> Option<(EqEntry, NextSa)> {
        self.entries.push_back(entry);
        if self.entries.len() > capacity {
            let evicted = self.entries.pop_front().expect("nonempty");
            let next = self.entries.front().map(|e| (e.state, e.action));
            Some((evicted, next))
        } else {
            None
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The full Evaluation Queue: one FIFO per sampled set.
#[derive(Debug)]
pub struct EvalQueue {
    fifos: Vec<EqFifo>,
    capacity: usize,
}

impl EvalQueue {
    /// An EQ with `queues` FIFOs of `capacity` entries each.
    ///
    /// # Panics
    ///
    /// Panics if `queues` or `capacity` is zero.
    pub fn new(queues: usize, capacity: usize) -> Self {
        assert!(queues > 0 && capacity > 0, "degenerate EQ");
        EvalQueue {
            fifos: (0..queues)
                .map(|_| EqFifo::with_capacity(capacity))
                .collect(),
            capacity,
        }
    }

    /// Access the FIFO for sampled-set index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn fifo(&mut self, idx: usize) -> &mut EqFifo {
        &mut self.fifos[idx]
    }

    /// FIFO capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of FIFOs.
    pub fn num_queues(&self) -> usize {
        self.fifos.len()
    }

    /// Total entries currently held across all FIFOs.
    pub fn total_entries(&self) -> usize {
        self.fifos.iter().map(|f| f.len()).sum()
    }

    /// Mean per-FIFO occupancy as a fraction of capacity (the epoch
    /// telemetry's EQ-occupancy probe).
    pub fn mean_occupancy(&self) -> f64 {
        let slots = self.fifos.len() * self.capacity;
        if slots == 0 {
            0.0
        } else {
            self.total_entries() as f64 / slots as f64
        }
    }

    /// Storage bits for the Table III accounting: 58 bits per entry
    /// (state 33 + action 2 + reward 6 + hashed address 16 + trigger 1).
    pub fn storage_bits(&self) -> u64 {
        (self.num_queues() * self.capacity * 58) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: u64, action: usize) -> EqEntry {
        EqEntry {
            id: key,
            state: EqState::from_slice(&[1, 2]),
            action,
            trigger_hit: false,
            key,
            lane: 0,
            reward: None,
        }
    }

    #[test]
    fn push_under_capacity_returns_none() {
        let mut f = EqFifo::default();
        assert!(f.push(entry(1, 0), 3).is_none());
        assert!(f.push(entry(2, 0), 3).is_none());
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn overflow_evicts_oldest_and_reports_next() {
        let mut f = EqFifo::default();
        f.push(entry(1, 0), 2);
        f.push(entry(2, 1), 2);
        let (evicted, next) = f.push(entry(3, 2), 2).expect("overflow");
        assert_eq!(evicted.key, 1);
        let (next_state, next_action) = next.expect("peek");
        assert_eq!(next_action, 1);
        assert_eq!(next_state.as_slice(), &[1, 2]);
    }

    #[test]
    fn find_unrewarded_skips_rewarded() {
        let mut f = EqFifo::default();
        f.push(entry(5, 0), 8);
        f.find_unrewarded(5).expect("present").reward = Some(10.0);
        assert!(f.find_unrewarded(5).is_none());
    }

    #[test]
    fn find_unrewarded_prefers_newest() {
        let mut f = EqFifo::default();
        f.push(entry(5, 0), 8);
        f.push(entry(5, 3), 8);
        assert_eq!(f.find_unrewarded(5).expect("present").action, 3);
    }

    #[test]
    fn eval_queue_geometry_and_storage() {
        let eq = EvalQueue::new(64, 28);
        assert_eq!(eq.num_queues(), 64);
        assert_eq!(eq.capacity(), 28);
        // Table III: 12.7 KB
        let kb = eq.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((kb - 12.7).abs() < 0.05, "EQ = {kb} KB");
    }

    #[test]
    #[should_panic(expected = "degenerate EQ")]
    fn zero_queues_rejected() {
        let _ = EvalQueue::new(0, 28);
    }
}
