//! # chrome-core — the CHROME cache-management framework
//!
//! CHROME (HPCA 2024) is a concurrency-aware *holistic* last-level-cache
//! management framework driven by online reinforcement learning. It
//! unifies three classically separate mechanisms under one SARSA agent:
//!
//! * **replacement** — every cached block carries a 2-bit Eviction
//!   Priority Value (EPV); hits re-assign it, victims are the highest-EPV
//!   blocks;
//! * **bypassing** — on a miss the agent may decline to cache the
//!   incoming block entirely;
//! * **prefetch awareness** — demand and prefetch accesses carry
//!   distinct state signatures and earn distinct rewards.
//!
//! The agent observes a two-feature state (hashed PC signature +
//! physical page number), looks actions up in a feature-sliced,
//! sub-table-hashed [`qtable::QTable`], records recent actions in a
//! 64-FIFO [`eq::EvalQueue`], and assigns each action a reward that
//! folds in *system-level concurrency feedback*: whether the issuing
//! core is LLC-obstructed according to the C-AMAT model.
//!
//! # Example
//!
//! ```
//! use chrome_core::{Chrome, ChromeConfig};
//! use chrome_sim::{System, SimConfig};
//! use chrome_sim::trace::StridedSource;
//!
//! let cfg = SimConfig::small_test(1);
//! let traces = vec![Box::new(StridedSource::new(0, 64, 1 << 20, 2))
//!     as Box<dyn chrome_sim::trace::TraceSource>];
//! let policy = Box::new(Chrome::new(ChromeConfig::default()));
//! let mut sys = System::with_policy(cfg, traces, policy);
//! let results = sys.run(5_000, 500);
//! assert!(results.per_core[0].ipc() > 0.0);
//! ```

pub mod agent;
pub mod config;
pub mod engine;
pub mod env;
pub mod eq;
pub mod qtable;
pub mod rewards;

pub use agent::Chrome;
pub use config::{ChromeConfig, FeatureSelection};
pub use engine::{ChromeStats, EngineConfig, RlEngine};
pub use env::{Agent, Decision, DecisionObserver, DecisionSnapshot, Environment, NoObserver};
pub use rewards::RewardTable;

/// Build the paper's CHROME configuration.
pub fn chrome() -> Chrome {
    Chrome::new(ChromeConfig::default())
}

/// Build N-CHROME: the ablation without concurrency-aware feedback
/// (paper §VII-C).
pub fn n_chrome() -> Chrome {
    Chrome::new(ChromeConfig::n_chrome())
}
