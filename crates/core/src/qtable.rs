//! The feature-sliced, sub-table-hashed Q-table (paper §V-C).
//!
//! A monolithic table over all (PC, page) states would be enormous, so
//! CHROME partitions it per *feature*: each feature has its own
//! feature-action table, itself split into several sub-tables indexed by
//! different xor-hashes of the feature value. The Q-value of a
//! feature-action pair is the **sum** of its partial values; the
//! Q-value of a state-action pair is the **max** over its features —
//! every action is driven by the feature that speaks most strongly.
//!
//! Partial values are 16-bit fixed point (the hardware budget of Table
//! III: 2 features × 4 sub-tables × 2048 entries × 16 bits = 32 KB).

use chrome_sim::types::mix64;

/// Fixed-point scale: 1.0 == 64 units.
const SCALE: f64 = 64.0;

/// Total number of distinct actions (4 miss actions + 3 hit actions).
pub const NUM_ACTIONS: usize = 7;

/// The Q-table.
#[derive(Debug, Clone)]
pub struct QTable {
    /// `[feature][sub_table][row * NUM_ACTIONS + action]` partials.
    partials: Vec<Vec<Vec<i16>>>,
    rows: usize,
    sub_tables: usize,
}

impl QTable {
    /// Build a table for `features` features, each with `sub_tables`
    /// sub-tables of `entries` 16-bit slots (a slot is one
    /// feature-hash × action cell, so `entries / 7` hash rows — this is
    /// the Table III accounting, where 2048 entries/sub-table × 16 bits
    /// gives the 32 KB budget). Optimistically initialized so every
    /// feature-action Q starts at `q_init`.
    ///
    /// # Panics
    ///
    /// Panics on zero features, sub-tables or entries.
    pub fn new(features: usize, sub_tables: usize, entries: usize, q_init: f64) -> Self {
        assert!(
            features > 0 && sub_tables > 0 && entries > 0,
            "degenerate Q-table"
        );
        let rows = (entries / NUM_ACTIONS).max(1);
        let init_partial = (q_init * SCALE / sub_tables as f64).round() as i16;
        QTable {
            partials: vec![vec![vec![init_partial; rows * NUM_ACTIONS]; sub_tables]; features],
            rows,
            sub_tables,
        }
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.partials.len()
    }

    #[inline]
    fn slot(&self, sub: usize, feature_value: u64, action: usize) -> usize {
        // each sub-table hashes the feature with a different constant
        let hashed = mix64(feature_value ^ (0x9E37_79B9u64 << sub) ^ sub as u64);
        let idx = (hashed % self.rows as u64) as usize;
        idx * NUM_ACTIONS + action
    }

    /// Q-value of one feature-action pair: sum of its partials.
    pub fn q_feature(&self, feature: usize, value: u64, action: usize) -> f64 {
        debug_assert!(action < NUM_ACTIONS);
        let mut sum = 0i32;
        for sub in 0..self.sub_tables {
            sum += self.partials[feature][sub][self.slot(sub, value, action)] as i32;
        }
        sum as f64 / SCALE
    }

    /// Q-value of a state-action pair: max over the state's features
    /// (paper: `Q(S,A) = max(Q(f1,A), Q(f2,A))`).
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the feature count.
    pub fn q_state(&self, state: &[u64], action: usize) -> f64 {
        assert_eq!(state.len(), self.num_features(), "state arity mismatch");
        state
            .iter()
            .enumerate()
            .map(|(f, &v)| self.q_feature(f, v, action))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The legal action with the highest Q-value for `state`
    /// (ties break toward the lower action index).
    pub fn best_action(&self, state: &[u64], legal: &[usize]) -> usize {
        debug_assert!(!legal.is_empty());
        let mut best = legal[0];
        let mut best_q = f64::NEG_INFINITY;
        for &a in legal {
            let q = self.q_state(state, a);
            if q > best_q {
                best_q = q;
                best = a;
            }
        }
        best
    }

    /// SARSA update: move every feature's Q toward
    /// `reward + γ·q_next`, each by its own TD error scaled by α.
    pub fn update(&mut self, state: &[u64], action: usize, target: f64, alpha: f64) {
        for (f, &v) in state.iter().enumerate() {
            let q_f = self.q_feature(f, v, action);
            let td = alpha * (target - q_f);
            // distribute the TD step across the sub-tables so the sum
            // moves by `td`
            let step = (td * SCALE / self.sub_tables as f64).round() as i32;
            if step == 0 {
                // preserve learning for tiny updates: nudge one table
                let nudge = if td > 0.0 {
                    1
                } else if td < 0.0 {
                    -1
                } else {
                    0
                };
                if nudge != 0 {
                    let slot = self.slot(0, v, action);
                    let p = &mut self.partials[f][0][slot];
                    *p = p.saturating_add(nudge);
                }
                continue;
            }
            for sub in 0..self.sub_tables {
                let slot = self.slot(sub, v, action);
                let p = &mut self.partials[f][sub][slot];
                *p = (*p as i32 + step).clamp(i16::MIN as i32, i16::MAX as i32) as i16;
            }
        }
    }

    /// Storage in bits (for the Table III accounting).
    pub fn storage_bits(&self) -> u64 {
        (self.num_features() * self.sub_tables * self.rows * NUM_ACTIONS * 16) as u64
    }

    /// Mean magnitude of the table's Q mass, in Q units: the average
    /// absolute partial value scaled back by the sub-table count. Sub-
    /// tables hash the same feature differently, so exact per-state Q
    /// values cannot be enumerated; this flat-array proxy still tracks
    /// how far training has moved the table from initialization.
    pub fn mean_abs_q(&self) -> f64 {
        let mut sum = 0u64;
        let mut count = 0u64;
        for feature in &self.partials {
            for sub in feature {
                for &p in sub {
                    sum += p.unsigned_abs() as u64;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum as f64 * self.sub_tables as f64 / count as f64 / SCALE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> QTable {
        QTable::new(2, 4, 2048, 1.582)
    }

    #[test]
    fn optimistic_initialization() {
        let t = table();
        for a in 0..NUM_ACTIONS {
            let q = t.q_state(&[0x1234, 0x77], a);
            assert!((q - 1.582).abs() < 0.1, "q = {q}");
        }
    }

    #[test]
    fn update_moves_toward_target() {
        let mut t = table();
        let state = [42u64, 99u64];
        let before = t.q_state(&state, 3);
        for _ in 0..200 {
            t.update(&state, 3, 20.0, 0.05);
        }
        let after = t.q_state(&state, 3);
        assert!(after > before + 5.0, "{before} -> {after}");
        assert!(
            (after - 20.0).abs() < 2.0,
            "should converge near target, got {after}"
        );
    }

    #[test]
    fn negative_targets_learn_too() {
        let mut t = table();
        let state = [7u64, 8u64];
        for _ in 0..300 {
            t.update(&state, 0, -20.0, 0.05);
        }
        assert!(t.q_state(&state, 0) < -10.0);
    }

    #[test]
    fn best_action_respects_legality() {
        let mut t = table();
        let state = [1u64, 2u64];
        for _ in 0..300 {
            t.update(&state, 5, 30.0, 0.1);
        }
        // action 5 is best overall, but only miss actions 0..=3 are legal
        assert_eq!(t.best_action(&state, &[0, 1, 2, 3]), 0);
        assert_eq!(t.best_action(&state, &[4, 5, 6]), 5);
    }

    #[test]
    fn updates_do_not_leak_across_actions() {
        let mut t = table();
        let state = [11u64, 22u64];
        let q_other = t.q_state(&state, 1);
        for _ in 0..100 {
            t.update(&state, 2, 15.0, 0.1);
        }
        assert!((t.q_state(&state, 1) - q_other).abs() < 0.2);
    }

    #[test]
    fn different_states_mostly_independent() {
        let mut t = table();
        let a = [100u64, 200u64];
        let b = [101u64, 201u64];
        let before_b = t.q_state(&b, 0);
        for _ in 0..100 {
            t.update(&a, 0, -20.0, 0.1);
        }
        // hashing may collide in one sub-table but not all four
        assert!((t.q_state(&b, 0) - before_b).abs() < 5.0);
    }

    #[test]
    fn single_feature_table() {
        let t = QTable::new(1, 4, 2048, 1.0);
        assert_eq!(t.num_features(), 1);
        let q = t.q_state(&[5], 0);
        assert!((q - 1.0).abs() < 0.1);
    }

    #[test]
    fn storage_matches_table_iii() {
        let t = QTable::new(2, 4, 2048, 1.582);
        // Table III: 2 features × 4 sub-tables × 2048 16-bit entries
        // ≈ 32 KB. Slots quantize to whole rows of 7 actions.
        let bits = t.storage_bits();
        let kb = bits as f64 / 8.0 / 1024.0;
        assert!((kb - 32.0).abs() < 0.5, "Q-table = {kb} KB");
    }

    #[test]
    #[should_panic(expected = "state arity")]
    fn wrong_arity_panics() {
        let t = table();
        let _ = t.q_state(&[1], 0);
    }
}
