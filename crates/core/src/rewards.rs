//! The CHROME reward structure (paper §IV-C, Table II).
//!
//! Rewards are assigned to recorded actions in two situations:
//!
//! * the action's address is requested again within the EQ window —
//!   `R_AC` if the request hits (the action retained the block
//!   correctly) or `R_IN` if it misses (the action evicted/bypassed a
//!   block that was still needed), each split by whether the *current*
//!   request is a demand (`D`) or prefetch (`P`) access;
//! * the address is never requested within the window (the entry ages
//!   out of its EQ FIFO) — `R_AC-NR` if the action was the accurate one
//!   for a dead block (bypass on miss, highest EPV on hit) or `R_IN-NR`
//!   otherwise, each split by whether the issuing core was
//!   LLC-obstructed (`OB`) or not (`NOB`) at evaluation time.

/// The eight reward values (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewardTable {
    /// Accurate action, re-requested by a demand access: +20.
    pub ac_demand: f64,
    /// Accurate action, re-requested by a prefetch access: +5.
    pub ac_prefetch: f64,
    /// Inaccurate action, re-requested by a demand access: −20.
    pub in_demand: f64,
    /// Inaccurate action, re-requested by a prefetch access: −5.
    pub in_prefetch: f64,
    /// Accurate dead-block action, issuing core LLC-obstructed: +28.
    pub ac_nr_obstructed: f64,
    /// Accurate dead-block action, core not obstructed: +10.
    pub ac_nr_normal: f64,
    /// Inaccurate dead-block action, issuing core LLC-obstructed: −22.
    pub in_nr_obstructed: f64,
    /// Inaccurate dead-block action, core not obstructed: −10.
    pub in_nr_normal: f64,
}

impl Default for RewardTable {
    fn default() -> Self {
        RewardTable {
            ac_demand: 20.0,
            ac_prefetch: 5.0,
            in_demand: -20.0,
            in_prefetch: -5.0,
            ac_nr_obstructed: 28.0,
            ac_nr_normal: 10.0,
            in_nr_obstructed: -22.0,
            in_nr_normal: -10.0,
        }
    }
}

impl RewardTable {
    /// Reward for an action whose address was re-requested and **hit**:
    /// the action accurately kept the block.
    pub fn requested_hit(&self, request_is_prefetch: bool) -> f64 {
        if request_is_prefetch {
            self.ac_prefetch
        } else {
            self.ac_demand
        }
    }

    /// Reward for an action whose address was re-requested and
    /// **missed**: the action evicted or bypassed a live block.
    pub fn requested_miss(&self, request_is_prefetch: bool) -> f64 {
        if request_is_prefetch {
            self.in_prefetch
        } else {
            self.in_demand
        }
    }

    /// Reward for an action whose address was never re-requested within
    /// the EQ window. `accurate` is true when the action anticipated the
    /// dead block (bypass on a miss trigger, highest EPV on a hit
    /// trigger); `obstructed` is the issuing core's LLC-obstruction
    /// state (forced to `false` by N-CHROME).
    pub fn not_requested(&self, accurate: bool, obstructed: bool) -> f64 {
        match (accurate, obstructed) {
            (true, true) => self.ac_nr_obstructed,
            (true, false) => self.ac_nr_normal,
            (false, true) => self.in_nr_obstructed,
            (false, false) => self.in_nr_normal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_values() {
        let r = RewardTable::default();
        assert_eq!(r.requested_hit(false), 20.0);
        assert_eq!(r.requested_hit(true), 5.0);
        assert_eq!(r.requested_miss(false), -20.0);
        assert_eq!(r.requested_miss(true), -5.0);
        assert_eq!(r.not_requested(true, true), 28.0);
        assert_eq!(r.not_requested(true, false), 10.0);
        assert_eq!(r.not_requested(false, true), -22.0);
        assert_eq!(r.not_requested(false, false), -10.0);
    }

    #[test]
    fn demand_outweighs_prefetch() {
        // objective 2 (§IV-C): demand re-requests carry stronger signal
        let r = RewardTable::default();
        assert!(r.requested_hit(false) > r.requested_hit(true));
        assert!(r.requested_miss(false) < r.requested_miss(true));
    }

    #[test]
    fn obstruction_amplifies() {
        // objective 4 (§IV-C): obstruction magnifies both reward and
        // penalty for dead-block handling
        let r = RewardTable::default();
        assert!(r.not_requested(true, true) > r.not_requested(true, false));
        assert!(r.not_requested(false, true) < r.not_requested(false, false));
    }
}
