//! Property-based tests for CHROME's learning structures.

use chrome_core::eq::{EqEntry, EqFifo};
use chrome_core::qtable::{QTable, NUM_ACTIONS};
use proptest::prelude::*;

fn entry(line: u64, action: usize) -> EqEntry {
    EqEntry {
        state: vec![line, line >> 8],
        action,
        trigger_hit: action >= 4,
        line,
        core: 0,
        reward: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The Q-table's SARSA update converges toward a constant target
    /// from any starting configuration.
    #[test]
    fn qtable_converges(f1 in any::<u64>(), f2 in any::<u64>(),
                        action in 0usize..NUM_ACTIONS,
                        target in -30.0f64..30.0) {
        let mut t = QTable::new(2, 4, 2048, 1.582);
        let state = [f1, f2];
        for _ in 0..600 {
            t.update(&state, action, target, 0.1);
        }
        let q = t.q_state(&state, action);
        prop_assert!((q - target).abs() < 3.0, "q={q} target={target}");
    }

    /// Updates to one action never perturb another action of the same
    /// state by more than fixed-point noise.
    #[test]
    fn qtable_actions_isolated(f1 in any::<u64>(), f2 in any::<u64>(),
                               a in 0usize..NUM_ACTIONS, b in 0usize..NUM_ACTIONS) {
        prop_assume!(a != b);
        let mut t = QTable::new(2, 4, 2048, 1.0);
        let state = [f1, f2];
        let before = t.q_state(&state, b);
        for _ in 0..100 {
            t.update(&state, a, -25.0, 0.1);
        }
        prop_assert!((t.q_state(&state, b) - before).abs() < 0.2);
    }

    /// best_action always returns a legal action.
    #[test]
    fn best_action_is_legal(f1 in any::<u64>(), legal_mask in 1u8..127) {
        let t = QTable::new(1, 4, 2048, 1.0);
        let legal: Vec<usize> =
            (0..NUM_ACTIONS).filter(|&a| legal_mask & (1 << a) != 0).collect();
        prop_assume!(!legal.is_empty());
        let chosen = t.best_action(&[f1], &legal);
        prop_assert!(legal.contains(&chosen));
    }

    /// The EQ FIFO preserves order, respects capacity and reports
    /// evictions exactly once per overflow.
    #[test]
    fn eq_fifo_is_fifo(lines in prop::collection::vec(0u64..64, 1..120),
                       cap in 1usize..16) {
        let mut fifo = EqFifo::default();
        let mut evictions = Vec::new();
        for (i, &l) in lines.iter().enumerate() {
            if let Some((evicted, next)) = fifo.push(entry(l, i % NUM_ACTIONS), cap) {
                evictions.push(evicted.line);
                prop_assert!(next.is_some(), "FIFO nonempty after eviction");
            }
            prop_assert!(fifo.len() <= cap);
        }
        // evictions come out in insertion order
        let expected: Vec<u64> =
            lines.iter().copied().take(lines.len().saturating_sub(cap)).collect();
        prop_assert_eq!(evictions, expected);
    }

    /// `find_unrewarded` only ever returns entries with the searched
    /// line and no reward.
    #[test]
    fn eq_find_respects_filters(lines in prop::collection::vec(0u64..8, 1..60),
                                probe in 0u64..8) {
        let mut fifo = EqFifo::default();
        for (i, &l) in lines.iter().enumerate() {
            fifo.push(entry(l, i % NUM_ACTIONS), 64);
        }
        if let Some(e) = fifo.find_unrewarded(probe) {
            prop_assert_eq!(e.line, probe);
            prop_assert!(e.reward.is_none());
            e.reward = Some(1.0);
        }
    }
}
