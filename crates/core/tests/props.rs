//! Randomized invariant tests for CHROME's learning structures, driven
//! by a seeded in-repo RNG so every run is deterministic.

use chrome_core::eq::{EqEntry, EqFifo, EqState};
use chrome_core::qtable::{QTable, NUM_ACTIONS};
use chrome_sim::rng::SmallRng;

const CASES: usize = 64;

fn entry(line: u64, action: usize) -> EqEntry {
    EqEntry {
        id: line,
        state: EqState::from_slice(&[line, line >> 8]),
        action,
        trigger_hit: action >= 4,
        key: line,
        lane: 0,
        reward: None,
    }
}

/// The Q-table's SARSA update converges toward a constant target from
/// any starting configuration.
#[test]
fn qtable_converges() {
    let mut rng = SmallRng::seed_from_u64(0xC02E_0001);
    for case in 0..CASES {
        let state = [rng.next_u64(), rng.next_u64()];
        let action = rng.gen_range(0..NUM_ACTIONS);
        let target = rng.gen_f64() * 60.0 - 30.0;
        let mut t = QTable::new(2, 4, 2048, 1.582);
        for _ in 0..600 {
            t.update(&state, action, target, 0.1);
        }
        let q = t.q_state(&state, action);
        assert!(
            (q - target).abs() < 3.0,
            "case {case}: q={q} target={target}"
        );
    }
}

/// Updates to one action never perturb another action of the same
/// state by more than fixed-point noise.
#[test]
fn qtable_actions_isolated() {
    let mut rng = SmallRng::seed_from_u64(0xC02E_0002);
    for case in 0..CASES {
        let state = [rng.next_u64(), rng.next_u64()];
        let a = rng.gen_range(0..NUM_ACTIONS);
        let b = (a + rng.gen_range(1..NUM_ACTIONS)) % NUM_ACTIONS;
        let mut t = QTable::new(2, 4, 2048, 1.0);
        let before = t.q_state(&state, b);
        for _ in 0..100 {
            t.update(&state, a, -25.0, 0.1);
        }
        let after = t.q_state(&state, b);
        assert!(
            (after - before).abs() < 0.2,
            "case {case}: action {b} moved by update to {a}"
        );
    }
}

/// best_action always returns a legal action.
#[test]
fn best_action_is_legal() {
    let mut rng = SmallRng::seed_from_u64(0xC02E_0003);
    for case in 0..CASES {
        let f1 = rng.next_u64();
        let legal_mask = rng.gen_range(1u64..127) as u8;
        let t = QTable::new(1, 4, 2048, 1.0);
        let legal: Vec<usize> = (0..NUM_ACTIONS)
            .filter(|&a| legal_mask & (1 << a) != 0)
            .collect();
        assert!(!legal.is_empty());
        let chosen = t.best_action(&[f1], &legal);
        assert!(
            legal.contains(&chosen),
            "case {case}: illegal action {chosen}"
        );
    }
}

/// The EQ FIFO preserves order, respects capacity and reports
/// evictions exactly once per overflow.
#[test]
fn eq_fifo_is_fifo() {
    let mut rng = SmallRng::seed_from_u64(0xC02E_0004);
    for case in 0..CASES {
        let cap = rng.gen_range(1..16usize);
        let count = rng.gen_range(1..120usize);
        let lines: Vec<u64> = (0..count).map(|_| rng.gen_range(0u64..64)).collect();
        let mut fifo = EqFifo::default();
        let mut evictions = Vec::new();
        for (i, &l) in lines.iter().enumerate() {
            if let Some((evicted, next)) = fifo.push(entry(l, i % NUM_ACTIONS), cap) {
                evictions.push(evicted.key);
                assert!(next.is_some(), "case {case}: FIFO nonempty after eviction");
            }
            assert!(fifo.len() <= cap, "case {case}: over capacity");
        }
        // evictions come out in insertion order
        let expected: Vec<u64> = lines
            .iter()
            .copied()
            .take(lines.len().saturating_sub(cap))
            .collect();
        assert_eq!(evictions, expected, "case {case}: eviction order broken");
    }
}

/// `find_unrewarded` only ever returns entries with the searched line
/// and no reward.
#[test]
fn eq_find_respects_filters() {
    let mut rng = SmallRng::seed_from_u64(0xC02E_0005);
    for case in 0..CASES {
        let count = rng.gen_range(1..60usize);
        let probe = rng.gen_range(0u64..8);
        let mut fifo = EqFifo::default();
        for i in 0..count {
            fifo.push(entry(rng.gen_range(0u64..8), i % NUM_ACTIONS), 64);
        }
        if let Some(e) = fifo.find_unrewarded(probe) {
            assert_eq!(e.key, probe, "case {case}: wrong line");
            assert!(e.reward.is_none(), "case {case}: rewarded entry returned");
            e.reward = Some(1.0);
        }
    }
}
