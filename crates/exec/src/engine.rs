//! The work-stealing grid engine.
//!
//! [`run_grid`] executes a declarative list of [`CellSpec`]s across
//! `jobs` OS threads. Cells are distributed round-robin onto per-worker
//! deques; an idle worker first drains its own queue, then steals from
//! the back of its siblings'. Because cells are mutually independent
//! and results are written into a slot keyed by input index, assembly
//! order — and therefore every output table — is identical at any
//! thread count.
//!
//! Each cell attempt runs under [`std::panic::catch_unwind`]: a panic
//! anywhere inside a cell is converted into a recorded failure, retried
//! up to `retries` more times with capped exponential backoff, and
//! never takes down the run. With a manifest configured, every terminal
//! cell state is durably appended (fsync per record); `resume: true`
//! pre-fills outcomes for cells whose spec hash already has an `ok`
//! record, so a killed run continues where it died.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

use crate::json::{self, JsonValue};
use crate::manifest::{self, payload_digest, ManifestRecord, ManifestWriter};
use crate::progress::{self, Event};
use crate::spec::CellSpec;

/// Serialization between cell results and their manifest payloads.
///
/// `encode` must emit a single-line JSON value whose parse/`decode`
/// round-trip is lossless — resumed cells feed decoded payloads into
/// the same assembly code as freshly executed ones, and the determinism
/// guarantee covers both paths.
pub trait Codec<T> {
    /// Encode a result as compact single-line JSON.
    fn encode(&self, value: &T) -> String;
    /// Decode a manifest payload; `None` rejects the record (the cell
    /// re-runs instead of resuming).
    fn decode(&self, payload: &JsonValue) -> Option<T>;
    /// Artifact paths the result references, recorded in the manifest.
    fn artifacts(&self, _value: &T) -> Vec<String> {
        Vec::new()
    }
}

/// A codec for plain-string results (exec's own tests, simple grids).
#[derive(Debug, Clone, Copy, Default)]
pub struct StringCodec;

impl Codec<String> for StringCodec {
    fn encode(&self, value: &String) -> String {
        format!("\"{}\"", json::escape(value))
    }

    fn decode(&self, payload: &JsonValue) -> Option<String> {
        payload.as_str().map(str::to_string)
    }
}

/// Engine configuration (CLI: `--jobs N --retries K --resume`).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` means available parallelism.
    pub jobs: usize,
    /// Extra attempts after a first panicking one (0 = fail fast).
    pub retries: u32,
    /// Base backoff before a retry; doubles per attempt.
    pub backoff_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Checkpoint manifest path; `None` disables checkpointing.
    pub manifest_path: Option<PathBuf>,
    /// Skip cells with an `ok` manifest record instead of re-running.
    pub resume: bool,
    /// Paint live progress/ETA to stderr.
    pub progress: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 0,
            retries: 2,
            backoff_ms: 50,
            backoff_cap_ms: 2_000,
            manifest_path: None,
            resume: false,
            progress: false,
        }
    }
}

impl EngineConfig {
    /// The effective worker count for `n` schedulable cells.
    #[must_use]
    pub fn effective_jobs(&self, n: usize) -> usize {
        let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let jobs = if self.jobs == 0 { auto } else { self.jobs };
        jobs.clamp(1, n.max(1))
    }
}

/// Terminal state of one cell after the grid ran.
#[derive(Debug, Clone)]
pub struct CellOutcome<T> {
    /// The spec this outcome belongs to.
    pub spec: CellSpec,
    /// The result, when the cell succeeded (freshly or via resume).
    pub result: Option<T>,
    /// Panic payload of the final failed attempt.
    pub error: Option<String>,
    /// Attempts spent (resumed cells report the manifest's count).
    pub attempts: u32,
    /// Wall milliseconds across attempts (manifest value when resumed).
    pub duration_ms: u64,
    /// Whether the result was restored from the manifest, not executed.
    pub resumed: bool,
}

impl<T> CellOutcome<T> {
    /// Whether the cell has a usable result.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.result.is_some()
    }

    /// Borrow the result if present.
    #[must_use]
    pub fn value(&self) -> Option<&T> {
        self.result.as_ref()
    }
}

/// What a whole grid run produced.
#[derive(Debug)]
pub struct GridReport<T> {
    /// One outcome per input spec, in input order.
    pub outcomes: Vec<CellOutcome<T>>,
    /// Cells actually executed this run.
    pub executed: usize,
    /// Cells restored from the manifest.
    pub resumed: usize,
    /// Cells that failed permanently (all attempts panicked).
    pub failed: usize,
    /// Wall milliseconds for the whole grid.
    pub wall_ms: u64,
}

impl<T> GridReport<T> {
    /// Labels + errors of permanently failed cells, for summaries.
    #[must_use]
    pub fn failures(&self) -> Vec<(String, String)> {
        self.outcomes
            .iter()
            .filter(|o| !o.ok())
            .map(|o| {
                (
                    o.spec.label(),
                    o.error.clone().unwrap_or_else(|| "unknown".to_string()),
                )
            })
            .collect()
    }
}

thread_local! {
    static IN_CELL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static PANIC_FILTER: Once = Once::new();

/// Install (once, process-wide) a panic hook that suppresses the
/// default backtrace spew for panics happening inside a cell — those
/// are caught, recorded and retried; the payload ends up in the
/// manifest and the failure summary instead. Panics outside cells keep
/// the previous hook's behavior.
fn install_panic_filter() {
    PANIC_FILTER.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !IN_CELL.with(std::cell::Cell::get) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn backoff(cfg: &EngineConfig, attempt: u32) -> Duration {
    let ms = cfg
        .backoff_ms
        .saturating_mul(1u64 << (attempt - 1).min(16))
        .min(cfg.backoff_cap_ms);
    Duration::from_millis(ms)
}

/// Execute a grid of cells and return one outcome per spec, in spec
/// order. See the module docs for scheduling, fault-isolation and
/// checkpoint semantics.
///
/// # Errors
///
/// Returns an error only for manifest I/O failures (open/append/fsync);
/// cell panics are recorded in the outcomes, never propagated.
///
/// # Panics
///
/// Panics if internal locks are poisoned (a worker panicked outside a
/// cell, which the engine itself does not do).
pub fn run_grid<T, C, F>(
    specs: Vec<CellSpec>,
    cfg: &EngineConfig,
    codec: &C,
    run: F,
) -> io::Result<GridReport<T>>
where
    T: Send,
    C: Codec<T> + Sync + ?Sized,
    F: Fn(&CellSpec) -> T + Sync,
{
    install_panic_filter();
    let started = Instant::now();
    let n = specs.len();

    // Resume: load prior records before opening (a fresh open truncates).
    let mut prior: HashMap<String, ManifestRecord> = HashMap::new();
    if cfg.resume {
        if let Some(path) = &cfg.manifest_path {
            for rec in manifest::load(path)? {
                if rec.is_ok() {
                    prior.insert(rec.spec_hash.clone(), rec);
                }
            }
        }
    }
    let writer = match &cfg.manifest_path {
        Some(path) => Some(ManifestWriter::open(path, cfg.resume)?),
        None => None,
    };

    let mut outcomes: Vec<Option<CellOutcome<T>>> = Vec::with_capacity(n);
    let mut pending: Vec<usize> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let restored = prior.get(&spec.hash_hex()).and_then(|rec| {
            let value = codec.decode(rec.payload.as_ref()?)?;
            Some(CellOutcome {
                spec: spec.clone(),
                result: Some(value),
                error: None,
                attempts: rec.attempts,
                duration_ms: rec.duration_ms,
                resumed: true,
            })
        });
        match restored {
            Some(o) => outcomes.push(Some(o)),
            None => {
                outcomes.push(None);
                pending.push(i);
            }
        }
    }
    let resumed = n - pending.len();

    let workers = cfg.effective_jobs(pending.len());
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (k, &idx) in pending.iter().enumerate() {
        queues[k % workers]
            .lock()
            .expect("queue lock")
            .push_back(idx);
    }

    let results: Mutex<Vec<Option<CellOutcome<T>>>> = Mutex::new(outcomes);
    let io_error: Mutex<Option<io::Error>> = Mutex::new(None);
    let (tx, rx) = mpsc::channel::<Event>();

    std::thread::scope(|scope| {
        if cfg.progress {
            let scheduled = pending.len();
            scope.spawn(move || progress::run_reporter(scheduled, resumed, &rx));
        } else {
            drop(rx);
        }
        for w in 0..workers {
            let tx = tx.clone();
            let queues = &queues;
            let specs = &specs;
            let results = &results;
            let io_error = &io_error;
            let writer = writer.as_ref();
            let run = &run;
            scope.spawn(move || loop {
                if io_error.lock().expect("io error lock").is_some() {
                    break;
                }
                let next = queues[w]
                    .lock()
                    .expect("queue lock")
                    .pop_front()
                    .or_else(|| {
                        (0..queues.len())
                            .filter(|&o| o != w)
                            .find_map(|o| queues[o].lock().expect("queue lock").pop_back())
                    });
                let Some(idx) = next else { break };
                let spec = &specs[idx];
                let _ = tx.send(Event::Started);
                let t0 = Instant::now();
                let max_attempts = cfg.retries.saturating_add(1);
                let mut attempts = 0u32;
                let mut error = String::new();
                let mut value: Option<T> = None;
                while attempts < max_attempts {
                    attempts += 1;
                    IN_CELL.with(|c| c.set(true));
                    let caught = panic::catch_unwind(AssertUnwindSafe(|| run(spec)));
                    IN_CELL.with(|c| c.set(false));
                    match caught {
                        Ok(v) => {
                            value = Some(v);
                            break;
                        }
                        Err(payload) => {
                            error = panic_message(payload.as_ref());
                            if attempts < max_attempts {
                                let _ = tx.send(Event::Retried(spec.label(), attempts + 1));
                                std::thread::sleep(backoff(cfg, attempts));
                            }
                        }
                    }
                }
                let duration_ms = t0.elapsed().as_millis() as u64;
                if let Some(writer) = writer {
                    let (status, digest, payload, artifacts) = match &value {
                        Some(v) => {
                            let encoded = codec.encode(v);
                            let parsed = json::parse(&encoded);
                            debug_assert!(parsed.is_some(), "codec produced invalid JSON");
                            let text = parsed
                                .as_ref()
                                .map_or_else(|| "null".to_string(), JsonValue::render);
                            ("ok", payload_digest(&text), parsed, codec.artifacts(v))
                        }
                        None => ("failed", String::new(), None, Vec::new()),
                    };
                    let rec = ManifestRecord {
                        spec_hash: spec.hash_hex(),
                        experiment: spec.experiment.clone(),
                        workload: spec.workload.clone(),
                        scheme: spec.scheme.clone(),
                        status: status.to_string(),
                        attempts,
                        duration_ms,
                        digest,
                        error: error.clone(),
                        artifacts,
                        payload,
                    };
                    if let Err(e) = writer.append(&rec) {
                        io_error.lock().expect("io error lock").get_or_insert(e);
                        break;
                    }
                }
                let ok = value.is_some();
                results.lock().expect("results lock")[idx] = Some(CellOutcome {
                    spec: spec.clone(),
                    result: value,
                    error: if ok { None } else { Some(error) },
                    attempts,
                    duration_ms,
                    resumed: false,
                });
                let _ = tx.send(Event::Finished {
                    label: spec.label(),
                    ok,
                    duration_ms,
                });
            });
        }
        drop(tx);
    });

    if let Some(e) = io_error.into_inner().expect("io error lock") {
        return Err(e);
    }
    let outcomes: Vec<CellOutcome<T>> = results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|o| o.expect("every scheduled cell reaches a terminal state"))
        .collect();
    let failed = outcomes.iter().filter(|o| !o.ok()).count();
    let executed = n - resumed;
    Ok(GridReport {
        outcomes,
        executed,
        resumed,
        failed,
        wall_ms: started.elapsed().as_millis() as u64,
    })
}
