//! A minimal hand-rolled JSON reader/writer for the run manifest and
//! cell-result payloads. The workspace deliberately carries no registry
//! dependencies; the schemas involved are small, fixed, and written by
//! us, so a ~150-line recursive-descent parser covers them fully.

use std::fmt::Write as _;

/// A parsed JSON value. Numbers are kept as `f64` plus the raw text so
/// integer payloads round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; `.1` is the source text for lossless integer reads.
    Num(f64, String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v, _) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `u64`, parsed losslessly from the source text.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(_, raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Re-render as compact JSON (used to carry raw payloads through).
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            JsonValue::Null => "null".to_string(),
            JsonValue::Bool(b) => b.to_string(),
            JsonValue::Num(_, raw) => raw.clone(),
            JsonValue::Str(s) => format!("\"{}\"", escape(s)),
            JsonValue::Arr(items) => {
                let parts: Vec<String> = items.iter().map(JsonValue::render).collect();
                format!("[{}]", parts.join(","))
            }
            JsonValue::Obj(fields) => {
                let parts: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", escape(k), v.render()))
                    .collect();
                format!("{{{}}}", parts.join(","))
            }
        }
    }
}

/// Escape a string for embedding in JSON.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number that parses back to the identical
/// bits: shortest round-trip form; non-finite values become `0`.
#[must_use]
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Parse one JSON document. Returns `None` on any syntax error or
/// trailing garbage (a torn manifest line from a killed run).
#[must_use]
pub fn parse(text: &str) -> Option<JsonValue> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(v)
    } else {
        None
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(b: &[u8], pos: &mut usize, c: u8) -> Option<()> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'{' => parse_obj(b, pos),
        b'[' => parse_arr(b, pos),
        b'"' => parse_str(b, pos).map(JsonValue::Str),
        b't' => parse_lit(b, pos, "true").map(|()| JsonValue::Bool(true)),
        b'f' => parse_lit(b, pos, "false").map(|()| JsonValue::Bool(false)),
        b'n' => parse_lit(b, pos, "null").map(|()| JsonValue::Null),
        _ => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Option<()> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(())
    } else {
        None
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    let start = *pos;
    if *pos < b.len() && (b[*pos] == b'-' || b[*pos] == b'+') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'-' | b'+') {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&b[start..*pos]).ok()?;
    let v: f64 = raw.parse().ok()?;
    Some(JsonValue::Num(v, raw.to_string()))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Option<String> {
    eat(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match *b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match *b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // advance one UTF-8 scalar
                let s = std::str::from_utf8(&b[*pos..]).ok()?;
                let c = s.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    eat(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match *b.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(JsonValue::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    eat(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        eat(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match *b.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(JsonValue::Obj(fields));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":1,"b":[true,null,"x\ny"],"c":{"d":-2.5e1}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], JsonValue::Null);
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-25.0));
    }

    #[test]
    fn rejects_torn_lines() {
        assert!(parse(r#"{"a":1,"b""#).is_none());
        assert!(parse(r#"{"a":1} trailing"#).is_none());
        assert!(parse("").is_none());
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for v in [0.1, 1.0 / 3.0, 12345.6789e-3, f64::MIN_POSITIVE, 1e300] {
            let parsed = parse(&num(v)).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits());
        }
        assert_eq!(num(f64::NAN), "0");
    }

    #[test]
    fn large_u64_roundtrips() {
        let raw = u64::MAX.to_string();
        let v = parse(&raw).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn render_roundtrips() {
        let src = r#"{"a":1,"b":[true,null,"x y"],"c":{"d":-25}}"#;
        let v = parse(src).unwrap();
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn escape_controls() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
