//! # chrome-exec — parallel experiment execution engine
//!
//! The scheduling substrate for the reproduction's experiment grids.
//! Experiments declare their work as a flat list of [`CellSpec`]s —
//! `(workload, scheme, cores, instructions, seed)` cells, the natural
//! schedulable unit of a simulation campaign — and [`run_grid`]
//! executes them across worker threads with:
//!
//! * **deterministic results** — each cell's trace seed derives from a
//!   stable content hash of its spec ([`CellSpec::workload_seed`]), and
//!   outcomes are returned in input order, so assembled tables are
//!   bit-identical at any `--jobs` count;
//! * **fault isolation + retry** — every attempt runs under
//!   `catch_unwind`; panics become recorded failures, retried with
//!   capped backoff, and a permanently failed cell never aborts the
//!   remaining grid;
//! * **checkpoint/resume** — one fsynced JSONL [`manifest`] record per
//!   completed cell; `resume` skips cells whose spec hash already has
//!   an `ok` record and feeds the stored payload back into assembly;
//! * **progress/ETA** — a live stderr line with done/running/failed
//!   counts and per-cell timing.
//!
//! The crate is dependency-free and knows nothing about the simulator:
//! results are any `T: Send` plus a [`Codec`] that (de)serializes them
//! for the manifest. `chrome-bench` supplies the simulation cells.

pub mod engine;
pub mod json;
pub mod manifest;
mod progress;
pub mod spec;

pub use engine::{run_grid, CellOutcome, Codec, EngineConfig, GridReport, StringCodec};
pub use json::JsonValue;
pub use manifest::{load as load_manifest, ManifestRecord, ManifestWriter};
pub use spec::{fnv1a64, splitmix64, workload_seed, CellSpec};
