//! The run manifest: a JSONL checkpoint log with one fsynced record per
//! completed cell. `--resume` replays it to skip finished work after a
//! killed run; the torn final line such a kill can leave behind is
//! detected (it fails to parse) and ignored.
//!
//! Record schema (one object per line):
//!
//! ```json
//! {"spec_hash":"<hex16>","experiment":"...","workload":"...",
//!  "scheme":"...","status":"ok|failed","attempts":1,"duration_ms":123,
//!  "digest":"<hex16>","error":"","artifacts":["..."],"payload":{...}}
//! ```
//!
//! `payload` is the codec-encoded cell result (only for `status:"ok"`);
//! `digest` is FNV-1a 64 of the encoded payload text, the quantity the
//! determinism tests compare across thread counts.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead as _, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json::{self, JsonValue};
use crate::spec::fnv1a64;

/// One parsed manifest record.
#[derive(Debug, Clone)]
pub struct ManifestRecord {
    /// [`crate::CellSpec::hash_hex`] of the cell this records.
    pub spec_hash: String,
    /// Owning experiment (informational; the hash is the key).
    pub experiment: String,
    /// Workload / mix label.
    pub workload: String,
    /// Scheme name.
    pub scheme: String,
    /// `"ok"` or `"failed"`.
    pub status: String,
    /// Attempts spent (1 = first try succeeded; >1 records retries).
    pub attempts: u32,
    /// Wall-clock milliseconds spent executing (across attempts).
    pub duration_ms: u64,
    /// FNV-1a 64 hex of the encoded payload (empty when failed).
    pub digest: String,
    /// Panic payload of the last attempt (empty when ok).
    pub error: String,
    /// Artifact files the cell exported (telemetry, traces, ...).
    pub artifacts: Vec<String>,
    /// The encoded cell result (present when ok).
    pub payload: Option<JsonValue>,
}

impl ManifestRecord {
    /// Whether this record certifies a completed cell.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    fn from_json(v: &JsonValue) -> Option<ManifestRecord> {
        let s = |k: &str| v.get(k).and_then(JsonValue::as_str).map(str::to_string);
        Some(ManifestRecord {
            spec_hash: s("spec_hash")?,
            experiment: s("experiment")?,
            workload: s("workload")?,
            scheme: s("scheme")?,
            status: s("status")?,
            attempts: v.get("attempts")?.as_u64()? as u32,
            duration_ms: v.get("duration_ms")?.as_u64()?,
            digest: s("digest")?,
            error: s("error")?,
            artifacts: v
                .get("artifacts")?
                .as_arr()?
                .iter()
                .filter_map(|a| a.as_str().map(str::to_string))
                .collect(),
            payload: v.get("payload").cloned(),
        })
    }

    fn render(&self) -> String {
        let artifacts: Vec<String> = self
            .artifacts
            .iter()
            .map(|a| format!("\"{}\"", json::escape(a)))
            .collect();
        let payload = self
            .payload
            .as_ref()
            .map_or_else(|| "null".to_string(), JsonValue::render);
        format!(
            "{{\"spec_hash\":\"{}\",\"experiment\":\"{}\",\"workload\":\"{}\",\
             \"scheme\":\"{}\",\"status\":\"{}\",\"attempts\":{},\
             \"duration_ms\":{},\"digest\":\"{}\",\"error\":\"{}\",\
             \"artifacts\":[{}],\"payload\":{}}}",
            json::escape(&self.spec_hash),
            json::escape(&self.experiment),
            json::escape(&self.workload),
            json::escape(&self.scheme),
            json::escape(&self.status),
            self.attempts,
            self.duration_ms,
            json::escape(&self.digest),
            json::escape(&self.error),
            artifacts.join(","),
            payload,
        )
    }
}

/// Digest of an encoded payload: FNV-1a 64 as fixed-width hex.
#[must_use]
pub fn payload_digest(encoded: &str) -> String {
    format!("{:016x}", fnv1a64(encoded.as_bytes()))
}

/// Append-only manifest writer. Every [`ManifestWriter::append`] writes
/// one line and fsyncs it, so a record present in the file is durable —
/// a killed run loses at most the (torn, hence ignored) final line.
#[derive(Debug)]
pub struct ManifestWriter {
    file: Mutex<File>,
    path: PathBuf,
}

impl ManifestWriter {
    /// Open for a fresh run (truncates) or a resumed one (appends).
    /// Creates parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory or file creation.
    pub fn open(path: &Path, resume: bool) -> io::Result<ManifestWriter> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(resume)
            .write(true)
            .truncate(!resume)
            .open(path)?;
        Ok(ManifestWriter {
            file: Mutex::new(file),
            path: path.to_path_buf(),
        })
    }

    /// The manifest's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durably append one record (write + fsync under the lock).
    ///
    /// # Errors
    ///
    /// Propagates write/fsync errors.
    ///
    /// # Panics
    ///
    /// Panics if the writer mutex was poisoned.
    pub fn append(&self, rec: &ManifestRecord) -> io::Result<()> {
        let line = rec.render();
        let mut f = self.file.lock().expect("manifest lock");
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_data()
    }
}

/// Load every complete record from a manifest file. Lines that fail to
/// parse (torn tail from a killed run, manual edits) are skipped. A
/// missing file is an empty manifest, not an error.
///
/// # Errors
///
/// Propagates I/O errors other than `NotFound`.
pub fn load(path: &Path) -> io::Result<Vec<ManifestRecord>> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rec) = json::parse(&line)
            .as_ref()
            .and_then(ManifestRecord::from_json)
        {
            out.push(rec);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(hash: &str, status: &str) -> ManifestRecord {
        ManifestRecord {
            spec_hash: hash.to_string(),
            experiment: "fig06".into(),
            workload: "mcf".into(),
            scheme: "LRU".into(),
            status: status.into(),
            attempts: 1,
            duration_ms: 42,
            digest: "00ff".into(),
            error: if status == "ok" {
                String::new()
            } else {
                "boom \"quoted\"".into()
            },
            artifacts: vec!["results/a.csv".into()],
            payload: json::parse(r#"{"ipc":[1.5,2.25]}"#),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "chrome_exec_manifest_{}_{name}",
            std::process::id()
        ))
    }

    #[test]
    fn roundtrip_through_file() {
        let path = tmp("roundtrip");
        let w = ManifestWriter::open(&path, false).unwrap();
        w.append(&rec("aa", "ok")).unwrap();
        w.append(&rec("bb", "failed")).unwrap();
        let recs = load(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].is_ok());
        assert_eq!(recs[0].spec_hash, "aa");
        assert_eq!(
            recs[0]
                .payload
                .as_ref()
                .unwrap()
                .get("ipc")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            2
        );
        assert!(!recs[1].is_ok());
        assert_eq!(recs[1].error, "boom \"quoted\"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = tmp("torn");
        let w = ManifestWriter::open(&path, false).unwrap();
        w.append(&rec("aa", "ok")).unwrap();
        // simulate a kill mid-write: a half line with no newline
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"spec_hash\":\"bb\",\"exper").unwrap();
        drop(f);
        let recs = load(&path).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].spec_hash, "aa");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fresh_open_truncates_resume_appends() {
        let path = tmp("trunc");
        let w = ManifestWriter::open(&path, false).unwrap();
        w.append(&rec("aa", "ok")).unwrap();
        drop(w);
        let w = ManifestWriter::open(&path, true).unwrap();
        w.append(&rec("bb", "ok")).unwrap();
        drop(w);
        assert_eq!(load(&path).unwrap().len(), 2);
        let w = ManifestWriter::open(&path, false).unwrap();
        drop(w);
        assert!(load(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty() {
        assert!(load(Path::new("/nonexistent/manifest.jsonl"))
            .unwrap()
            .is_empty());
    }
}
