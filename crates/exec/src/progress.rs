//! Live progress/ETA reporting for a running grid, fed from the
//! engine's event channel. One sticky stderr line on a TTY; throttled
//! plain lines otherwise (CI logs).

use std::io::{IsTerminal as _, Write as _};
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

/// Events the workers feed the reporter.
#[derive(Debug)]
pub(crate) enum Event {
    /// A cell started executing.
    Started,
    /// A cell attempt panicked and will be retried (`label`, attempt).
    Retried(String, u32),
    /// A cell finished (label reported on failure only).
    Finished {
        /// Cell label, for the failure line.
        label: String,
        /// Whether the cell ultimately succeeded.
        ok: bool,
        /// Wall milliseconds the cell took (all attempts).
        duration_ms: u64,
    },
}

/// Consume events until every sender is dropped, painting progress to
/// stderr. `total` counts scheduled cells (resumed cells are excluded —
/// they are reported once up front).
pub(crate) fn run_reporter(total: usize, resumed: usize, rx: &Receiver<Event>) {
    let tty = std::io::stderr().is_terminal();
    let start = Instant::now();
    let mut done = 0usize;
    let mut failed = 0usize;
    let mut running = 0usize;
    let mut last_paint = Instant::now() - Duration::from_secs(10);
    let mut cell_ms_total = 0u64;
    if resumed > 0 {
        eprintln!("[exec] resume: {resumed} cells already in manifest, {total} to run");
    }
    let paint = |done: usize,
                 failed: usize,
                 running: usize,
                 cell_ms: u64,
                 force: bool,
                 last: &mut Instant| {
        let min_gap = if tty {
            Duration::from_millis(200)
        } else {
            Duration::from_secs(2)
        };
        if !force && last.elapsed() < min_gap {
            return;
        }
        *last = Instant::now();
        let elapsed = start.elapsed().as_secs_f64();
        let eta = if done > 0 {
            let remaining = total.saturating_sub(done);
            format!("{:.0}s", elapsed / done as f64 * remaining as f64)
        } else {
            "?".to_string()
        };
        let mean = if done > 0 {
            cell_ms as f64 / done as f64 / 1000.0
        } else {
            0.0
        };
        let line = format!(
            "[exec] {done}/{total} done | {running} running | {failed} failed | \
             {mean:.2}s/cell | {elapsed:.1}s elapsed | eta {eta}"
        );
        if tty {
            eprint!("\r{line:<100}");
            let _ = std::io::stderr().flush();
        } else {
            eprintln!("{line}");
        }
    };
    while let Ok(ev) = rx.recv() {
        match ev {
            Event::Started => running += 1,
            Event::Retried(label, attempt) => {
                if tty {
                    eprintln!();
                }
                eprintln!("[exec] retrying {label} (attempt {attempt})");
            }
            Event::Finished {
                label,
                ok,
                duration_ms,
            } => {
                running = running.saturating_sub(1);
                done += 1;
                cell_ms_total += duration_ms;
                if !ok {
                    failed += 1;
                    if tty {
                        eprintln!();
                    }
                    eprintln!("[exec] FAILED {label}");
                }
            }
        }
        paint(done, failed, running, cell_ms_total, false, &mut last_paint);
    }
    if total > 0 {
        paint(done, failed, running, cell_ms_total, true, &mut last_paint);
        if tty {
            eprintln!();
        }
    }
}
