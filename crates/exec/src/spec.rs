//! Declarative simulation-cell specs and their stable content hashes.
//!
//! A [`CellSpec`] names everything that determines a cell's output:
//! experiment, workload (or `+`-joined mix), scheme, system size,
//! instruction budget, base seed and prefetcher configuration. Two
//! hashes derive from it:
//!
//! * [`CellSpec::spec_hash`] — over every field; the checkpoint key in
//!   the run manifest. Any change to the cell's definition changes the
//!   hash, so `--resume` never reuses a stale result.
//! * [`CellSpec::workload_seed`] — over the workload-identity fields
//!   only (`workload`, `cores`, `seed`). All schemes evaluated on the
//!   same workload must replay the *same* trace, so the trace-generator
//!   seed must not depend on the scheme (or budget) under test.
//!
//! Both use FNV-1a over a canonical `key=value` rendering — stable
//! across platforms, compilers and runs, unlike `std`'s `Hasher`s.

/// FNV-1a 64-bit over a byte string. Stable by construction.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer — diffuses an FNV hash into a well-mixed seed.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The deterministic trace-generator seed for a workload identity.
/// Free-function form of [`CellSpec::workload_seed`] so trace tooling
/// can derive grid-matching generator seeds without building a full
/// spec.
#[must_use]
pub fn workload_seed(workload: &str, cores: u32, seed: u64) -> u64 {
    let identity = format!("workload={workload};cores={cores};seed={seed}");
    splitmix64(fnv1a64(identity.as_bytes()))
}

/// One schedulable simulation cell: `(workload, scheme, cores,
/// instructions, seed)` plus the knobs the experiments vary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// Owning experiment (e.g. `"fig06_4core_spec"`); part of the
    /// checkpoint key so equal cells from different experiments never
    /// alias in a shared manifest or artifact directory.
    pub experiment: String,
    /// Workload name, or a `+`-joined heterogeneous mix
    /// (e.g. `"mcf+libquantum"`).
    pub workload: String,
    /// Replacement-scheme name as understood by the policy registry.
    pub scheme: String,
    /// Cores in the simulated system.
    pub cores: u32,
    /// Measured instructions per core.
    pub instructions: u64,
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Base seed; the effective trace seed is [`CellSpec::workload_seed`].
    pub seed: u64,
    /// Prefetcher-configuration tag (e.g. `"paper"`, `"ipcp"`).
    pub prefetch: String,
    /// Track evicted-unused block outcomes (Fig. 2/6/9).
    pub track_unused: bool,
    /// Record the epoch-resolved telemetry series (Table VII).
    pub record_epochs: bool,
    /// Content hash (fixed-width hex) of the trace file backing this
    /// cell, empty when traces come from the live generator. File-backed
    /// cells mix the trace content into the spec hash, so `--resume`
    /// never pairs a checkpoint with a different trace revision; the
    /// empty default keeps generator-backed hashes (and thus existing
    /// manifests) unchanged.
    pub trace: String,
    /// Representative-interval sampling spec (`k=<k>,ramp=<n>` form),
    /// empty for full simulation. Folded into the spec hash the same
    /// conditional way as `trace`, so sampled and full runs of the same
    /// cell never share a checkpoint and full-run hashes are unchanged.
    /// Must not contain `;` (the canonical-form field separator).
    pub sampling: String,
    /// Canonical mesh-NoC configuration (`slices=..,hop=..,flits=..,
    /// depth=..` form), empty for the classic uniform-latency LLC.
    /// Folded into the spec hash only when set, like `trace`, so NoC-off
    /// hashes (and existing manifests) are unchanged. Must not contain
    /// `;`.
    pub noc: String,
    /// Intra-simulation stepping threads; 0 (the default) and 1 both
    /// mean the sequential kernels and stay out of the canonical form.
    /// The parallel kernels are proven byte-identical, but the worker
    /// count is still part of the cell identity so a resumed grid
    /// re-runs cells whose execution mode was deliberately changed.
    pub workers: u32,
}

impl CellSpec {
    /// Canonical `key=value;` rendering every hash is computed over.
    /// Field order is part of the format; never reorder. The `trace`
    /// field is appended only when set, so generator-backed specs hash
    /// exactly as they did before trace files existed.
    #[must_use]
    pub fn canonical(&self) -> String {
        let mut s = format!(
            "experiment={};workload={};scheme={};cores={};instructions={};\
             warmup={};seed={};prefetch={};track_unused={};record_epochs={}",
            self.experiment,
            self.workload,
            self.scheme,
            self.cores,
            self.instructions,
            self.warmup,
            self.seed,
            self.prefetch,
            self.track_unused,
            self.record_epochs,
        );
        if !self.trace.is_empty() {
            s.push_str(";trace=");
            s.push_str(&self.trace);
        }
        if !self.sampling.is_empty() {
            debug_assert!(
                !self.sampling.contains(';'),
                "sampling spec must not contain the field separator"
            );
            s.push_str(";sampling=");
            s.push_str(&self.sampling);
        }
        if !self.noc.is_empty() {
            debug_assert!(
                !self.noc.contains(';'),
                "noc spec must not contain the field separator"
            );
            s.push_str(";noc=");
            s.push_str(&self.noc);
        }
        if self.workers > 1 {
            s.push_str(";workers=");
            s.push_str(&self.workers.to_string());
        }
        s
    }

    /// Stable content hash over every field — the manifest key.
    #[must_use]
    pub fn spec_hash(&self) -> u64 {
        fnv1a64(self.canonical().as_bytes())
    }

    /// [`CellSpec::spec_hash`] as fixed-width hex (manifest/file form).
    #[must_use]
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.spec_hash())
    }

    /// Deterministic trace-generator seed: a function of the workload
    /// identity (`workload`, `cores`, base `seed`) only, so every
    /// scheme compared on this workload replays identical traces, at
    /// any thread count and in any execution order.
    #[must_use]
    pub fn workload_seed(&self) -> u64 {
        workload_seed(&self.workload, self.cores, self.seed)
    }

    /// Human-readable cell label for progress and failure reports.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/{}:{}", self.experiment, self.workload, self.scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CellSpec {
        CellSpec {
            experiment: "fig06".into(),
            workload: "mcf".into(),
            scheme: "CHROME".into(),
            cores: 4,
            instructions: 3_000_000,
            warmup: 600_000,
            seed: 0x5EED,
            prefetch: "paper".into(),
            track_unused: false,
            record_epochs: false,
            trace: String::new(),
            sampling: String::new(),
            noc: String::new(),
            workers: 0,
        }
    }

    #[test]
    fn hash_is_stable_across_calls_and_clones() {
        let s = spec();
        assert_eq!(s.spec_hash(), s.clone().spec_hash());
        // pin the value: the manifest format depends on hash stability
        // across builds, so a change here invalidates old manifests
        assert_eq!(s.hash_hex().len(), 16);
    }

    #[test]
    fn every_field_feeds_the_spec_hash() {
        let base = spec();
        let mut variants = Vec::new();
        for f in 0..14 {
            let mut v = base.clone();
            match f {
                0 => v.experiment = "fig10".into(),
                1 => v.workload = "gcc".into(),
                2 => v.scheme = "LRU".into(),
                3 => v.cores = 8,
                4 => v.instructions += 1,
                5 => v.warmup += 1,
                6 => v.seed += 1,
                7 => v.prefetch = "ipcp".into(),
                8 => v.track_unused = true,
                9 => v.record_epochs = true,
                10 => v.trace = "00000000deadbeef".into(),
                11 => v.sampling = "k=5,ramp=2000".into(),
                12 => v.noc = "slices=4,hop=2,flits=1,depth=8".into(),
                _ => v.workers = 8,
            }
            variants.push(v.spec_hash());
        }
        variants.push(base.spec_hash());
        variants.sort_unstable();
        variants.dedup();
        assert_eq!(variants.len(), 15, "hash collision across field variants");
    }

    #[test]
    fn empty_trace_keeps_legacy_canonical_form() {
        // generator-backed specs must hash exactly as before the trace
        // field existed, or every existing manifest would be invalidated
        let s = spec();
        assert!(!s.canonical().contains("trace="));
        let mut t = s.clone();
        t.trace = "00000000deadbeef".into();
        assert!(t.canonical().ends_with(";trace=00000000deadbeef"));
        assert_ne!(s.spec_hash(), t.spec_hash());
        // a different trace revision is a different checkpoint identity
        let mut t2 = s.clone();
        t2.trace = "00000000deadbee0".into();
        assert_ne!(t.spec_hash(), t2.spec_hash());
    }

    #[test]
    fn empty_sampling_keeps_legacy_canonical_form() {
        // full-simulation specs must hash exactly as before the
        // sampling axis existed, and a sampled cell can never resume
        // from a full cell's checkpoint (or vice versa)
        let s = spec();
        assert!(!s.canonical().contains("sampling="));
        let mut k5 = s.clone();
        k5.sampling = "k=5,ramp=2000".into();
        assert!(k5.canonical().ends_with(";sampling=k=5,ramp=2000"));
        assert_ne!(s.spec_hash(), k5.spec_hash());
        let mut k3 = s.clone();
        k3.sampling = "k=3,ramp=2000".into();
        assert_ne!(k5.spec_hash(), k3.spec_hash());
    }

    #[test]
    fn empty_noc_and_sequential_workers_keep_legacy_canonical_form() {
        // NoC-off, sequentially-stepped specs must hash exactly as
        // before the NoC axis existed, so existing manifests stay valid;
        // workers 0 and 1 are the same identity (both sequential).
        let s = spec();
        assert!(!s.canonical().contains("noc="));
        assert!(!s.canonical().contains("workers="));
        let mut w1 = s.clone();
        w1.workers = 1;
        assert_eq!(s.spec_hash(), w1.spec_hash());
        let mut noc = s.clone();
        noc.noc = "slices=4,hop=2,flits=1,depth=8".into();
        assert!(noc
            .canonical()
            .ends_with(";noc=slices=4,hop=2,flits=1,depth=8"));
        assert_ne!(s.spec_hash(), noc.spec_hash());
        let mut w8 = noc.clone();
        w8.workers = 8;
        assert!(w8.canonical().ends_with(";workers=8"));
        assert_ne!(noc.spec_hash(), w8.spec_hash());
    }

    #[test]
    fn workload_seed_free_function_matches_method() {
        let s = spec();
        assert_eq!(s.workload_seed(), workload_seed("mcf", 4, 0x5EED));
    }

    #[test]
    fn workload_seed_ignores_scheme_and_budget() {
        let base = spec();
        let mut other_scheme = base.clone();
        other_scheme.scheme = "LRU".into();
        other_scheme.instructions *= 10;
        other_scheme.experiment = "fig11".into();
        assert_eq!(base.workload_seed(), other_scheme.workload_seed());
        let mut other_wl = base.clone();
        other_wl.workload = "gcc".into();
        assert_ne!(base.workload_seed(), other_wl.workload_seed());
        let mut other_cores = base.clone();
        other_cores.cores = 8;
        assert_ne!(base.workload_seed(), other_cores.workload_seed());
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a 64 of the empty string is the offset basis
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
