//! Engine-level tests with synthetic cells: fault isolation, retry
//! accounting, checkpoint/resume, and thread-count independence.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use chrome_exec::{load_manifest, run_grid, CellSpec, EngineConfig, StringCodec};

fn spec(workload: &str, scheme: &str) -> CellSpec {
    CellSpec {
        experiment: "test".into(),
        workload: workload.into(),
        scheme: scheme.into(),
        cores: 1,
        instructions: 1000,
        warmup: 100,
        seed: 7,
        prefetch: "paper".into(),
        track_unused: false,
        record_epochs: false,
        trace: String::new(),
        sampling: String::new(),
        noc: String::new(),
        workers: 0,
    }
}

fn grid(n: usize) -> Vec<CellSpec> {
    (0..n).map(|i| spec(&format!("wl{i}"), "LRU")).collect()
}

fn tmp_manifest(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "chrome_exec_test_{}_{name}.jsonl",
        std::process::id()
    ))
}

fn cfg(jobs: usize, manifest: Option<PathBuf>) -> EngineConfig {
    EngineConfig {
        jobs,
        retries: 2,
        backoff_ms: 1,
        backoff_cap_ms: 2,
        manifest_path: manifest,
        resume: false,
        progress: false,
    }
}

/// The reference cell function: a pure function of the spec.
fn eval(s: &CellSpec) -> String {
    format!("{}:{:x}", s.workload, s.workload_seed())
}

#[test]
fn results_are_in_input_order_at_any_thread_count() {
    let specs = grid(17);
    let sequential = run_grid(specs.clone(), &cfg(1, None), &StringCodec, eval).unwrap();
    let parallel = run_grid(specs.clone(), &cfg(8, None), &StringCodec, eval).unwrap();
    assert_eq!(sequential.outcomes.len(), 17);
    assert_eq!(parallel.executed, 17);
    assert_eq!(parallel.failed, 0);
    for (i, (a, b)) in sequential
        .outcomes
        .iter()
        .zip(&parallel.outcomes)
        .enumerate()
    {
        assert_eq!(a.spec, specs[i]);
        assert_eq!(
            a.value(),
            b.value(),
            "cell {i} differs across thread counts"
        );
        assert_eq!(a.value().unwrap(), &eval(&specs[i]));
    }
}

#[test]
fn manifest_digests_are_thread_count_independent() {
    let specs = grid(9);
    let digests = |jobs: usize, name: &str| {
        let path = tmp_manifest(name);
        run_grid(
            specs.clone(),
            &cfg(jobs, Some(path.clone())),
            &StringCodec,
            eval,
        )
        .unwrap();
        let mut d: Vec<(String, String)> = load_manifest(&path)
            .unwrap()
            .into_iter()
            .map(|r| (r.spec_hash, r.digest))
            .collect();
        std::fs::remove_file(&path).ok();
        d.sort();
        d
    };
    assert_eq!(digests(1, "digest_j1"), digests(8, "digest_j8"));
}

#[test]
fn panicking_cell_is_isolated_and_recorded() {
    let specs = grid(5);
    let path = tmp_manifest("fault");
    let report = run_grid(
        specs.clone(),
        &cfg(4, Some(path.clone())),
        &StringCodec,
        |s: &CellSpec| {
            assert!(s.workload != "wl2", "cell wl2 exploded");
            eval(s)
        },
    )
    .unwrap();
    // the grid finished: every other cell has a result
    assert_eq!(report.failed, 1);
    assert_eq!(report.outcomes.iter().filter(|o| o.ok()).count(), 4);
    let bad = &report.outcomes[2];
    assert!(!bad.ok());
    assert_eq!(bad.attempts, 3, "retries exhausted");
    assert!(bad.error.as_deref().unwrap().contains("wl2 exploded"));
    let failures = report.failures();
    assert_eq!(failures.len(), 1);
    assert!(failures[0].0.contains("wl2"));
    // and the manifest recorded the permanent failure
    let recs = load_manifest(&path).unwrap();
    let failed: Vec<_> = recs.iter().filter(|r| !r.is_ok()).collect();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].attempts, 3);
    assert!(failed[0].error.contains("wl2 exploded"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn flaky_cell_succeeds_on_retry_and_manifest_records_attempts() {
    let specs = grid(4);
    let path = tmp_manifest("flaky");
    let tries: Mutex<HashMap<String, u32>> = Mutex::new(HashMap::new());
    let report = run_grid(
        specs.clone(),
        &cfg(2, Some(path.clone())),
        &StringCodec,
        |s: &CellSpec| {
            let attempt = {
                let mut m = tries.lock().unwrap();
                let e = m.entry(s.workload.clone()).or_insert(0);
                *e += 1;
                *e
            };
            assert!(
                s.workload != "wl1" || attempt > 1,
                "transient failure on first attempt"
            );
            eval(s)
        },
    )
    .unwrap();
    assert_eq!(report.failed, 0, "flaky cell must recover");
    let flaky = &report.outcomes[1];
    assert!(flaky.ok());
    assert_eq!(flaky.attempts, 2);
    assert!(report.outcomes.iter().filter(|o| o.attempts == 1).count() >= 3);
    let recs = load_manifest(&path).unwrap();
    let rec = recs
        .iter()
        .find(|r| r.spec_hash == specs[1].hash_hex())
        .expect("flaky cell in manifest");
    assert!(rec.is_ok());
    assert_eq!(rec.attempts, 2, "manifest records the retry");
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_skips_completed_cells_without_reexecuting() {
    let specs = grid(10);
    let path = tmp_manifest("resume");
    // first run dies mid-grid: only the first half is scheduled, then
    // the engine is dropped (same on-disk state as a killed process)
    let first: Vec<CellSpec> = specs[..5].to_vec();
    let r1 = run_grid(first, &cfg(2, Some(path.clone())), &StringCodec, eval).unwrap();
    assert_eq!(r1.executed, 5);
    // resume over the full grid: completed cells must not re-execute —
    // the cell fn counts invocations to prove it
    let executions = AtomicU32::new(0);
    let mut resume_cfg = cfg(2, Some(path.clone()));
    resume_cfg.resume = true;
    let r2 = run_grid(specs.clone(), &resume_cfg, &StringCodec, |s: &CellSpec| {
        executions.fetch_add(1, Ordering::SeqCst);
        eval(s)
    })
    .unwrap();
    assert_eq!(r2.resumed, 5);
    assert_eq!(r2.executed, 5);
    assert_eq!(executions.load(Ordering::SeqCst), 5);
    for (i, o) in r2.outcomes.iter().enumerate() {
        assert_eq!(o.resumed, i < 5, "cell {i}");
        assert_eq!(o.value().unwrap(), &eval(&specs[i]));
    }
    // the manifest now covers the whole grid; a second resume is a no-op
    let r3 = run_grid(
        specs.clone(),
        &resume_cfg,
        &StringCodec,
        |_: &CellSpec| -> String { panic!("nothing should execute") },
    )
    .unwrap();
    assert_eq!(r3.resumed, 10);
    assert_eq!(r3.executed, 0);
    assert_eq!(r3.failed, 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_reruns_failed_and_stale_cells() {
    let specs = grid(3);
    let path = tmp_manifest("rerun");
    // first run: wl1 fails permanently
    let r1 = run_grid(
        specs.clone(),
        &cfg(2, Some(path.clone())),
        &StringCodec,
        |s: &CellSpec| {
            assert!(s.workload != "wl1", "always fails");
            eval(s)
        },
    )
    .unwrap();
    assert_eq!(r1.failed, 1);
    // resume: the failed cell re-runs (and now succeeds); ok cells skip.
    // A changed spec (different budget => different hash) also re-runs.
    let mut changed = specs.clone();
    changed[2].instructions += 1;
    let mut resume_cfg = cfg(2, Some(path.clone()));
    resume_cfg.resume = true;
    let r2 = run_grid(changed.clone(), &resume_cfg, &StringCodec, eval).unwrap();
    assert_eq!(r2.resumed, 1, "only the unchanged ok cell skips");
    assert_eq!(r2.executed, 2);
    assert_eq!(r2.failed, 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn fresh_run_truncates_stale_manifest() {
    let specs = grid(2);
    let path = tmp_manifest("truncate");
    run_grid(
        specs.clone(),
        &cfg(1, Some(path.clone())),
        &StringCodec,
        eval,
    )
    .unwrap();
    run_grid(
        specs.clone(),
        &cfg(1, Some(path.clone())),
        &StringCodec,
        eval,
    )
    .unwrap();
    // without --resume the manifest holds exactly one record per cell
    assert_eq!(load_manifest(&path).unwrap().len(), 2);
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_grid_is_fine() {
    let report = run_grid(Vec::new(), &cfg(4, None), &StringCodec, eval).unwrap();
    assert!(report.outcomes.is_empty());
    assert_eq!(report.executed, 0);
}
