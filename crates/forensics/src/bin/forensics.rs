//! Decision-forensics driver: audited runs, offline Belady oracle,
//! and trace-grounded "why" reports.
//!
//! ```text
//! forensics sim    [--workload NAME | --trace FILE.ctf] [--cores N]
//!                  [--instructions N] [--warmup N] [--seed S]
//!                  [--audit-cap N] [--out DIR] [--quick]
//! forensics serve  [--stream zipf|scan|churn|mixed] [--requests N]
//!                  [--keyspace N] [--shards N] [--shard-slots N]
//!                  [--shard-bytes N] [--seed S] [--audit-cap N]
//!                  [--out DIR] [--quick]
//! forensics oracle --trace FILE.ctf
//! ```
//!
//! `sim` and `serve` each run CHROME and its concurrency-unaware
//! ablation, join every audited decision against the oracle, and write
//! `<out>/forensics_<label>.jsonl` (one summary object per policy) and
//! `<out>/forensics_<label>.md` (the human-readable report). The
//! process exits non-zero unless every run joins ≥ 99% of its recorded
//! decisions and reports a divergence rate inside [0, 1] — which is
//! what lets CI call this binary directly as its smoke gate. `oracle`
//! prints the standalone Belady bound of a raw trace file.

use std::path::PathBuf;
use std::process::ExitCode;

use chrome_forensics::{
    join_segment, render_markdown, run_hardware, run_serve, summarize, trace_min_bound, SimSource,
    SimSpec, Summary,
};
use chrome_serve::{BenchParams, PolicyKind, StreamKind};

fn arg_string(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_u64(name: &str) -> Option<u64> {
    arg_string(name).map(|s| {
        s.parse()
            .unwrap_or_else(|_| panic!("{name} wants an integer, got {s}"))
    })
}

fn out_dir() -> PathBuf {
    PathBuf::from(arg_string("--out").unwrap_or_else(|| "results".into()))
}

/// Write the JSONL + markdown artifact pair and echo where they went.
fn write_reports(label: &str, feature_names: &[&str], summaries: &[Summary]) {
    let dir = out_dir();
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));
    let jsonl: String = summaries
        .iter()
        .map(|s| format!("{}\n", s.to_json()))
        .collect();
    let jsonl_path = dir.join(format!("forensics_{label}.jsonl"));
    std::fs::write(&jsonl_path, jsonl)
        .unwrap_or_else(|e| panic!("writing {}: {e}", jsonl_path.display()));
    let md_path = dir.join(format!("forensics_{label}.md"));
    std::fs::write(&md_path, render_markdown(label, feature_names, summaries))
        .unwrap_or_else(|e| panic!("writing {}: {e}", md_path.display()));
    println!("wrote {} and {}", jsonl_path.display(), md_path.display());
}

/// The acceptance gate both subcommands and CI rely on.
fn gate(summaries: &[Summary]) -> Result<(), String> {
    for s in summaries {
        if s.joined == 0 {
            return Err(format!("{}/{}: no decisions joined", s.label, s.policy));
        }
        if s.join_rate() < 0.99 {
            return Err(format!(
                "{}/{}: join rate {:.4} below 0.99",
                s.label,
                s.policy,
                s.join_rate()
            ));
        }
        let d = s.divergence_rate();
        if !(0.0..=1.0).contains(&d) {
            return Err(format!(
                "{}/{}: divergence rate {d} outside [0,1]",
                s.label, s.policy
            ));
        }
    }
    Ok(())
}

fn print_summary(s: &Summary) {
    println!(
        "{:<10} {:<9} decisions {:>8} joined {:>6.2}% hit {:>6.2}% MIN {:>6.2}% \
         diverge {:>6.2}% calib {:.2}",
        s.label,
        s.policy,
        s.decisions,
        s.join_rate() * 100.0,
        s.realized_hit_ratio * 100.0,
        s.min_hit_ratio * 100.0,
        s.divergence_rate() * 100.0,
        s.reward_calibration,
    );
}

fn cmd_sim() -> Result<(), String> {
    let mut spec = SimSpec::default();
    if arg_flag("--quick") {
        spec.instructions = 200_000;
        spec.warmup = 20_000;
        spec.cores = 1;
    }
    let label = match (arg_string("--trace"), arg_string("--workload")) {
        (Some(path), _) => {
            let p = PathBuf::from(path);
            let label = p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "trace".into());
            spec.source = SimSource::Trace(p);
            label
        }
        (None, Some(w)) => {
            spec.source = SimSource::Workload(w.clone());
            w
        }
        (None, None) => "mcf".to_string(), // the SimSpec default
    };
    if let Some(v) = arg_u64("--cores") {
        spec.cores = v as usize;
    }
    if let Some(v) = arg_u64("--instructions") {
        spec.instructions = v;
    }
    if let Some(v) = arg_u64("--warmup") {
        spec.warmup = v;
    }
    if let Some(v) = arg_u64("--seed") {
        spec.seed = v;
    }
    if let Some(v) = arg_u64("--audit-cap") {
        spec.audit_cap = v as usize;
    }

    let mut summaries = Vec::new();
    for aware in [true, false] {
        let run = run_hardware(&spec, aware)?;
        let joined: Vec<_> = run
            .segments
            .iter()
            .zip(&run.verdicts)
            .map(|(seg, v)| join_segment(seg, v))
            .collect();
        let s = summarize(&label, run.scheme, &run.segments, &joined);
        print_summary(&s);
        summaries.push(s);
    }
    write_reports(&label, &["pc", "pn"], &summaries);
    gate(&summaries)
}

fn cmd_serve() -> Result<(), String> {
    let mut p = BenchParams::default();
    if arg_flag("--quick") {
        p.requests = 30_000;
        p.keyspace = 5_000;
        p.shards = 8;
        p.shard_slots = 256;
        p.shard_bytes = 128 * 1024;
    }
    if let Some(s) = arg_string("--stream") {
        p.stream = StreamKind::parse(&s).ok_or_else(|| format!("unknown stream {s}"))?;
    }
    if let Some(v) = arg_u64("--requests") {
        p.requests = v as usize;
    }
    if let Some(v) = arg_u64("--keyspace") {
        p.keyspace = v;
    }
    if let Some(v) = arg_u64("--shards") {
        p.shards = v as usize;
    }
    if let Some(v) = arg_u64("--shard-slots") {
        p.shard_slots = v as usize;
    }
    if let Some(v) = arg_u64("--shard-bytes") {
        p.shard_bytes = v;
    }
    if let Some(v) = arg_u64("--seed") {
        p.seed = v;
    }
    let audit_cap = arg_u64("--audit-cap").unwrap_or(1 << 22) as usize;
    let label = format!("serve_{}", p.stream.name());

    let mut summaries = Vec::new();
    for kind in [PolicyKind::Chrome, PolicyKind::ChromeNc] {
        let run = run_serve(&BenchParams { policy: kind, ..p }, audit_cap)?;
        if run.stream_join < 1.0 {
            return Err(format!(
                "{}: audited decisions disagree with the regenerated stream (join {:.6})",
                run.result.policy, run.stream_join
            ));
        }
        let joined: Vec<_> = run
            .segments
            .iter()
            .zip(&run.verdicts)
            .map(|(seg, v)| join_segment(seg, v))
            .collect();
        let s = summarize(&label, run.result.policy, &run.segments, &joined);
        print_summary(&s);
        summaries.push(s);
    }
    write_reports(&label, &["flow", "neighborhood"], &summaries);
    gate(&summaries)
}

fn cmd_oracle() -> Result<(), String> {
    let path = arg_string("--trace").ok_or("oracle needs --trace FILE.ctf")?;
    let (accesses, bound) = trace_min_bound(path.as_ref())?;
    println!(
        "{path}: {accesses} line accesses, Belady LLC hit-ratio bound {:.4}",
        bound
    );
    Ok(())
}

fn main() -> ExitCode {
    let cmd = std::env::args().nth(1).unwrap_or_default();
    let result = match cmd.as_str() {
        "sim" => cmd_sim(),
        "serve" => cmd_serve(),
        "oracle" => cmd_oracle(),
        other => Err(format!(
            "usage: forensics <sim|serve|oracle> [flags] (got {other:?})"
        )),
    };
    match result {
        Ok(()) => {
            println!("forensics gate: OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("forensics: {e}");
            ExitCode::FAILURE
        }
    }
}
