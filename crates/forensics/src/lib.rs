//! # chrome-forensics — why did CHROME make that decision?
//!
//! The observability capstone over the audit trail
//! ([`chrome_telemetry::AuditLog`]): every CHROME decision — in the
//! hardware LLC simulation and in the serving cache — is recorded with
//! its feature-slice values, per-action Q components, chosen action and
//! eventual reward, then judged offline against a Belady/MIN oracle
//! computed over the very same access sequence.
//!
//! * [`oracle`] — streaming MIN-with-bypass over grouped key sequences
//!   (per LLC set on the hardware path, per shard with genuine slot and
//!   byte budgets on the serve path);
//! * [`report`] — the positional join, divergence judgment,
//!   per-feature Q-delta attribution, reward calibration, and the JSONL
//!   + markdown renderers;
//! * [`simrun`] — audited cycle-simulator runs (live workload
//!   generators or recorded `.ctf` traces) plus a standalone raw-trace
//!   MIN bound;
//! * [`serverun`] — audited serving-cache runs with an independent
//!   stream-regeneration cross-check of the join.
//!
//! The `forensics` binary drives all of it; the `forensics-smoke` CI
//! job keeps a tiny end-to-end run green.

pub mod oracle;
pub mod report;
pub mod serverun;
pub mod simrun;

pub use oracle::{min_hit_ratio, min_oracle, GroupCapacity, OracleVerdict};
pub use report::{join_segment, judge, render_markdown, summarize, JoinedDecision, Summary};
pub use serverun::{run_serve, ServeRun};
pub use simrun::{decision_keys, run_hardware, trace_min_bound, HardwareRun, SimSource, SimSpec};
