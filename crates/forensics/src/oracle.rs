//! The offline Belady/MIN oracle.
//!
//! Given the exact key sequence a cache group saw (reconstructed from
//! the audit trail, which records every decision in order), MIN answers
//! three questions per access, with hindsight the online agent never
//! had:
//!
//! * `min_hit` — would a clairvoyant cache have served this access
//!   from cache?
//! * `reused` — is the key ever requested again in the window?
//! * `survived` — does the clairvoyant cache retain the key until that
//!   next request (i.e. does keeping it pay off)?
//!
//! The variant implemented here is MIN **with dead-block bypass**: a
//! key with no further use is never inserted and is freed the moment
//! its last hit is served. That is the right comparison target for
//! CHROME, whose action space includes bypass (action 0) and
//! mark-for-early-eviction (action 6) — plain MIN without bypass would
//! charge the oracle for pollution the agent is allowed to avoid.
//!
//! Complexity: one backward pass builds the next-use chain (O(n) time,
//! O(live keys) map), one forward pass simulates every group with a
//! `BTreeMap` priority queue keyed on next-use index (O(n log ways)).
//! Memory stays bounded by the audit cap plus the simulated capacity,
//! never by the run length.

use std::collections::{BTreeMap, HashMap};

/// What MIN decided about one access of the audited sequence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleVerdict {
    /// The clairvoyant cache served this access from cache.
    pub min_hit: bool,
    /// The key is requested again later in the window.
    pub reused: bool,
    /// The clairvoyant cache retains the key until its next request
    /// (implies `reused`; an insertion/retention that pays off).
    pub survived: bool,
}

/// One group's MIN state during the forward pass.
#[derive(Default)]
struct GroupState {
    /// Resident keys → the index of their next use.
    resident: HashMap<u64, usize>,
    /// Next-use index → key; `last_entry` is the farthest-future
    /// resident, MIN's eviction victim. Indices are unique, so this is
    /// a total order.
    queue: BTreeMap<usize, u64>,
    /// Resident value bytes (only constrained when `bytes` capacity is
    /// given).
    bytes: u64,
}

impl GroupState {
    fn evict_farthest(&mut self, size_of: &dyn Fn(u64) -> u64) -> bool {
        let Some((_, key)) = self.queue.pop_last() else {
            return false;
        };
        self.resident.remove(&key);
        self.bytes -= size_of(key);
        true
    }

    fn drop_key(&mut self, key: u64, next_use: usize, size_of: &dyn Fn(u64) -> u64) {
        self.queue.remove(&next_use);
        self.resident.remove(&key);
        self.bytes -= size_of(key);
    }
}

/// Per-group capacity for the clairvoyant cache.
#[derive(Debug, Clone, Copy)]
pub struct GroupCapacity {
    /// Maximum resident keys per group (LLC ways; serve shard slots).
    pub slots: usize,
    /// Optional value-byte budget per group (serve shards only; the
    /// hardware path has unit-sized lines).
    pub bytes: Option<u64>,
}

/// Run MIN-with-bypass over `keys`, partitioned into groups by
/// `group_of` (a pure function of the key: the LLC set index, or a
/// constant for a single serve shard), sized by `size_of`.
///
/// Returns one verdict per access, aligned with `keys`.
pub fn min_oracle(
    keys: &[u64],
    cap: GroupCapacity,
    group_of: impl Fn(u64) -> u64,
    size_of: impl Fn(u64) -> u64,
) -> Vec<OracleVerdict> {
    assert!(cap.slots > 0, "oracle needs capacity");
    // Backward pass: next_use[i] = index of the next access of keys[i],
    // if any. Grouping needs no special handling here because the
    // group is a pure function of the key.
    let mut next_use: Vec<Option<usize>> = vec![None; keys.len()];
    let mut last_seen: HashMap<u64, usize> = HashMap::new();
    for (i, &k) in keys.iter().enumerate().rev() {
        next_use[i] = last_seen.insert(k, i);
    }
    drop(last_seen);

    // Forward pass: simulate each group's clairvoyant cache.
    let size_of: &dyn Fn(u64) -> u64 = &size_of;
    let mut groups: HashMap<u64, GroupState> = HashMap::new();
    let mut hits = vec![false; keys.len()];
    for (i, &k) in keys.iter().enumerate() {
        let g = groups.entry(group_of(k)).or_default();
        let nu = next_use[i];
        if let Some(&stored) = g.resident.get(&k) {
            hits[i] = true;
            // re-key the resident entry from this access to the next
            g.drop_key(k, stored, size_of);
        } else if nu.is_none() {
            continue; // dead on arrival: MIN bypasses
        }
        let Some(j) = nu else {
            continue; // last use served; dead-block bypass frees it
        };
        g.resident.insert(k, j);
        g.queue.insert(j, k);
        g.bytes += size_of(k);
        while g.resident.len() > cap.slots || cap.bytes.is_some_and(|b| g.bytes > b) {
            if !g.evict_farthest(size_of) {
                break; // single object larger than the budget
            }
        }
    }

    // survived[i]: the key stays resident until its next use, i.e. that
    // next access is a MIN hit.
    keys.iter()
        .enumerate()
        .map(|(i, _)| OracleVerdict {
            min_hit: hits[i],
            reused: next_use[i].is_some(),
            survived: next_use[i].is_some_and(|j| hits[j]),
        })
        .collect()
}

/// The MIN hit ratio over a verdict slice — the Belady upper bound the
/// report quotes next to the realized hit ratio.
pub fn min_hit_ratio(verdicts: &[OracleVerdict]) -> f64 {
    if verdicts.is_empty() {
        return 0.0;
    }
    verdicts.iter().filter(|v| v.min_hit).count() as f64 / verdicts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(keys: &[u64], slots: usize) -> Vec<OracleVerdict> {
        min_oracle(keys, GroupCapacity { slots, bytes: None }, |_| 0, |_| 1)
    }

    #[test]
    fn repeated_key_hits_after_first_touch() {
        let v = unit(&[1, 1, 1], 2);
        assert!(!v[0].min_hit && v[1].min_hit && v[2].min_hit);
        assert!(v[0].survived && v[1].survived);
        assert!(!v[2].reused && !v[2].survived);
    }

    #[test]
    fn min_beats_lru_on_the_classic_pattern() {
        // A B C A B C ... with 2 slots: LRU gets zero hits, MIN keeps
        // one of the pair alive every round.
        let keys: Vec<u64> = (0..12).map(|i| i % 3).collect();
        let v = unit(&keys, 2);
        let hits = v.iter().filter(|x| x.min_hit).count();
        assert!(hits >= 4, "MIN must exploit reuse, got {hits} hits");
    }

    #[test]
    fn dead_keys_are_bypassed_not_cached() {
        // scan of distinct keys with one reused key interleaved: the
        // scan must never evict the reused key under MIN-with-bypass
        let mut keys = Vec::new();
        for i in 0..50u64 {
            keys.push(1000); // the hot key
            keys.push(i); // scan traffic, never repeated
        }
        let v = unit(&keys, 1);
        let hot_hits = keys
            .iter()
            .zip(&v)
            .filter(|(&k, x)| k == 1000 && x.min_hit)
            .count();
        assert_eq!(hot_hits, 49, "every hot re-touch hits under MIN");
        assert!(!v[1].reused && !v[1].survived);
    }

    #[test]
    fn groups_are_independent() {
        // same key sequence in two groups must produce the same verdicts
        let interleaved: Vec<u64> = (0..20).flat_map(|i| [i % 2, 100 + i % 2]).collect();
        let v = min_oracle(
            &interleaved,
            GroupCapacity {
                slots: 1,
                bytes: None,
            },
            |k| k / 100,
            |_| 1,
        );
        let g0: Vec<bool> = interleaved
            .iter()
            .zip(&v)
            .filter(|(&k, _)| k < 100)
            .map(|(_, x)| x.min_hit)
            .collect();
        let g1: Vec<bool> = interleaved
            .iter()
            .zip(&v)
            .filter(|(&k, _)| k >= 100)
            .map(|(_, x)| x.min_hit)
            .collect();
        assert_eq!(g0, g1);
    }

    #[test]
    fn byte_budget_constrains_like_slots() {
        // two keys of size 60 in a 100-byte group: only one fits
        let keys = [1u64, 2, 1, 2, 1, 2];
        let v = min_oracle(
            &keys,
            GroupCapacity {
                slots: 10,
                bytes: Some(100),
            },
            |_| 0,
            |_| 60,
        );
        let hits = v.iter().filter(|x| x.min_hit).count();
        assert!(hits >= 2, "MIN keeps one key alive: {hits}");
        assert!(hits <= 4, "both cannot be resident at once: {hits}");
    }

    #[test]
    fn oversized_object_never_wedges() {
        let keys = [7u64, 7, 7];
        let v = min_oracle(
            &keys,
            GroupCapacity {
                slots: 4,
                bytes: Some(10),
            },
            |_| 0,
            |_| 50, // larger than the whole budget
        );
        assert!(v.iter().all(|x| !x.min_hit), "cannot fit, never hits");
    }

    #[test]
    fn hit_ratio_matches_flags() {
        let v = unit(&[1, 2, 1, 2], 2);
        assert!((min_hit_ratio(&v) - 0.5).abs() < 1e-12);
        assert_eq!(min_hit_ratio(&[]), 0.0);
    }
}
