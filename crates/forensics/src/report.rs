//! Joining the audit trail against the oracle, and rendering the
//! result as machine-readable JSONL and a human-readable markdown
//! "why" report.
//!
//! The join is positional: the oracle is computed over the decision-key
//! sequence extracted from the audit segment itself, so the k-th
//! decision of a segment pairs with the k-th verdict by construction.
//! Rewards join by decision id. Divergence is judged per decision:
//!
//! * **miss-side** — the agent inserted (action ≠ 0) while MIN says the
//!   block never pays off, or bypassed while MIN retains it to a hit;
//! * **hit-side** — the agent marked the line for early eviction
//!   (action 6) while MIN keeps it to its next use, or protected it
//!   (actions 4–5) while MIN lets it die.
//!
//! For every diverging decision the per-feature Q components recorded
//! at decision time are differenced against the oracle-preferred
//! action, attributing the divergence to the feature whose vote moved
//! the choice furthest — the "why" in the report.

use chrome_telemetry::{AuditRecord, AuditSegment, DecisionRecord, AUDIT_FEATURES};

use crate::oracle::OracleVerdict;

/// Actions that insert on a miss (EPV a−1).
const MISS_INSERTS: [usize; 3] = [1, 2, 3];
/// Hit actions that protect the line (EPV a−4 below highest).
const HIT_PROTECTS: [usize; 2] = [4, 5];
/// The hit action that marks the line for early eviction.
const HIT_DEMOTE: u8 = 6;

/// One audited decision joined with its oracle verdict.
#[derive(Debug, Clone, Copy)]
pub struct JoinedDecision {
    /// The recorded decision.
    pub decision: DecisionRecord,
    /// MIN's hindsight for the same access.
    pub verdict: OracleVerdict,
    /// The reward this decision eventually received, if one was
    /// recorded before the log capped.
    pub reward: Option<f64>,
    /// The agent contradicted the oracle (see module docs).
    pub diverged: bool,
    /// The action the oracle prefers (bypass/demote for dead blocks;
    /// otherwise the agent's best-valued insert/protect action).
    pub oracle_action: u8,
    /// Per-feature Q difference `q[f][chosen] − q[f][oracle_action]`.
    pub qdelta: [f32; AUDIT_FEATURES],
    /// Feature whose vote moved the choice furthest (argmax |qdelta|).
    pub driving_feature: u8,
}

/// Sum of per-feature components: the engine's value for `action`
/// restricted to the recorded snapshot.
fn q_total(d: &DecisionRecord, action: usize) -> f32 {
    (0..d.features as usize).map(|f| d.q[f][action]).sum()
}

/// The agent's best-valued action among `candidates`.
fn best_of(d: &DecisionRecord, candidates: &[usize]) -> u8 {
    let mut best = candidates[0];
    for &a in &candidates[1..] {
        if q_total(d, a) > q_total(d, best) {
            best = a;
        }
    }
    best as u8
}

/// Judge one decision against its verdict.
pub fn judge(d: &DecisionRecord, v: OracleVerdict, reward: Option<f64>) -> JoinedDecision {
    let (diverged, oracle_action) = if d.hit {
        let demoted = d.action == HIT_DEMOTE;
        let oracle_action = if v.survived {
            best_of(d, &HIT_PROTECTS)
        } else {
            HIT_DEMOTE
        };
        (demoted == v.survived, oracle_action)
    } else {
        let inserted = d.action != 0;
        // worth inserting only when MIN retains the block to a hit
        let oracle_action = if v.survived {
            best_of(d, &MISS_INSERTS)
        } else {
            0
        };
        (inserted != v.survived, oracle_action)
    };
    let mut qdelta = [0f32; AUDIT_FEATURES];
    let mut driving = 0u8;
    for f in 0..(d.features as usize).min(AUDIT_FEATURES) {
        qdelta[f] = d.q[f][d.action as usize] - d.q[f][oracle_action as usize];
        if qdelta[f].abs() > qdelta[driving as usize].abs() {
            driving = f as u8;
        }
    }
    JoinedDecision {
        decision: *d,
        verdict: v,
        reward,
        diverged,
        oracle_action,
        qdelta,
        driving_feature: driving,
    }
}

/// Join one segment's decisions with verdicts (positional) and rewards
/// (by id). `verdicts` must align with the segment's decision sequence.
pub fn join_segment(seg: &AuditSegment, verdicts: &[OracleVerdict]) -> Vec<JoinedDecision> {
    let mut rewards: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for r in &seg.records {
        if let AuditRecord::Reward(w) = r {
            rewards.insert(w.id, w.reward);
        }
    }
    seg.records
        .iter()
        .filter_map(|r| match r {
            AuditRecord::Decision(d) => Some(d),
            AuditRecord::Reward(_) => None,
        })
        .zip(verdicts)
        .map(|(d, &v)| judge(d, v, rewards.get(&d.id).copied()))
        .collect()
}

/// Per-workload regret accounting, aggregated over every joined
/// decision of one (label, policy) run.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Workload / stream label.
    pub label: String,
    /// Policy name.
    pub policy: String,
    /// Decision records retained in the audit trail.
    pub decisions: u64,
    /// Decisions joined to an oracle verdict.
    pub joined: u64,
    /// Audit records dropped at record time (log full).
    pub dropped: u64,
    /// Decisions with a joined reward record.
    pub rewarded: u64,
    /// Decisions where ε-greedy exploration overrode the greedy choice.
    pub explored: u64,
    /// Hit ratio the agent realized over the audited sequence.
    pub realized_hit_ratio: f64,
    /// Belady bound over the same sequence.
    pub min_hit_ratio: f64,
    /// Decisions contradicting the oracle.
    pub diverged: u64,
    /// Miss-side decisions and their divergences.
    pub miss_decisions: u64,
    /// Miss-side divergences.
    pub miss_diverged: u64,
    /// Inserted a block MIN never retains to a hit (pollution).
    pub insert_when_dead: u64,
    /// Bypassed a block MIN retains to a hit (lost hit).
    pub bypass_when_alive: u64,
    /// Hit-side decisions.
    pub hit_decisions: u64,
    /// Hit-side divergences.
    pub hit_diverged: u64,
    /// Protected a line MIN lets die.
    pub protect_when_dead: u64,
    /// Demoted a line MIN keeps to its next use.
    pub demote_when_alive: u64,
    /// Divergences among explored decisions.
    pub explored_diverged: u64,
    /// How often each feature drove a divergence.
    pub feature_driving: [u64; AUDIT_FEATURES],
    /// Mean |qdelta| per feature over diverging decisions.
    pub feature_mean_abs_qdelta: [f64; AUDIT_FEATURES],
    /// Mean reward of oracle-agreeing rewarded decisions.
    pub mean_reward_agree: f64,
    /// Mean reward of diverging rewarded decisions.
    pub mean_reward_diverge: f64,
    /// Fraction of rewarded decisions whose reward sign agrees with the
    /// oracle's approval (reward > 0 ⇔ not diverged) — the
    /// reward-vs-realized-outcome calibration figure.
    pub reward_calibration: f64,
}

impl Summary {
    /// Diverging fraction of joined decisions.
    pub fn divergence_rate(&self) -> f64 {
        if self.joined == 0 {
            0.0
        } else {
            self.diverged as f64 / self.joined as f64
        }
    }

    /// Joined fraction of retained decisions.
    pub fn join_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.joined as f64 / self.decisions as f64
        }
    }

    /// One JSONL line (self-describing, append-friendly).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"label\":\"{}\",\"policy\":\"{}\",\"decisions\":{},\"joined\":{},\
             \"join_rate\":{:.6},\"dropped\":{},\"rewarded\":{},\"explored\":{},\
             \"realized_hit_ratio\":{:.6},\"min_hit_ratio\":{:.6},\
             \"diverged\":{},\"divergence_rate\":{:.6},\
             \"miss_decisions\":{},\"miss_diverged\":{},\
             \"insert_when_dead\":{},\"bypass_when_alive\":{},\
             \"hit_decisions\":{},\"hit_diverged\":{},\
             \"protect_when_dead\":{},\"demote_when_alive\":{},\
             \"explored_diverged\":{},\
             \"feature_driving\":[{},{}],\
             \"feature_mean_abs_qdelta\":[{:.6},{:.6}],\
             \"mean_reward_agree\":{:.6},\"mean_reward_diverge\":{:.6},\
             \"reward_calibration\":{:.6}}}",
            chrome_exec::json::escape(&self.label),
            chrome_exec::json::escape(&self.policy),
            self.decisions,
            self.joined,
            self.join_rate(),
            self.dropped,
            self.rewarded,
            self.explored,
            self.realized_hit_ratio,
            self.min_hit_ratio,
            self.diverged,
            self.divergence_rate(),
            self.miss_decisions,
            self.miss_diverged,
            self.insert_when_dead,
            self.bypass_when_alive,
            self.hit_decisions,
            self.hit_diverged,
            self.protect_when_dead,
            self.demote_when_alive,
            self.explored_diverged,
            self.feature_driving[0],
            self.feature_driving[1],
            self.feature_mean_abs_qdelta[0],
            self.feature_mean_abs_qdelta[1],
            self.mean_reward_agree,
            self.mean_reward_diverge,
            self.reward_calibration,
        )
    }
}

/// Aggregate joined decisions from all segments of one run.
pub fn summarize(
    label: &str,
    policy: &str,
    segments: &[AuditSegment],
    joined: &[Vec<JoinedDecision>],
) -> Summary {
    let mut s = Summary {
        label: label.to_string(),
        policy: policy.to_string(),
        ..Summary::default()
    };
    let mut abs_qdelta_sum = [0f64; AUDIT_FEATURES];
    let mut reward_agree = (0u64, 0f64); // (count, sum)
    let mut reward_diverge = (0u64, 0f64);
    let mut sign_agreements = 0u64;
    let mut realized_hits = 0u64;
    let mut min_hits = 0u64;
    for seg in segments {
        s.dropped += seg.dropped;
        s.decisions += seg
            .records
            .iter()
            .filter(|r| matches!(r, AuditRecord::Decision(_)))
            .count() as u64;
    }
    for j in joined.iter().flatten() {
        s.joined += 1;
        let d = &j.decision;
        realized_hits += u64::from(d.hit);
        min_hits += u64::from(j.verdict.min_hit);
        s.explored += u64::from(d.explored);
        if d.hit {
            s.hit_decisions += 1;
            if j.diverged {
                s.hit_diverged += 1;
                if j.verdict.survived {
                    s.demote_when_alive += 1;
                } else {
                    s.protect_when_dead += 1;
                }
            }
        } else {
            s.miss_decisions += 1;
            if j.diverged {
                s.miss_diverged += 1;
                if j.verdict.survived {
                    s.bypass_when_alive += 1;
                } else {
                    s.insert_when_dead += 1;
                }
            }
        }
        if j.diverged {
            s.diverged += 1;
            s.explored_diverged += u64::from(d.explored);
            s.feature_driving[j.driving_feature as usize] += 1;
            for (sum, dq) in abs_qdelta_sum.iter_mut().zip(&j.qdelta) {
                *sum += f64::from(dq.abs());
            }
        }
        if let Some(r) = j.reward {
            s.rewarded += 1;
            if j.diverged {
                reward_diverge.0 += 1;
                reward_diverge.1 += r;
            } else {
                reward_agree.0 += 1;
                reward_agree.1 += r;
            }
            if (r > 0.0) != j.diverged {
                sign_agreements += 1;
            }
        }
    }
    if s.joined > 0 {
        s.realized_hit_ratio = realized_hits as f64 / s.joined as f64;
        s.min_hit_ratio = min_hits as f64 / s.joined as f64;
    }
    if s.diverged > 0 {
        for (mean, sum) in s.feature_mean_abs_qdelta.iter_mut().zip(&abs_qdelta_sum) {
            *mean = sum / s.diverged as f64;
        }
    }
    if reward_agree.0 > 0 {
        s.mean_reward_agree = reward_agree.1 / reward_agree.0 as f64;
    }
    if reward_diverge.0 > 0 {
        s.mean_reward_diverge = reward_diverge.1 / reward_diverge.0 as f64;
    }
    if s.rewarded > 0 {
        s.reward_calibration = sign_agreements as f64 / s.rewarded as f64;
    }
    s
}

/// Render the full markdown report: the summary table, a per-run "why"
/// narrative, and CHROME-vs-ablation deltas where both are present.
pub fn render_markdown(title: &str, feature_names: &[&str], summaries: &[Summary]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# Forensics report: {title}\n\n"));
    out.push_str(
        "| label | policy | decisions | joined | hit% | MIN% | diverge% | \
         miss div | hit div | calibration |\n\
         |---|---|---|---|---|---|---|---|---|---|\n",
    );
    for s in summaries {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1}% | {:.2}% | {:.2}% | {:.2}% | {} | {} | {:.2} |\n",
            s.label,
            s.policy,
            s.decisions,
            s.join_rate() * 100.0,
            s.realized_hit_ratio * 100.0,
            s.min_hit_ratio * 100.0,
            s.divergence_rate() * 100.0,
            s.miss_diverged,
            s.hit_diverged,
            s.reward_calibration,
        ));
    }
    out.push('\n');
    for s in summaries {
        out.push_str(&format!("## {} / {}\n\n", s.label, s.policy));
        out.push_str(&format!(
            "{} of {} joined decisions diverged from Belady ({:.2}%); the run realized a \
             {:.2}% hit ratio against a {:.2}% clairvoyant bound.\n\n",
            s.diverged,
            s.joined,
            s.divergence_rate() * 100.0,
            s.realized_hit_ratio * 100.0,
            s.min_hit_ratio * 100.0,
        ));
        out.push_str(&format!(
            "- miss side: {} of {} diverged — {} polluting inserts of never-reused blocks, \
             {} bypasses of blocks MIN retains to a hit\n",
            s.miss_diverged, s.miss_decisions, s.insert_when_dead, s.bypass_when_alive,
        ));
        out.push_str(&format!(
            "- hit side: {} of {} diverged — {} protections of dying lines, {} early-eviction \
             marks on lines MIN keeps\n",
            s.hit_diverged, s.hit_decisions, s.protect_when_dead, s.demote_when_alive,
        ));
        if s.diverged > 0 {
            let total: u64 = s.feature_driving.iter().sum();
            let top = (0..AUDIT_FEATURES)
                .max_by_key(|&f| s.feature_driving[f])
                .unwrap_or(0);
            let name = feature_names.get(top).copied().unwrap_or("feature");
            out.push_str(&format!(
                "- attribution: `{}` drove {} of {} divergences ({:.0}%), mean |ΔQ| {:.3} \
                 vs {:.3} for the other feature\n",
                name,
                s.feature_driving[top],
                total,
                if total > 0 {
                    s.feature_driving[top] as f64 / total as f64 * 100.0
                } else {
                    0.0
                },
                s.feature_mean_abs_qdelta[top],
                s.feature_mean_abs_qdelta[1 - top.min(1)],
            ));
        }
        out.push_str(&format!(
            "- calibration: rewarded decisions agree with the oracle's sign {:.0}% of the \
             time (mean reward {:.3} when agreeing, {:.3} when diverging); {} of {} \
             divergences came from ε-exploration\n\n",
            s.reward_calibration * 100.0,
            s.mean_reward_agree,
            s.mean_reward_diverge,
            s.explored_diverged,
            s.diverged,
        ));
    }
    // ablation deltas: pair each label's first two policies
    let mut labels: Vec<&str> = summaries.iter().map(|s| s.label.as_str()).collect();
    labels.dedup();
    for label in labels {
        let of_label: Vec<&Summary> = summaries.iter().filter(|s| s.label == label).collect();
        if of_label.len() >= 2 {
            let (a, b) = (of_label[0], of_label[1]);
            out.push_str(&format!(
                "**{} vs {} on {}**: divergence {:.2}% vs {:.2}% ({:+.2} pts), hit ratio \
                 {:.2}% vs {:.2}% ({:+.2} pts against a shared {:.2}% MIN bound).\n\n",
                a.policy,
                b.policy,
                label,
                a.divergence_rate() * 100.0,
                b.divergence_rate() * 100.0,
                (a.divergence_rate() - b.divergence_rate()) * 100.0,
                a.realized_hit_ratio * 100.0,
                b.realized_hit_ratio * 100.0,
                (a.realized_hit_ratio - b.realized_hit_ratio) * 100.0,
                a.min_hit_ratio * 100.0,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chrome_telemetry::{AuditLog, RewardRecord, AUDIT_ACTIONS};

    fn decision(id: u64, key: u64, hit: bool, action: u8) -> DecisionRecord {
        let mut q = [[0f32; AUDIT_ACTIONS]; AUDIT_FEATURES];
        // feature 0 strongly favors the chosen action
        q[0][action as usize] = 2.0;
        q[1][action as usize] = 0.5;
        DecisionRecord {
            id,
            key,
            state: [key * 3, key * 7],
            lane: 0,
            features: 2,
            action,
            hit,
            sampled: true,
            explored: id.is_multiple_of(4),
            q,
        }
    }

    #[test]
    fn miss_divergence_is_insert_vs_survival() {
        let dead = OracleVerdict {
            min_hit: false,
            reused: false,
            survived: false,
        };
        let alive = OracleVerdict {
            min_hit: false,
            reused: true,
            survived: true,
        };
        // inserted a dead block: diverged, oracle prefers bypass
        let j = judge(&decision(0, 1, false, 2), dead, None);
        assert!(j.diverged);
        assert_eq!(j.oracle_action, 0);
        assert_eq!(j.driving_feature, 0, "feature 0 held the larger vote");
        // bypassed a live block: diverged, oracle prefers an insert
        let j = judge(&decision(1, 1, false, 0), alive, None);
        assert!(j.diverged);
        assert!(MISS_INSERTS.contains(&(j.oracle_action as usize)));
        // inserted a live block: agreement
        assert!(!judge(&decision(2, 1, false, 3), alive, None).diverged);
        // bypassed a dead block: agreement
        assert!(!judge(&decision(3, 1, false, 0), dead, None).diverged);
    }

    #[test]
    fn hit_divergence_is_demotion_vs_survival() {
        let stays = OracleVerdict {
            min_hit: true,
            reused: true,
            survived: true,
        };
        let dies = OracleVerdict {
            min_hit: true,
            reused: true,
            survived: false,
        };
        assert!(judge(&decision(0, 1, true, 6), stays, None).diverged);
        assert!(judge(&decision(1, 1, true, 4), dies, None).diverged);
        assert_eq!(judge(&decision(2, 1, true, 4), dies, None).oracle_action, 6);
        assert!(!judge(&decision(3, 1, true, 5), stays, None).diverged);
        assert!(!judge(&decision(4, 1, true, 6), dies, None).diverged);
    }

    #[test]
    fn join_pairs_positionally_and_by_id() {
        let mut log = AuditLog::new(0, 64);
        log.push_decision(decision(10, 1, false, 2));
        log.push_decision(decision(11, 2, false, 0));
        log.push_reward(RewardRecord {
            id: 10,
            matched: true,
            reward: 5.0,
        });
        let segs = chrome_telemetry::parse_audit(&log.to_bytes()).unwrap();
        let verdicts = vec![OracleVerdict::default(); 2];
        let joined = join_segment(&segs[0], &verdicts);
        assert_eq!(joined.len(), 2);
        assert_eq!(joined[0].reward, Some(5.0));
        assert_eq!(joined[1].reward, None);
    }

    #[test]
    fn summary_accounting_and_render() {
        let mut log = AuditLog::new(0, 64);
        log.push_decision(decision(0, 1, false, 2)); // insert, dead -> diverge
        log.push_decision(decision(1, 2, false, 0)); // bypass, dead -> agree
        log.push_decision(decision(2, 3, true, 6)); // demote, survives -> diverge
        log.push_reward(RewardRecord {
            id: 1,
            matched: false,
            reward: 3.0,
        });
        let segs = chrome_telemetry::parse_audit(&log.to_bytes()).unwrap();
        let dead = OracleVerdict::default();
        let stays = OracleVerdict {
            min_hit: true,
            reused: true,
            survived: true,
        };
        let joined = vec![join_segment(&segs[0], &[dead, dead, stays])];
        let s = summarize("toy", "CHROME", &segs, &joined);
        assert_eq!(s.decisions, 3);
        assert_eq!(s.joined, 3);
        assert_eq!(s.diverged, 2);
        assert_eq!(s.insert_when_dead, 1);
        assert_eq!(s.demote_when_alive, 1);
        assert_eq!(s.rewarded, 1);
        assert!((s.reward_calibration - 1.0).abs() < 1e-12);
        assert!((s.divergence_rate() - 2.0 / 3.0).abs() < 1e-12);
        let json = s.to_json();
        assert!(chrome_exec::json::parse(&json).is_some(), "JSONL parses");
        let md = render_markdown("toy", &["pc", "pn"], &[s]);
        assert!(md.contains("diverged from Belady"));
        assert!(md.contains("| toy | CHROME |"));
    }
}
