//! Audited serving-cache runs: drive the sharded KV cache with the
//! CHROME policy (or its concurrency-unaware ablation), audit every
//! shard's decisions, and compute the per-shard next-request oracle.
//!
//! Each shard is its own audit stream and its own oracle group: the
//! shard router is a pure key hash, so a shard's decision sequence is
//! exactly its request subsequence. The oracle is size-aware — object
//! sizes are a pure function of the key (the same function the cache
//! uses), so MIN plays against the genuine slot *and* byte budgets.
//!
//! `stream_join` cross-checks the audit against an independently
//! regenerated request stream: the k-th audited decision of shard `s`
//! must carry the key of the k-th generated request routed to `s`.
//! That validates the join the reports rely on end to end.

use chrome_exec::workload_seed;
use chrome_serve::{bench, BenchParams, BenchResult, Request, RequestStream};
use chrome_sim::types::mix64;
use chrome_telemetry::{parse_audit, AuditSegment};

use crate::oracle::{min_oracle, GroupCapacity, OracleVerdict};
use crate::simrun::decision_keys;

/// One audited serve run with its oracle verdicts.
#[derive(Debug)]
pub struct ServeRun {
    /// Benchmark outcome (policy name inside).
    pub result: BenchResult,
    /// Parsed audit segments, one per shard, in shard order.
    pub segments: Vec<AuditSegment>,
    /// Oracle verdicts aligned with each segment's decision sequence.
    pub verdicts: Vec<Vec<OracleVerdict>>,
    /// Fraction of audited decisions whose key matches the
    /// independently regenerated request stream (1.0 = perfect join).
    pub stream_join: f64,
}

/// Object size for `key` — the cache's own key-pure size function.
fn size_of(key: u64) -> u64 {
    u64::from(Request { key, tenant: 0 }.size())
}

/// Run one audited serve cell and compute the per-shard oracle.
pub fn run_serve(p: &BenchParams, audit_cap: usize) -> Result<ServeRun, String> {
    let (result, blob) = bench::run_audited(p, audit_cap);
    let segments = parse_audit(&blob)?;
    let verdicts: Vec<Vec<OracleVerdict>> = segments
        .iter()
        .map(|seg| {
            let keys = decision_keys(seg);
            min_oracle(
                &keys,
                GroupCapacity {
                    slots: p.shard_slots,
                    bytes: Some(p.shard_bytes),
                },
                |_| 0, // a segment IS one shard: a single group
                size_of,
            )
        })
        .collect();

    // regenerate the stream and replay the router to validate the join
    let stream_seed = workload_seed(p.stream.name(), p.shards as u32, p.seed);
    let requests = RequestStream::generate(p.stream, p.requests, p.keyspace, stream_seed);
    let mask = (p.shards - 1) as u64;
    let mut expected: Vec<Vec<u64>> = vec![Vec::new(); p.shards];
    for r in &requests {
        expected[(mix64(r.key) & mask) as usize].push(r.key);
    }
    let mut total = 0u64;
    let mut matched = 0u64;
    for seg in &segments {
        let audited = decision_keys(seg);
        let want = &expected[seg.stream as usize];
        total += audited.len() as u64;
        matched += audited.iter().zip(want).filter(|(a, b)| a == b).count() as u64;
    }
    let stream_join = if total == 0 {
        0.0
    } else {
        matched as f64 / total as f64
    };
    Ok(ServeRun {
        result,
        segments,
        verdicts,
        stream_join,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chrome_serve::{PolicyKind, StreamKind};

    fn quick(policy: PolicyKind) -> BenchParams {
        BenchParams {
            policy,
            stream: StreamKind::MixedTenant,
            threads: 4,
            requests: 20_000,
            keyspace: 4_000,
            shards: 8,
            shard_slots: 128,
            shard_bytes: 64 * 1024,
            ..BenchParams::default()
        }
    }

    #[test]
    fn serve_run_joins_the_regenerated_stream_exactly() {
        let run = run_serve(&quick(PolicyKind::Chrome), 1 << 20).expect("runs");
        assert_eq!(run.segments.len(), 8, "one segment per shard");
        assert!(
            (run.stream_join - 1.0).abs() < 1e-12,
            "positional key join must be perfect, got {}",
            run.stream_join
        );
        let decisions: usize = run.verdicts.iter().map(Vec::len).sum();
        assert_eq!(decisions as u64, run.result.stats.requests);
        // the oracle's bound dominates the realized hit ratio
        let min_hits: usize = run.verdicts.iter().flatten().filter(|v| v.min_hit).count();
        assert!(min_hits as f64 / decisions as f64 >= run.result.stats.hit_ratio());
    }

    #[test]
    fn unaware_ablation_runs_too() {
        let run = run_serve(&quick(PolicyKind::ChromeNc), 1 << 20).expect("runs");
        assert_eq!(run.result.policy, "chrome-nc");
        assert!((run.stream_join - 1.0).abs() < 1e-12);
    }
}
