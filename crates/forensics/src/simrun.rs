//! Audited hardware-simulation runs: drive the cycle simulator with
//! CHROME (or its concurrency-unaware ablation) at the LLC, audit
//! every decision, and compute the per-set Belady oracle over the
//! audited access sequence.
//!
//! The oracle's grouping mirrors the LLC exactly: the audit key is the
//! line address and `set = line & (num_sets − 1)` (the simulator's own
//! mapping), so MIN with `ways` slots per set is the clairvoyant
//! counterpart of the real cache the agent managed.

use std::path::Path;

use chrome_core::{Chrome, ChromeConfig};
use chrome_sim::{SimConfig, SimResults, System};
use chrome_telemetry::{parse_audit, AuditRecord, AuditSegment};
use chrome_tracefile::TraceFile;

use crate::oracle::{min_oracle, GroupCapacity, OracleVerdict};

/// Where the access stream comes from.
#[derive(Debug, Clone)]
pub enum SimSource {
    /// A named in-repo workload generator, run homogeneously on every
    /// core.
    Workload(String),
    /// A recorded `.ctf` trace file (cores come from its manifest).
    Trace(std::path::PathBuf),
}

/// Parameters for one audited hardware run.
#[derive(Debug, Clone)]
pub struct SimSpec {
    /// Access stream.
    pub source: SimSource,
    /// Cores (ignored for traces, which bring their own count).
    pub cores: usize,
    /// Measured instructions per core.
    pub instructions: u64,
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Workload seed.
    pub seed: u64,
    /// Audit-log record cap.
    pub audit_cap: usize,
}

impl Default for SimSpec {
    fn default() -> Self {
        SimSpec {
            source: SimSource::Workload("mcf".to_string()),
            cores: 2,
            instructions: 1_000_000,
            warmup: 100_000,
            seed: 0x5EED,
            audit_cap: 1 << 22,
        }
    }
}

/// One audited run with its oracle verdicts.
#[derive(Debug)]
pub struct HardwareRun {
    /// Scheme label ("CHROME" or "N-CHROME").
    pub scheme: &'static str,
    /// Raw simulation results.
    pub results: SimResults,
    /// Parsed audit segments (one: the LLC records stream 0).
    pub segments: Vec<AuditSegment>,
    /// Oracle verdicts aligned with each segment's decision sequence.
    pub verdicts: Vec<Vec<OracleVerdict>>,
}

/// The decision-key sequence of one segment, in recorded order.
pub fn decision_keys(seg: &AuditSegment) -> Vec<u64> {
    seg.records
        .iter()
        .filter_map(|r| match r {
            AuditRecord::Decision(d) => Some(d.key),
            AuditRecord::Reward(_) => None,
        })
        .collect()
}

/// CHROME configured like the experiment registry: more sampled sets
/// and a shorter EQ window than the paper's 200M-instruction runs,
/// scaled for the shorter audited runs.
fn chrome_cfg(concurrency_aware: bool) -> ChromeConfig {
    ChromeConfig {
        sampled_sets: 512,
        eq_fifo_len: 8,
        concurrency_aware,
        ..ChromeConfig::default()
    }
}

fn trace_sources(
    spec: &SimSpec,
) -> Result<(Vec<Box<dyn chrome_sim::trace::TraceSource>>, usize), String> {
    match &spec.source {
        SimSource::Workload(name) => {
            let traces = chrome_traces::mix::homogeneous(name, spec.cores, spec.seed)
                .ok_or_else(|| format!("unknown workload {name}"))?;
            Ok((traces, spec.cores))
        }
        SimSource::Trace(path) => {
            let file = TraceFile::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
            let cores = file.manifest().cores.len();
            let sources = file
                .sources()
                .map_err(|e| format!("{}: {e}", path.display()))?;
            Ok((sources, cores))
        }
    }
}

/// Run one audited hardware simulation and compute its oracle.
///
/// # Errors
///
/// Returns a message for unknown workloads, unreadable trace files, or
/// a malformed audit blob (which would be a bug).
pub fn run_hardware(spec: &SimSpec, concurrency_aware: bool) -> Result<HardwareRun, String> {
    let (traces, cores) = trace_sources(spec)?;
    let cfg = SimConfig::with_cores(cores);
    let num_sets = cfg.llc().sets() as u64;
    let ways = cfg.llc_ways;
    let policy = Box::new(Chrome::new(chrome_cfg(concurrency_aware)));
    let mut sys = System::with_policy(cfg, traces, policy);
    assert!(
        sys.enable_audit(0, spec.audit_cap),
        "CHROME is auditable by construction"
    );
    let results = sys.run(spec.instructions, spec.warmup);
    let segments = parse_audit(&sys.audit_bytes())?;
    let verdicts = segments
        .iter()
        .map(|seg| {
            let keys = decision_keys(seg);
            min_oracle(
                &keys,
                GroupCapacity {
                    slots: ways,
                    bytes: None,
                },
                |k| k & (num_sets - 1),
                |_| 1,
            )
        })
        .collect();
    Ok(HardwareRun {
        scheme: if concurrency_aware {
            "CHROME"
        } else {
            "N-CHROME"
        },
        results,
        segments,
        verdicts,
    })
}

/// Standalone Belady bound for a raw `.ctf` trace: round-robin
/// interleave of every core's memory accesses against the Table V LLC
/// of the trace's core count, line = `vaddr >> 6`.
///
/// # Errors
///
/// Returns a message when the trace cannot be read.
pub fn trace_min_bound(path: &Path) -> Result<(u64, f64), String> {
    let file = TraceFile::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let cores = file.manifest().cores.len();
    let cfg = SimConfig::with_cores(cores);
    let num_sets = cfg.llc().sets() as u64;
    let per_core: Vec<Vec<u64>> = (0..cores)
        .map(|c| {
            file.decode_core(c)
                .map(|recs| recs.iter().map(|r| r.vaddr >> 6).collect())
                .map_err(|e| format!("{}: {e}", path.display()))
        })
        .collect::<Result<_, _>>()?;
    let mut keys = Vec::with_capacity(per_core.iter().map(Vec::len).sum());
    let longest = per_core.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..longest {
        for lane in &per_core {
            if let Some(&k) = lane.get(i) {
                keys.push(k);
            }
        }
    }
    let verdicts = min_oracle(
        &keys,
        GroupCapacity {
            slots: cfg.llc_ways,
            bytes: None,
        },
        |k| k & (num_sets - 1),
        |_| 1,
    );
    Ok((keys.len() as u64, crate::oracle::min_hit_ratio(&verdicts)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SimSpec {
        SimSpec {
            cores: 1,
            instructions: 60_000,
            warmup: 6_000,
            ..SimSpec::default()
        }
    }

    #[test]
    fn hardware_run_audits_every_llc_decision() {
        let run = run_hardware(&tiny(), true).expect("runs");
        assert_eq!(run.scheme, "CHROME");
        assert_eq!(run.segments.len(), 1, "the LLC records one stream");
        assert_eq!(run.segments[0].stream, 0);
        assert_eq!(run.segments[0].dropped, 0, "cap is generous");
        let keys = decision_keys(&run.segments[0]);
        assert!(!keys.is_empty(), "LLC decisions were recorded");
        assert_eq!(run.verdicts[0].len(), keys.len(), "1:1 join");
        assert!(run.results.llc.demand_accesses > 0);
    }

    #[test]
    fn ablation_changes_the_scheme_label_only() {
        let run = run_hardware(&tiny(), false).expect("runs");
        assert_eq!(run.scheme, "N-CHROME");
        assert!(!decision_keys(&run.segments[0]).is_empty());
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let spec = SimSpec {
            source: SimSource::Workload("nonsense".into()),
            ..tiny()
        };
        assert!(run_hardware(&spec, true).is_err());
    }
}
