//! NoC configuration and its canonical spec-string codec.
//!
//! The config rides inside `CellSpec` (and therefore inside spec
//! hashes) as a string, so the codec is strict about canonical form:
//! [`NocConfig::parse`] accepts any subset of `key=value` pairs and
//! [`NocConfig::canonical`] always renders every field in a fixed
//! order. Binaries canonicalise user input once, at the CLI boundary,
//! so two spellings of the same configuration can never split a
//! checkpoint identity.

/// Mesh NoC timing parameters. `Default` is a plausible small-mesh
/// operating point; the *absence* of a config (an `Option` at the
/// simulator layer) is what "NoC off" means — this struct has no
/// disabled state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocConfig {
    /// Number of address-interleaved LLC slices.
    pub slices: usize,
    /// Router-to-router propagation latency per hop, in cycles.
    pub hop_latency: u64,
    /// Cycles a message occupies each link (serialization: flits at one
    /// flit per cycle).
    pub flits: u64,
    /// Bounded ingress-queue depth per directed link. A full queue
    /// back-pressures: the message waits at the router until the
    /// queue's oldest occupant drains.
    pub queue_depth: usize,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            slices: 4,
            hop_latency: 2,
            flits: 1,
            queue_depth: 8,
        }
    }
}

impl NocConfig {
    /// Parse a `key=value` comma-separated spec, e.g.
    /// `"slices=8,hop=2,flits=1,depth=8"`. Missing keys take their
    /// [`Default`] values; unknown keys and malformed values are
    /// errors (a spec string feeds checkpoint identity, so silent
    /// tolerance would be a footgun).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on unknown keys, malformed
    /// numbers, or out-of-range values (zero slices/flits/depth).
    pub fn parse(spec: &str) -> Result<NocConfig, String> {
        let mut cfg = NocConfig::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("noc spec `{part}`: expected key=value"))?;
            let num: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("noc spec `{part}`: `{value}` is not a number"))?;
            match key.trim() {
                "slices" => cfg.slices = num as usize,
                "hop" => cfg.hop_latency = num,
                "flits" => cfg.flits = num,
                "depth" => cfg.queue_depth = num as usize,
                other => return Err(format!("noc spec: unknown key `{other}`")),
            }
        }
        if cfg.slices == 0 {
            return Err("noc spec: slices must be at least 1".into());
        }
        if cfg.flits == 0 {
            return Err("noc spec: flits must be at least 1".into());
        }
        if cfg.queue_depth == 0 {
            return Err("noc spec: depth must be at least 1".into());
        }
        Ok(cfg)
    }

    /// Fixed-order, every-field rendering. `parse(canonical(c)) == c`
    /// and `canonical` is injective over configs, which is what lets
    /// spec hashes treat the string as the config's identity.
    #[must_use]
    pub fn canonical(&self) -> String {
        format!(
            "slices={},hop={},flits={},depth={}",
            self.slices, self.hop_latency, self.flits, self.queue_depth
        )
    }
}

impl std::fmt::Display for NocConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_default() {
        assert_eq!(NocConfig::parse("").unwrap(), NocConfig::default());
    }

    #[test]
    fn canonical_roundtrips() {
        let cfg = NocConfig {
            slices: 8,
            hop_latency: 3,
            flits: 2,
            queue_depth: 4,
        };
        assert_eq!(NocConfig::parse(&cfg.canonical()).unwrap(), cfg);
        assert_eq!(cfg.canonical(), "slices=8,hop=3,flits=2,depth=4");
    }

    #[test]
    fn partial_spec_fills_defaults() {
        let cfg = NocConfig::parse("slices=2").unwrap();
        assert_eq!(cfg.slices, 2);
        assert_eq!(cfg.hop_latency, NocConfig::default().hop_latency);
    }

    #[test]
    fn rejects_garbage() {
        assert!(NocConfig::parse("slices").is_err());
        assert!(NocConfig::parse("slices=x").is_err());
        assert!(NocConfig::parse("teeth=3").is_err());
        assert!(NocConfig::parse("slices=0").is_err());
        assert!(NocConfig::parse("flits=0").is_err());
        assert!(NocConfig::parse("depth=0").is_err());
    }
}
