//! # chrome-noc — mesh interconnect timing and deterministic parallelism
//!
//! Two self-contained pieces the simulator composes:
//!
//! * [`Mesh`] — a cycle-approximate 2D-mesh network-on-chip timing
//!   model with X-Y dimension-ordered routing and bounded per-link
//!   ingress queues, connecting core tiles to address-interleaved LLC
//!   slice tiles ([`NocConfig`], [`slice_of_set`]).
//! * [`DetPool`] — a deterministic spin-waiting worker pool for
//!   stepping simulator cores in parallel *within* one simulation.
//!   Tasks are claimed dynamically (work-stealing by atomic increment),
//!   which is safe exactly because the simulator only offloads
//!   commutative per-core work; everything order-sensitive stays on the
//!   calling thread.
//!
//! The crate deliberately depends on nothing from `chrome-sim`: it
//! speaks in tile indices and `u64` cycle times, so the simulator owns
//! the mapping from cores, cache sets, and slices onto tiles.

pub mod config;
pub mod mesh;
pub mod pool;

pub use config::NocConfig;
pub use mesh::{slice_of_set, slice_tile, Mesh};
pub use pool::DetPool;
