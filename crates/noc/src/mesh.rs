//! 2D-mesh NoC timing with X-Y routing and bounded ingress queues.
//!
//! # Model
//!
//! Tiles sit on a `width × height` mesh, row-major: tile `t` is at
//! `(t % width, t / width)`. A message from `src` to `dst` follows
//! dimension-ordered X-Y routing — all X hops, then all Y hops — which
//! is deadlock-free and, more importantly here, makes the path a pure
//! function of the endpoints, so timing stays reproducible.
//!
//! Each *directed* link carries a bounded ingress queue modelled as a
//! deque of in-flight completion times. A message traversing a link:
//!
//! 1. drains queue entries that completed at or before its arrival;
//! 2. if the queue is still full (depth `D`), waits until the oldest
//!    occupant completes (back-pressure);
//! 3. starts no earlier than the newest occupant completes (the link
//!    serialises at one flit per cycle), occupies the link for `flits`
//!    cycles, and reaches the next router `hop_latency` cycles after it
//!    started.
//!
//! Contention is therefore resolved in *call order*, which the
//! simulator guarantees is its deterministic program order; two
//! messages with identical cycle stamps never tie-break on anything
//! hidden. The queue-of-completions idiom mirrors the DRAM model's
//! per-bank `busy_until` bookkeeping, extended to depth `D`.

use std::collections::VecDeque;

use crate::config::NocConfig;

/// Address-interleaved slice ownership: LLC set `set` is homed on slice
/// `set % slices`. With power-of-two set counts this is a perfectly
/// balanced, total partition; for any set count the imbalance is at
/// most one set (see the property tests).
#[inline]
#[must_use]
pub fn slice_of_set(set: usize, slices: usize) -> usize {
    if slices.is_power_of_two() {
        set & (slices - 1)
    } else {
        set % slices
    }
}

/// Directed link directions out of a tile.
const EAST: usize = 0;
const WEST: usize = 1;
const SOUTH: usize = 2;
const NORTH: usize = 3;

/// Cycle-approximate mesh interconnect state.
#[derive(Debug, Clone)]
pub struct Mesh {
    cfg: NocConfig,
    width: usize,
    tiles: usize,
    /// Per directed link (`tile * 4 + dir`): completion times of
    /// messages currently occupying the link's ingress queue.
    queues: Vec<VecDeque<u64>>,
    /// Cumulative flit-cycles each link has carried (utilisation).
    link_busy: Vec<u64>,
    /// Cumulative cycles messages stalled waiting for each link.
    link_wait: Vec<u64>,
    /// Total messages routed.
    messages: u64,
}

impl Mesh {
    /// A mesh with at least `tiles` tiles: the smallest near-square
    /// `width × height` grid that fits. Extra grid positions exist
    /// geometrically but are never routed to.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    #[must_use]
    pub fn new(tiles: usize, cfg: NocConfig) -> Self {
        assert!(tiles > 0, "mesh needs at least one tile");
        let width = (tiles as f64).sqrt().ceil() as usize;
        // Link state covers the full geometric grid, not just the
        // addressable tiles: an X-Y route between two valid tiles can
        // turn at a grid position past the last tile (e.g. 8 tiles on a
        // 3x3 grid routing (1,2) -> (2,1) turns at (2,2)).
        let height = tiles.div_ceil(width);
        let grid = width * height;
        Mesh {
            cfg,
            width,
            tiles,
            queues: vec![VecDeque::new(); grid * 4],
            link_busy: vec![0; grid * 4],
            link_wait: vec![0; grid * 4],
            messages: 0,
        }
    }

    /// Number of addressable tiles.
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Mesh width (tiles per row).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of directed link slots (four per geometric grid position;
    /// edge slots exist but stay idle).
    #[must_use]
    pub fn links(&self) -> usize {
        self.queues.len()
    }

    /// Hop count of the X-Y path between two tiles (Manhattan distance).
    #[must_use]
    pub fn hops(&self, src: usize, dst: usize) -> u64 {
        let (sx, sy) = (src % self.width, src / self.width);
        let (dx, dy) = (dst % self.width, dst / self.width);
        (sx.abs_diff(dx) + sy.abs_diff(dy)) as u64
    }

    /// Route one message from `src` to `dst`, departing at cycle
    /// `depart`; returns its arrival cycle at `dst`. `src == dst` is a
    /// tile-local transfer and free.
    pub fn route(&mut self, src: usize, dst: usize, depart: u64) -> u64 {
        self.messages += 1;
        if src == dst {
            return depart;
        }
        let (mut x, mut y) = (src % self.width, src / self.width);
        let (dx, dy) = (dst % self.width, dst / self.width);
        let mut t = depart;
        while x != dx {
            let (dir, nx) = if x < dx { (EAST, x + 1) } else { (WEST, x - 1) };
            t = self.traverse((y * self.width + x) * 4 + dir, t);
            x = nx;
        }
        while y != dy {
            let (dir, ny) = if y < dy {
                (SOUTH, y + 1)
            } else {
                (NORTH, y - 1)
            };
            t = self.traverse((y * self.width + x) * 4 + dir, t);
            y = ny;
        }
        t
    }

    /// Claim `link` for one message arriving at its router at `arrival`;
    /// returns the arrival time at the next router.
    fn traverse(&mut self, link: usize, arrival: u64) -> u64 {
        let q = &mut self.queues[link];
        while q.front().is_some_and(|&done| done <= arrival) {
            q.pop_front();
        }
        let mut start = arrival;
        if q.len() >= self.cfg.queue_depth {
            // bounded ingress: wait for the oldest occupant to drain
            start = start.max(q.pop_front().unwrap_or(start));
        }
        if let Some(&back) = q.back() {
            start = start.max(back);
        }
        q.push_back(start + self.cfg.flits);
        self.link_busy[link] += self.cfg.flits;
        self.link_wait[link] += start - arrival;
        start + self.cfg.hop_latency
    }

    /// Cumulative flit-cycles carried, per directed link.
    #[must_use]
    pub fn link_busy(&self) -> &[u64] {
        &self.link_busy
    }

    /// Cumulative stall cycles, per directed link.
    #[must_use]
    pub fn link_wait(&self) -> &[u64] {
        &self.link_wait
    }

    /// Total messages routed so far.
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.messages
    }
}

/// Home tile of slice `slice` out of `slices`, spread evenly across
/// `tiles` tile positions (slices are co-located with core tiles).
#[inline]
#[must_use]
pub fn slice_tile(slice: usize, slices: usize, tiles: usize) -> usize {
    debug_assert!(slice < slices);
    slice * tiles / slices
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(tiles: usize) -> Mesh {
        Mesh::new(tiles, NocConfig::default())
    }

    #[test]
    fn zero_load_latency_is_hops_times_hop_latency() {
        let mut m = mesh(16); // 4x4
        let cfg = NocConfig::default();
        // tile 0 -> tile 15: 3 X hops + 3 Y hops
        assert_eq!(m.hops(0, 15), 6);
        assert_eq!(m.route(0, 15, 100), 100 + 6 * cfg.hop_latency);
        // local transfer is free
        assert_eq!(m.route(5, 5, 42), 42);
    }

    #[test]
    fn contention_serialises_on_a_shared_link() {
        let cfg = NocConfig {
            slices: 1,
            hop_latency: 1,
            flits: 4,
            queue_depth: 8,
        };
        let mut m = Mesh::new(4, cfg); // 2x2
                                       // two messages over the same link at the same cycle: the second
                                       // starts after the first's 4 serialization cycles
        let a = m.route(0, 1, 10);
        let b = m.route(0, 1, 10);
        assert_eq!(a, 11);
        assert_eq!(b, 15);
        assert_eq!(m.link_wait().iter().sum::<u64>(), 4);
        assert_eq!(m.link_busy().iter().sum::<u64>(), 8);
    }

    #[test]
    fn full_queue_back_pressures() {
        let cfg = NocConfig {
            slices: 1,
            hop_latency: 1,
            flits: 2,
            queue_depth: 2,
        };
        let mut m = Mesh::new(4, cfg);
        // fill the 0->1 link's queue at cycle 0: occupants end at 2, 4
        assert_eq!(m.route(0, 1, 0), 1);
        assert_eq!(m.route(0, 1, 0), 3);
        // queue full: the third waits for the first occupant (done=2)
        let c = m.route(0, 1, 0);
        assert_eq!(c, 5); // start = max(2 wait, 4 back) = 4, +1 hop
    }

    #[test]
    fn queues_drain_with_time() {
        let cfg = NocConfig {
            slices: 1,
            hop_latency: 1,
            flits: 4,
            queue_depth: 2,
        };
        let mut m = Mesh::new(4, cfg);
        m.route(0, 1, 0);
        m.route(0, 1, 0);
        // far in the future: both occupants long gone, zero-load again
        assert_eq!(m.route(0, 1, 1_000), 1_001);
    }

    #[test]
    fn routing_is_deterministic() {
        let mut a = mesh(64);
        let mut b = mesh(64);
        for i in 0..1_000u64 {
            let (s, d) = ((i * 7 % 64) as usize, (i * 13 % 64) as usize);
            assert_eq!(a.route(s, d, i / 3), b.route(s, d, i / 3));
        }
        assert_eq!(a.link_busy(), b.link_busy());
        assert_eq!(a.messages(), 1_000);
    }

    #[test]
    fn routes_may_turn_past_the_last_tile() {
        // 8 tiles on a 3x3 grid: (1,2) -> (2,1) turns at grid position
        // (2,2), which is not an addressable tile. Regression test for
        // link arrays sized to tiles instead of the full grid.
        let mut m = mesh(8);
        assert_eq!(m.width(), 3);
        let arrive = m.route(7, 5, 0);
        assert_eq!(arrive, 2 * NocConfig::default().hop_latency);
    }

    #[test]
    fn slice_mapping_is_total_and_balanced() {
        // the satellite property: every LLC set owned by exactly one
        // slice, with at most ±1 imbalance, across slice counts
        for &slices in &[1usize, 2, 4, 8] {
            for &sets in &[64usize, 128, 1024, 4096, 96, 100] {
                let mut owned = vec![0u64; slices];
                for set in 0..sets {
                    let s = slice_of_set(set, slices);
                    assert!(s < slices, "set {set} maps outside {slices} slices");
                    owned[s] += 1;
                }
                let (min, max) = (*owned.iter().min().unwrap(), *owned.iter().max().unwrap());
                assert!(
                    max - min <= 1,
                    "{slices} slices over {sets} sets: imbalance {owned:?}"
                );
                assert_eq!(owned.iter().sum::<u64>(), sets as u64, "partition is total");
            }
        }
    }

    #[test]
    fn slice_tiles_spread_across_the_mesh() {
        let tiles = 16;
        let homes: Vec<usize> = (0..4).map(|s| slice_tile(s, 4, tiles)).collect();
        assert_eq!(homes, vec![0, 4, 8, 12]);
        // distinct whenever slices <= tiles
        let mut dedup = homes.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), homes.len());
    }
}
