//! A deterministic spin-waiting worker pool for intra-simulation
//! parallelism.
//!
//! The simulator steps cores millions of times per second, so a round
//! here must cost microseconds: workers are persistent and spin-wait on
//! an atomic round counter instead of sleeping on a condvar (condvar
//! wake latency alone would exceed a whole sequential round at these
//! granularities). Within a round, tasks `0..n` are claimed dynamically
//! by atomic increment — work-stealing in effect: a fast worker drains
//! whatever a slow one has not claimed. This is only sound because the
//! caller promises tasks are mutually independent; the simulator keeps
//! every order-sensitive effect on the calling thread.
//!
//! Determinism therefore does not come from the pool scheduling (which
//! is racy by design) but from the *task structure*: each task reads
//! and writes state private to its index, so any claim order produces
//! the same memory contents at the round barrier.
//!
//! # Round protocol
//!
//! All claim state is round-tagged. The claim word packs
//! `(round << 24) | next`, so a straggler from a previous round can
//! never claim an index of the current one: its compare-exchange
//! carries the stale round tag and fails. The job pointer is published
//! under a mutex together with its round, and validated against the
//! claim word's round before use; the per-round task count is packed
//! with the round the same way. A claimed task holds the round open
//! (the caller waits for `done == tasks`), so the job closure outlives
//! every invocation despite being borrowed from the caller's stack.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Bits of the claim word holding the next-task index; the rest hold
/// the round tag. 2^24 tasks per round is far beyond any core count.
const NEXT_BITS: u32 = 24;
const NEXT_MASK: u64 = (1 << NEXT_BITS) - 1;
const ROUND_MASK: u64 = u64::MAX >> NEXT_BITS;

/// Type-erased job: the caller's closure with its lifetime erased. The
/// round protocol guarantees no invocation outlives [`DetPool::run`].
type RawJob = *const (dyn Fn(usize) + Sync + 'static);

struct JobSlot {
    round: u64,
    job: Option<RawJob>,
}

// SAFETY: the raw pointer is only dereferenced by workers holding a
// claim for the matching round, and `run` does not return until every
// claim of its round is done; the pointee is `Sync`.
unsafe impl Send for JobSlot {}

struct Shared {
    /// `(round << NEXT_BITS) | next_unclaimed_task`.
    claim: AtomicU64,
    /// `(round << NEXT_BITS) | task_count`, published before `claim`.
    tasks: AtomicU64,
    /// Completed tasks in the current round.
    done: AtomicU64,
    job: Mutex<JobSlot>,
    shutdown: AtomicBool,
}

/// Persistent deterministic task pool. `run` executes `f(0..tasks)`
/// across the pool (the calling thread participates) and returns after
/// every task completed — a full barrier.
pub struct DetPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    round: u64,
}

impl std::fmt::Debug for DetPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetPool")
            .field("parallelism", &self.parallelism())
            .field("round", &self.round)
            .finish()
    }
}

impl DetPool {
    /// A pool with total parallelism `threads` (the calling thread
    /// counts as one, so `threads - 1` workers are spawned).
    /// `threads <= 1` spawns nothing and `run` degrades to a plain
    /// sequential loop.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            claim: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            done: AtomicU64::new(0),
            job: Mutex::new(JobSlot {
                round: 0,
                job: None,
            }),
            shutdown: AtomicBool::new(false),
        });
        let handles = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker(&shared))
            })
            .collect();
        DetPool {
            shared,
            handles,
            round: 0,
        }
    }

    /// Total parallelism (workers + the calling thread).
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.handles.len() + 1
    }

    /// Run `f(i)` for every `i in 0..tasks` across the pool and wait
    /// for all of them. Tasks must be mutually independent; claim order
    /// is unspecified.
    pub fn run(&mut self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        assert!(tasks as u64 <= NEXT_MASK, "too many tasks for one round");
        if self.handles.is_empty() || tasks <= 1 {
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        self.round = (self.round + 1) & ROUND_MASK;
        let round = self.round;
        let s = &*self.shared;
        {
            // SAFETY: erases the borrow lifetime; see JobSlot's Send
            // justification — no call survives this function.
            let raw: RawJob = unsafe {
                std::mem::transmute::<*const (dyn Fn(usize) + Sync), RawJob>(
                    f as *const (dyn Fn(usize) + Sync),
                )
            };
            let mut slot = s.job.lock().unwrap();
            slot.round = round;
            slot.job = Some(raw);
        }
        s.tasks
            .store(round << NEXT_BITS | tasks as u64, Ordering::Release);
        s.done.store(0, Ordering::Release);
        s.claim.store(round << NEXT_BITS, Ordering::Release);
        // the calling thread claims alongside the workers
        loop {
            let c = s.claim.load(Ordering::Acquire);
            let i = c & NEXT_MASK;
            if c >> NEXT_BITS != round || i >= tasks as u64 {
                break;
            }
            if s.claim
                .compare_exchange_weak(c, c + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                f(i as usize);
                s.done.fetch_add(1, Ordering::Release);
            }
        }
        while s.done.load(Ordering::Acquire) < tasks as u64 {
            std::hint::spin_loop();
        }
    }
}

impl Drop for DetPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker(s: &Shared) {
    let mut last = 0u64;
    let mut spins = 0u32;
    loop {
        if s.shutdown.load(Ordering::Acquire) {
            return;
        }
        let c = s.claim.load(Ordering::Acquire);
        let round = c >> NEXT_BITS;
        if round == last {
            spins += 1;
            if spins < 1 << 12 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
            continue;
        }
        spins = 0;
        let t = s.tasks.load(Ordering::Acquire);
        if t >> NEXT_BITS != round {
            continue; // torn snapshot across a round boundary; reload
        }
        let tasks = t & NEXT_MASK;
        let i = c & NEXT_MASK;
        if i >= tasks {
            last = round; // arrived after the round drained
            continue;
        }
        let Some(job) = ({
            let slot = s.job.lock().unwrap();
            (slot.round == round).then_some(slot.job).flatten()
        }) else {
            continue;
        };
        // claim-and-execute until this round drains
        let mut c = c;
        loop {
            let i = c & NEXT_MASK;
            if c >> NEXT_BITS != round || i >= tasks {
                break;
            }
            match s
                .claim
                .compare_exchange_weak(c, c + 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    // SAFETY: round-tagged claim succeeded, so the job
                    // of this round is still alive (the caller waits on
                    // our done increment).
                    unsafe { (*job)(i as usize) };
                    s.done.fetch_add(1, Ordering::Release);
                    c = s.claim.load(Ordering::Acquire);
                }
                Err(actual) => c = actual,
            }
        }
        last = round;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_task_exactly_once() {
        let mut pool = DetPool::new(4);
        for round in 0..200usize {
            let n = (round * 7) % 33;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.run(n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} in round {round}");
            }
        }
    }

    /// The pattern the simulator uses: disjoint `&mut` access into a
    /// slice through a shared base pointer.
    #[test]
    fn disjoint_slice_mutation_is_deterministic() {
        struct Ptr(*mut u64);
        unsafe impl Sync for Ptr {}
        let run = |threads: usize| -> Vec<u64> {
            let mut pool = DetPool::new(threads);
            let mut data = vec![0u64; 257];
            for round in 1..=100u64 {
                let base = Ptr(data.as_mut_ptr());
                // capture the Sync wrapper, not its raw-pointer field
                let base = &base;
                pool.run(data.len(), &|i| {
                    let slot = unsafe { &mut *base.0.add(i) };
                    *slot = slot.wrapping_mul(31).wrapping_add(round + i as u64);
                });
            }
            data
        };
        let seq = run(1);
        assert_eq!(run(2), seq);
        assert_eq!(run(8), seq);
    }

    #[test]
    fn zero_and_one_task_rounds_work() {
        let mut pool = DetPool::new(3);
        pool.run(0, &|_| panic!("no tasks to run"));
        let hit = AtomicUsize::new(0);
        pool.run(1, &|i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn single_thread_pool_is_sequential() {
        let mut pool = DetPool::new(1);
        assert_eq!(pool.parallelism(), 1);
        let order = Mutex::new(Vec::new());
        pool.run(5, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }
}
