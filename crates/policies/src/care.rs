//! CARE (Lu, Wang & Sun, HPCA'23): a concurrency-aware enhanced
//! lightweight cache-management framework.
//!
//! Reconstructed from its description in the CHROME paper (§II-A,
//! §VII-B): CARE combines a lightweight locality predictor (signature
//! counters, SHiP-like) with C-AMAT-based concurrency feedback. It does
//! not merely minimize miss *count*; on cores whose concurrent access
//! time exceeds the memory latency (LLC-obstructed cores), caching at
//! the LLC yields little benefit, so CARE inserts their blocks at more
//! distant priorities and promotes them less aggressively, freeing
//! capacity for cores that do benefit.

use chrome_sim::overhead::StorageOverhead;
use chrome_sim::policy::{AccessInfo, CandidateLine, FillDecision, LlcPolicy, SystemFeedback};
use chrome_sim::types::LineAddr;

use crate::common::{pc_signature, CounterTable, RrpvArray};

const SHCT_ENTRIES: usize = 16 * 1024;
const SHCT_MAX: u8 = 7;
const SIG_BITS: u32 = 14;

/// The CARE policy.
#[derive(Debug)]
pub struct Care {
    rrpv: RrpvArray,
    shct: CounterTable,
    block_sig: Vec<u16>,
    block_reused: Vec<bool>,
    ways: usize,
}

impl Default for Care {
    fn default() -> Self {
        Self::new()
    }
}

impl Care {
    /// Create a CARE policy (geometry set by `initialize`).
    pub fn new() -> Self {
        Care {
            rrpv: RrpvArray::new(1, 1, 3),
            shct: CounterTable::new(SHCT_ENTRIES, SHCT_MAX),
            block_sig: Vec::new(),
            block_reused: Vec::new(),
            ways: 0,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }
}

impl LlcPolicy for Care {
    fn initialize(&mut self, num_sets: usize, ways: usize, _cores: usize) {
        self.rrpv = RrpvArray::new(num_sets, ways, 3);
        self.block_sig = vec![0; num_sets * ways];
        self.block_reused = vec![false; num_sets * ways];
        self.ways = ways;
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo, fb: &SystemFeedback) {
        let i = self.idx(set, way);
        // Concurrency-aware hit promotion: an obstructed core gains
        // little from keeping its data at the LLC, so promote weakly.
        let promote_to = if fb.is_obstructed(info.core) { 1 } else { 0 };
        self.rrpv.set(set, way, promote_to);
        if !self.block_reused[i] && !info.is_prefetch {
            self.block_reused[i] = true;
            self.shct.bump_up(self.block_sig[i] as u64);
        }
    }

    fn on_miss(&mut self, _: usize, _: &AccessInfo, _: &SystemFeedback) -> FillDecision {
        FillDecision::Insert
    }

    fn choose_victim(&mut self, set: usize, c: &[CandidateLine], _: &AccessInfo) -> usize {
        self.rrpv.victim(set, c)
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo, fb: &SystemFeedback) {
        let sig = pc_signature(info.pc, info.is_prefetch, 0, SIG_BITS);
        let i = self.idx(set, way);
        self.block_sig[i] = sig as u16;
        self.block_reused[i] = false;
        let counter = self.shct.get(sig);
        let mut rrpv = if info.is_prefetch {
            if counter >= SHCT_MAX {
                1
            } else {
                3
            }
        } else if counter == 0 {
            3
        } else if counter >= SHCT_MAX {
            0
        } else {
            2
        };
        // Concurrency-aware insertion: obstructed cores' blocks are
        // inserted one level more distant.
        if fb.is_obstructed(info.core) {
            rrpv = (rrpv + 1).min(3);
        }
        self.rrpv.set(set, way, rrpv);
    }

    fn on_evict(&mut self, set: usize, way: usize, _: LineAddr, was_hit: bool) {
        if !was_hit {
            let i = self.idx(set, way);
            self.shct.bump_down(self.block_sig[i] as u64);
        }
    }

    fn name(&self) -> &str {
        "CARE"
    }

    fn storage_overhead(&self, llc_blocks: usize) -> StorageOverhead {
        let mut o = StorageOverhead::new();
        o.add_table("signature counters", SHCT_ENTRIES as u64, 3);
        o.add_table(
            "per-block signature",
            llc_blocks as u64,
            SIG_BITS as u64 / 2,
        );
        o.add_table("per-block RRPV + outcome", llc_blocks as u64, 3);
        // C-AMAT monitors are PMU-based (paper §II-C): no extra storage
        o.add_bits("C-AMAT epoch registers", 16 * 64);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(line: u64, pc: u64, core: usize) -> AccessInfo {
        AccessInfo {
            core,
            pc,
            line: LineAddr(line),
            is_prefetch: false,
            is_write: false,
            cycle: 0,
        }
    }

    fn mk(cores: usize) -> (Care, SystemFeedback) {
        let mut p = Care::new();
        p.initialize(16, 4, cores);
        (p, SystemFeedback::new(cores))
    }

    #[test]
    fn obstructed_core_inserts_more_distant() {
        let (mut p, mut fb) = mk(2);
        p.on_fill(0, 0, &info(1, 0x400, 0), &fb);
        let normal = p.rrpv.get(0, 0);
        fb.obstructed[1] = true;
        p.on_fill(0, 1, &info(2, 0x400, 1), &fb);
        let obstructed = p.rrpv.get(0, 1);
        assert_eq!(obstructed, normal + 1);
    }

    #[test]
    fn obstructed_core_promotes_weakly() {
        let (mut p, mut fb) = mk(2);
        p.on_fill(0, 0, &info(1, 0x400, 0), &fb);
        p.on_hit(0, 0, &info(1, 0x400, 0), &fb);
        assert_eq!(p.rrpv.get(0, 0), 0);
        fb.obstructed[1] = true;
        p.on_fill(0, 1, &info(2, 0x400, 1), &fb);
        p.on_hit(0, 1, &info(2, 0x400, 1), &fb);
        assert_eq!(p.rrpv.get(0, 1), 1);
    }

    #[test]
    fn locality_learning_matches_ship() {
        let (mut p, fb) = mk(1);
        for i in 0..40 {
            p.on_fill(0, (i % 4) as usize, &info(i, 0x400, 0), &fb);
            p.on_evict(0, (i % 4) as usize, LineAddr(i), false);
        }
        p.on_fill(0, 0, &info(100, 0x400, 0), &fb);
        assert_eq!(p.rrpv.get(0, 0), 3);
    }

    #[test]
    fn never_bypasses() {
        let (mut p, fb) = mk(1);
        assert_eq!(p.on_miss(0, &info(1, 0, 0), &fb), FillDecision::Insert);
    }
}
