//! Infrastructure shared by the baseline policies: RRPV arrays, PC
//! signatures, OPTgen (Belady-oracle reconstruction over sampled sets),
//! and a sampled reuse-distance cache.

use std::collections::HashMap;

use chrome_sim::policy::CandidateLine;
use chrome_sim::types::mix64;
use chrome_telemetry::{EventKind, TelemetrySink};

/// A small holder that predictor-based policies embed to stream their
/// keep/avert verdicts into the telemetry event ring without each
/// policy re-implementing the sink plumbing.
#[derive(Clone, Default)]
pub struct DecisionTrace {
    sink: TelemetrySink,
}

impl std::fmt::Debug for DecisionTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecisionTrace")
            .field("enabled", &self.sink.is_enabled())
            .finish()
    }
}

impl DecisionTrace {
    /// Install the sink (forwarded from `LlcPolicy::set_telemetry`).
    pub fn attach(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    /// Record one predictor verdict: `friendly` is the policy's
    /// keep/avert classification of `signature` at fill time.
    pub fn verdict(&self, cycle: u64, core: usize, signature: u64, friendly: bool) {
        if cfg!(feature = "telemetry") {
            self.sink.emit(
                cycle,
                core as u32,
                EventKind::PredictorVerdict {
                    signature,
                    friendly,
                },
            );
        }
    }
}

/// A per-block Re-Reference Prediction Value array with RRIP-style aging.
#[derive(Debug, Clone)]
pub struct RrpvArray {
    vals: Vec<u8>,
    ways: usize,
    max: u8,
}

impl RrpvArray {
    /// An array for `num_sets × ways` blocks with RRPVs in `0..=max`.
    ///
    /// # Panics
    ///
    /// Panics if `max == 0`.
    pub fn new(num_sets: usize, ways: usize, max: u8) -> Self {
        assert!(max > 0, "max RRPV must be positive");
        RrpvArray {
            vals: vec![max; num_sets * ways],
            ways,
            max,
        }
    }

    /// Maximum (most-distant) RRPV.
    pub fn max(&self) -> u8 {
        self.max
    }

    /// Read a block's RRPV.
    pub fn get(&self, set: usize, way: usize) -> u8 {
        self.vals[set * self.ways + way]
    }

    /// Write a block's RRPV (clamped to `max`).
    pub fn set(&mut self, set: usize, way: usize, v: u8) {
        self.vals[set * self.ways + way] = v.min(self.max);
    }

    /// SRRIP victim selection among `candidates`: pick a block at max
    /// RRPV, aging the whole set until one exists. Returns the way.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn victim(&mut self, set: usize, candidates: &[CandidateLine]) -> usize {
        assert!(!candidates.is_empty(), "victim needs candidates");
        loop {
            if let Some(c) = candidates.iter().find(|c| self.get(set, c.way) >= self.max) {
                return c.way;
            }
            for c in candidates {
                let i = set * self.ways + c.way;
                self.vals[i] = (self.vals[i] + 1).min(self.max);
            }
        }
    }
}

/// Hash a PC into a `bits`-wide signature, optionally folding in the
/// prefetch flag and core id (paper §IV-A).
#[inline]
pub fn pc_signature(pc: u64, is_prefetch: bool, core: usize, bits: u32) -> u64 {
    let mixed = mix64(pc ^ ((is_prefetch as u64) << 61) ^ ((core as u64) << 53));
    mixed & ((1 << bits) - 1)
}

/// The outcome OPTgen reports for a re-accessed line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptOutcome {
    /// Would Belady's OPT have kept this line (a hit under OPT)?
    pub opt_hit: bool,
    /// The payload stored at the previous access (e.g. the PC signature
    /// that loaded the line) — the entity to train.
    pub payload: u64,
}

/// OPTgen (Jain & Lin, ISCA'16): reconstructs Belady-OPT hit/miss
/// outcomes for one sampled set using an occupancy vector over a sliding
/// window of set accesses.
#[derive(Debug, Clone)]
pub struct OptGen {
    occupancy: Vec<u8>,
    capacity: u8,
    time: u64,
    window: u64,
    last_access: HashMap<u64, (u64, u64)>, // line -> (time, payload)
}

impl OptGen {
    /// OPTgen for a set of `ways` blocks, with an observation window of
    /// `8 × ways` set-accesses (the Hawkeye configuration).
    pub fn new(ways: usize) -> Self {
        let window = (8 * ways) as u64;
        OptGen {
            occupancy: vec![0; window as usize],
            capacity: ways as u8,
            time: 0,
            window,
            last_access: HashMap::new(),
        }
    }

    /// Record an access to `line` carrying `payload`; if the line was
    /// accessed within the window, returns the OPT outcome for the
    /// *previous* access.
    pub fn access(&mut self, line: u64, payload: u64) -> Option<OptOutcome> {
        let now = self.time;
        self.time += 1;
        // the slot for `now` starts a fresh quantum
        let idx = (now % self.window) as usize;
        self.occupancy[idx] = 0;
        // bound the history map: entries older than the window can never
        // produce a decidable outcome
        if self.last_access.len() > 4096 {
            let window = self.window;
            self.last_access.retain(|_, &mut (t, _)| now - t < window);
        }
        let prev = self.last_access.insert(line, (now, payload));
        let (prev_time, prev_payload) = prev?;
        if now - prev_time >= self.window {
            // too old to decide: treat as an OPT miss for training
            return Some(OptOutcome {
                opt_hit: false,
                payload: prev_payload,
            });
        }
        // OPT keeps the line iff every quantum in [prev_time, now) has
        // spare capacity.
        let fits =
            (prev_time..now).all(|t| self.occupancy[(t % self.window) as usize] < self.capacity);
        if fits {
            for t in prev_time..now {
                self.occupancy[(t % self.window) as usize] += 1;
            }
        }
        Some(OptOutcome {
            opt_hit: fits,
            payload: prev_payload,
        })
    }

    /// Accesses observed so far.
    pub fn time(&self) -> u64 {
        self.time
    }
}

/// A saturating counter table indexed by signature (e.g. Hawkeye's
/// PC-based predictor or SHiP's SHCT).
#[derive(Debug, Clone)]
pub struct CounterTable {
    counters: Vec<u8>,
    max: u8,
}

impl CounterTable {
    /// `entries` counters saturating at `max`, initialized to the
    /// weakly-positive midpoint.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn new(entries: usize, max: u8) -> Self {
        assert!(entries > 0, "need at least one counter");
        CounterTable {
            counters: vec![max / 2 + 1; entries],
            max,
        }
    }

    #[inline]
    fn idx(&self, sig: u64) -> usize {
        (sig % self.counters.len() as u64) as usize
    }

    /// Increment the counter for `sig`.
    pub fn bump_up(&mut self, sig: u64) {
        let i = self.idx(sig);
        self.counters[i] = (self.counters[i] + 1).min(self.max);
    }

    /// Decrement the counter for `sig`.
    pub fn bump_down(&mut self, sig: u64) {
        let i = self.idx(sig);
        self.counters[i] = self.counters[i].saturating_sub(1);
    }

    /// Read the counter for `sig`.
    pub fn get(&self, sig: u64) -> u8 {
        self.counters[self.idx(sig)]
    }

    /// True when the counter is in the upper half of its range.
    pub fn is_positive(&self, sig: u64) -> bool {
        self.get(sig) > self.max / 2
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Always false (the constructor requires at least one entry).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A sampled reuse-distance monitor (Mockingjay-style): for each sampled
/// set it remembers recent lines and reports the measured reuse distance
/// (in set-accesses) when a line returns.
#[derive(Debug, Clone)]
pub struct ReuseSampler {
    entries: HashMap<u64, (u64, u64)>, // line -> (time, payload)
    pending_unreused: Vec<u64>,
    time: u64,
    capacity: usize,
}

impl ReuseSampler {
    /// Monitor remembering up to `capacity` lines.
    pub fn new(capacity: usize) -> Self {
        ReuseSampler {
            entries: HashMap::new(),
            pending_unreused: Vec::new(),
            time: 0,
            capacity,
        }
    }

    /// Record an access; returns `(measured_reuse_distance, payload)` of
    /// the previous access if the line was being tracked.
    pub fn access(&mut self, line: u64, payload: u64) -> Option<(u64, u64)> {
        let now = self.time;
        self.time += 1;
        let prev = self.entries.insert(line, (now, payload));
        if self.entries.len() > self.capacity {
            // evict the stalest entry (linear scan: capacity is small);
            // it was never reused while monitored, so report it via
            // `expire`
            if let Some((&old_line, _)) = self.entries.iter().min_by_key(|&(_, &(t, _))| t) {
                if let Some((_, p)) = self.entries.remove(&old_line) {
                    self.pending_unreused.push(p);
                }
            }
        }
        prev.map(|(t, p)| (now - t, p))
    }

    /// Remove and return the payloads of lines that left the monitor
    /// without being reused: entries older than `max_age` set-accesses
    /// plus entries displaced by capacity pressure.
    pub fn expire(&mut self, max_age: u64) -> Vec<u64> {
        let now = self.time;
        let stale: Vec<u64> = self
            .entries
            .iter()
            .filter(|&(_, &(t, _))| now - t > max_age)
            .map(|(&l, _)| l)
            .collect();
        let mut out: Vec<u64> = stale
            .into_iter()
            .filter_map(|l| self.entries.remove(&l).map(|(_, p)| p))
            .collect();
        out.append(&mut self.pending_unreused);
        out
    }

    /// Current logical time (accesses observed).
    pub fn time(&self) -> u64 {
        self.time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chrome_sim::types::LineAddr;

    fn cands(n: usize) -> Vec<CandidateLine> {
        (0..n)
            .map(|w| CandidateLine {
                way: w,
                line: LineAddr(w as u64),
                prefetch: false,
                dirty: false,
            })
            .collect()
    }

    #[test]
    fn rrpv_victim_prefers_max() {
        let mut r = RrpvArray::new(1, 4, 3);
        r.set(0, 0, 0);
        r.set(0, 1, 3);
        r.set(0, 2, 1);
        r.set(0, 3, 2);
        assert_eq!(r.victim(0, &cands(4)), 1);
    }

    #[test]
    fn rrpv_ages_until_victim_found() {
        let mut r = RrpvArray::new(1, 2, 3);
        r.set(0, 0, 0);
        r.set(0, 1, 1);
        assert_eq!(r.victim(0, &cands(2)), 1);
        // way 0 aged from 0 to 2
        assert_eq!(r.get(0, 0), 2);
    }

    #[test]
    fn rrpv_set_clamps() {
        let mut r = RrpvArray::new(1, 1, 3);
        r.set(0, 0, 250);
        assert_eq!(r.get(0, 0), 3);
    }

    #[test]
    fn pc_signature_distinguishes_prefetch_and_core() {
        let a = pc_signature(0x400, false, 0, 13);
        let b = pc_signature(0x400, true, 0, 13);
        let c = pc_signature(0x400, false, 1, 13);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(a < (1 << 13));
    }

    #[test]
    fn optgen_small_set_is_opt_hit() {
        let mut g = OptGen::new(4);
        // two lines alternating in a 4-way set: OPT always hits
        for i in 0..20 {
            let out = g.access(i % 2, 7);
            if i >= 2 {
                let o = out.expect("seen before");
                assert!(o.opt_hit, "iteration {i}");
                assert_eq!(o.payload, 7);
            }
        }
    }

    #[test]
    fn optgen_thrash_is_opt_miss_for_far_reuse() {
        let mut g = OptGen::new(2);
        // cycle over 8 lines in a 2-way set: reuse distance 8 > capacity,
        // OPT cannot keep them all
        let mut hits = 0;
        let mut misses = 0;
        for i in 0..64 {
            if let Some(o) = g.access(i % 8, 0) {
                if o.opt_hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
        }
        assert!(misses > hits, "hits={hits} misses={misses}");
        // OPT keeps exactly capacity-worth: some hits survive
        assert!(hits > 0);
    }

    #[test]
    fn optgen_first_access_is_none() {
        let mut g = OptGen::new(4);
        assert!(g.access(42, 0).is_none());
    }

    #[test]
    fn counter_table_saturates() {
        let mut t = CounterTable::new(16, 7);
        for _ in 0..20 {
            t.bump_up(3);
        }
        assert_eq!(t.get(3), 7);
        for _ in 0..20 {
            t.bump_down(3);
        }
        assert_eq!(t.get(3), 0);
        assert!(!t.is_positive(3));
    }

    #[test]
    fn reuse_sampler_measures_distance() {
        let mut s = ReuseSampler::new(8);
        assert!(s.access(1, 11).is_none());
        s.access(2, 0);
        s.access(3, 0);
        let (rd, payload) = s.access(1, 12).expect("tracked");
        assert_eq!(rd, 3);
        assert_eq!(payload, 11);
    }

    #[test]
    fn reuse_sampler_bounds_capacity() {
        let mut s = ReuseSampler::new(4);
        for i in 0..100 {
            s.access(i, 0);
        }
        // capacity is enforced approximately (one eviction per access)
        assert!(s.time() == 100);
        let tracked = s.access(99, 0);
        assert!(tracked.is_some(), "recent line should still be tracked");
    }

    #[test]
    fn reuse_sampler_expire_returns_payloads() {
        let mut s = ReuseSampler::new(16);
        s.access(1, 77);
        for i in 10..30 {
            s.access(i, 0);
        }
        let expired = s.expire(10);
        assert!(expired.contains(&77));
    }
}
