//! DRRIP (Jaleel et al., ISCA'10): dynamic re-reference interval
//! prediction. Set-dueling picks between SRRIP (insert at RRPV 2) and
//! BRRIP (insert mostly at RRPV 3) using a policy-selection counter —
//! the classic pre-learning baseline that later schemes are measured
//! against.

use chrome_sim::overhead::StorageOverhead;
use chrome_sim::policy::{AccessInfo, CandidateLine, FillDecision, LlcPolicy, SystemFeedback};
use chrome_sim::types::{mix64, LineAddr};

use crate::common::RrpvArray;

const PSEL_MAX: i32 = 1023;
/// One in this many fills under BRRIP inserts near instead of distant.
const BRRIP_NEAR_ONE_IN: u64 = 32;
/// Number of leader sets per policy.
const LEADERS: usize = 32;

/// The DRRIP policy.
#[derive(Debug)]
pub struct Drrip {
    rrpv: RrpvArray,
    psel: i32,
    num_sets: usize,
    fills: u64,
}

impl Default for Drrip {
    fn default() -> Self {
        Self::new()
    }
}

impl Drrip {
    /// Create a DRRIP policy (geometry set by `initialize`).
    pub fn new() -> Self {
        Drrip {
            rrpv: RrpvArray::new(1, 1, 3),
            psel: PSEL_MAX / 2,
            num_sets: 0,
            fills: 0,
        }
    }

    /// Leader-set classification: `Some(true)` = SRRIP leader,
    /// `Some(false)` = BRRIP leader, `None` = follower.
    fn leader(&self, set: usize) -> Option<bool> {
        let h = mix64(set as u64) % (self.num_sets as u64).max(1);
        if h < LEADERS as u64 {
            Some(true)
        } else if h < 2 * LEADERS as u64 {
            Some(false)
        } else {
            None
        }
    }

    fn use_srrip(&self, set: usize) -> bool {
        match self.leader(set) {
            Some(srrip) => srrip,
            None => self.psel >= PSEL_MAX / 2,
        }
    }
}

impl LlcPolicy for Drrip {
    fn initialize(&mut self, num_sets: usize, ways: usize, _cores: usize) {
        self.rrpv = RrpvArray::new(num_sets, ways, 3);
        self.num_sets = num_sets;
    }

    fn on_hit(&mut self, set: usize, way: usize, _: &AccessInfo, _: &SystemFeedback) {
        self.rrpv.set(set, way, 0);
    }

    fn on_miss(&mut self, set: usize, info: &AccessInfo, _: &SystemFeedback) -> FillDecision {
        // a miss in a leader set votes against that leader's policy
        if !info.is_prefetch {
            match self.leader(set) {
                Some(true) => self.psel = (self.psel - 1).max(0),
                Some(false) => self.psel = (self.psel + 1).min(PSEL_MAX),
                None => {}
            }
        }
        FillDecision::Insert
    }

    fn choose_victim(&mut self, set: usize, c: &[CandidateLine], _: &AccessInfo) -> usize {
        self.rrpv.victim(set, c)
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo, _: &SystemFeedback) {
        self.fills += 1;
        let srrip = self.use_srrip(set);
        let rrpv = if info.is_prefetch {
            3 // prefetches always distant under RRIP-family baselines
        } else if srrip || self.fills.is_multiple_of(BRRIP_NEAR_ONE_IN) {
            2
        } else {
            3
        };
        self.rrpv.set(set, way, rrpv);
    }

    fn on_evict(&mut self, _: usize, _: usize, _: LineAddr, _: bool) {}

    fn name(&self) -> &str {
        "DRRIP"
    }

    fn storage_overhead(&self, llc_blocks: usize) -> StorageOverhead {
        let mut o = StorageOverhead::new();
        o.add_table("per-block RRPV", llc_blocks as u64, 2);
        o.add_bits("PSEL", 10);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(line: u64, prefetch: bool) -> AccessInfo {
        AccessInfo {
            core: 0,
            pc: 0x400,
            line: LineAddr(line),
            is_prefetch: prefetch,
            is_write: false,
            cycle: 0,
        }
    }

    fn mk() -> (Drrip, SystemFeedback) {
        let mut p = Drrip::new();
        p.initialize(1024, 4, 1);
        (p, SystemFeedback::new(1))
    }

    #[test]
    fn hit_promotes_to_zero() {
        let (mut p, fb) = mk();
        p.on_fill(5, 1, &info(1, false), &fb);
        p.on_hit(5, 1, &info(1, false), &fb);
        assert_eq!(p.rrpv.get(5, 1), 0);
    }

    #[test]
    fn prefetch_inserts_distant() {
        let (mut p, fb) = mk();
        p.on_fill(5, 0, &info(1, true), &fb);
        assert_eq!(p.rrpv.get(5, 0), 3);
    }

    #[test]
    fn leader_sets_exist_for_both_policies() {
        let (p, _) = mk();
        let srrip = (0..1024).filter(|&s| p.leader(s) == Some(true)).count();
        let brrip = (0..1024).filter(|&s| p.leader(s) == Some(false)).count();
        assert!(srrip > 0 && brrip > 0, "srrip={srrip} brrip={brrip}");
    }

    #[test]
    fn psel_moves_with_leader_misses() {
        let (mut p, fb) = mk();
        let srrip_leader = (0..1024)
            .find(|&s| p.leader(s) == Some(true))
            .expect("exists");
        let before = p.psel;
        for l in 0..50 {
            p.on_miss(srrip_leader, &info(l, false), &fb);
        }
        assert!(
            p.psel < before,
            "misses in an SRRIP leader should punish SRRIP"
        );
    }

    #[test]
    fn never_bypasses() {
        let (mut p, fb) = mk();
        assert_eq!(p.on_miss(3, &info(1, false), &fb), FillDecision::Insert);
    }

    #[test]
    fn brrip_mode_inserts_mostly_distant() {
        let (mut p, fb) = mk();
        p.psel = 0; // force BRRIP for followers
        let follower = (0..1024).find(|&s| p.leader(s).is_none()).expect("exists");
        let mut distant = 0;
        for l in 0..64 {
            p.on_fill(follower, (l % 4) as usize, &info(l, false), &fb);
            if p.rrpv.get(follower, (l % 4) as usize) == 3 {
                distant += 1;
            }
        }
        assert!(
            distant > 48,
            "BRRIP should insert mostly at RRPV 3, got {distant}/64"
        );
    }
}
