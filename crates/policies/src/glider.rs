//! Glider (Shi et al., MICRO'19) — the *online* integer-SVM model.
//!
//! The offline attention LSTM of the paper distills into a simple online
//! predictor: one integer SVM per load PC, whose features are the
//! (hashed) contents of a per-core PC history register holding the last
//! 5 load PCs. Training labels come from OPTgen on sampled sets, exactly
//! as in Hawkeye, but the richer control-flow feature lets Glider
//! separate behaviors a single PC confounds.

use chrome_sim::overhead::StorageOverhead;
use chrome_sim::policy::{AccessInfo, CandidateLine, FillDecision, LlcPolicy, SystemFeedback};
use chrome_sim::types::{mix64, LineAddr};

use crate::common::OptGen;

const ISVM_COUNT: usize = 2048;
const WEIGHTS_PER_ISVM: usize = 16;
const HISTORY: usize = 5;
const RRPV_MAX: u8 = 7;
// Scale note: the paper samples 64 sets over 200M-instruction runs; our
// default runs are ~20x shorter, so experiments sample 4x more sets to
// keep per-set training volume comparable.
const SAMPLED_SETS: usize = 256;
const TAU_HI: i32 = 60;
const WEIGHT_CAP: i32 = 31;

/// The Glider policy (online ISVM form).
pub struct Glider {
    weights: Vec<i8>,
    pchr: Vec<[u64; HISTORY]>, // per-core PC history registers
    optgens: Vec<OptGen>,
    rrpv: Vec<u8>,
    friendly: Vec<bool>,
    num_sets: usize,
    ways: usize,
}

impl std::fmt::Debug for Glider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Glider")
            .field("isvms", &ISVM_COUNT)
            .finish_non_exhaustive()
    }
}

impl Default for Glider {
    fn default() -> Self {
        Self::new()
    }
}

impl Glider {
    /// Create a Glider policy (geometry set by `initialize`).
    pub fn new() -> Self {
        Glider {
            weights: vec![0; ISVM_COUNT * WEIGHTS_PER_ISVM],
            pchr: Vec::new(),
            optgens: Vec::new(),
            rrpv: Vec::new(),
            friendly: Vec::new(),
            num_sets: 0,
            ways: 0,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Pack (isvm index, 5 selected weight slots) into a trainable
    /// payload.
    fn feature(&self, info: &AccessInfo) -> u64 {
        let isvm = (mix64(info.pc ^ ((info.is_prefetch as u64) << 60)) as usize) % ISVM_COUNT;
        let hist = &self.pchr[info.core.min(self.pchr.len() - 1)];
        let mut packed = isvm as u64;
        for (k, &h) in hist.iter().enumerate() {
            let slot = (mix64(h ^ (k as u64) << 32) % WEIGHTS_PER_ISVM as u64) & 0xF;
            packed |= slot << (16 + 4 * k);
        }
        packed
    }

    fn weight_indices(packed: u64) -> (usize, [usize; HISTORY]) {
        let isvm = (packed & 0xFFFF) as usize % ISVM_COUNT;
        let mut slots = [0usize; HISTORY];
        for (k, s) in slots.iter_mut().enumerate() {
            *s = ((packed >> (16 + 4 * k)) & 0xF) as usize;
        }
        (isvm, slots)
    }

    fn predict(&self, packed: u64) -> i32 {
        let (isvm, slots) = Self::weight_indices(packed);
        slots
            .iter()
            .map(|&s| self.weights[isvm * WEIGHTS_PER_ISVM + s] as i32)
            .sum()
    }

    fn train(&mut self, packed: u64, up: bool) {
        let sum = self.predict(packed);
        // only train while the margin is not already satisfied
        if up && sum >= TAU_HI + WEIGHT_CAP {
            return;
        }
        if !up && sum <= -(TAU_HI + WEIGHT_CAP) {
            return;
        }
        let (isvm, slots) = Self::weight_indices(packed);
        for &s in &slots {
            let w = &mut self.weights[isvm * WEIGHTS_PER_ISVM + s];
            let nw = (*w as i32 + if up { 1 } else { -1 }).clamp(-WEIGHT_CAP, WEIGHT_CAP);
            *w = nw as i8;
        }
    }

    fn observe(&mut self, set: usize, info: &AccessInfo) -> u64 {
        let packed = self.feature(info);
        // update PCHR after computing the feature
        let core = info.core.min(self.pchr.len() - 1);
        let h = &mut self.pchr[core];
        h.rotate_right(1);
        h[0] = info.pc;
        if let Some(si) = chrome_sim::policy::sampled_index(set, self.num_sets, SAMPLED_SETS) {
            if let Some(out) = self.optgens[si].access(info.line.0, packed) {
                self.train(out.payload, out.opt_hit);
            }
        }
        packed
    }
}

impl LlcPolicy for Glider {
    fn initialize(&mut self, num_sets: usize, ways: usize, cores: usize) {
        self.num_sets = num_sets;
        self.ways = ways;
        self.rrpv = vec![RRPV_MAX; num_sets * ways];
        self.friendly = vec![false; num_sets * ways];
        self.pchr = vec![[0; HISTORY]; cores.max(1)];
        self.optgens = (0..SAMPLED_SETS).map(|_| OptGen::new(ways)).collect();
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo, _: &SystemFeedback) {
        let packed = self.observe(set, info);
        let sum = self.predict(packed);
        let i = self.idx(set, way);
        self.friendly[i] = sum >= 0;
        self.rrpv[i] = if sum >= TAU_HI {
            0
        } else if sum >= 0 {
            1
        } else {
            RRPV_MAX
        };
    }

    fn on_miss(&mut self, set: usize, info: &AccessInfo, _: &SystemFeedback) -> FillDecision {
        let _ = self.observe(set, info);
        FillDecision::Insert
    }

    fn choose_victim(&mut self, set: usize, c: &[CandidateLine], _: &AccessInfo) -> usize {
        if let Some(cand) = c
            .iter()
            .find(|cand| self.rrpv[self.idx(set, cand.way)] == RRPV_MAX)
        {
            return cand.way;
        }
        c.iter()
            .max_by_key(|cand| self.rrpv[self.idx(set, cand.way)])
            .expect("candidates nonempty")
            .way
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo, _: &SystemFeedback) {
        let packed = self.feature(info);
        let sum = self.predict(packed);
        let friendly = sum >= 0;
        if friendly {
            // age earlier friendly lines, Hawkeye-style
            for w in 0..self.ways {
                let i = self.idx(set, w);
                if self.friendly[i] && self.rrpv[i] < RRPV_MAX - 1 {
                    self.rrpv[i] += 1;
                }
            }
        }
        let i = self.idx(set, way);
        self.friendly[i] = friendly;
        self.rrpv[i] = if sum >= TAU_HI {
            0
        } else if sum >= 0 {
            1
        } else {
            RRPV_MAX
        };
    }

    fn on_evict(&mut self, _: usize, _: usize, _: LineAddr, _: bool) {}

    fn name(&self) -> &str {
        "Glider"
    }

    fn storage_overhead(&self, llc_blocks: usize) -> StorageOverhead {
        let mut o = StorageOverhead::new();
        o.add_table("ISVM weights", (ISVM_COUNT * WEIGHTS_PER_ISVM) as u64, 6);
        o.add_table("per-block RRPV + friendly", llc_blocks as u64, 4);
        o.add_table("OPTgen samplers", 64 * 8 * 12, 40); // hardware budget uses the paper's 64 sets
        o.add_bits("PCHR", (HISTORY * 16) as u64);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(line: u64, pc: u64) -> AccessInfo {
        AccessInfo {
            core: 0,
            pc,
            line: LineAddr(line),
            is_prefetch: false,
            is_write: false,
            cycle: 0,
        }
    }

    fn mk() -> (Glider, SystemFeedback) {
        let mut p = Glider::new();
        p.initialize(64, 4, 1);
        (p, SystemFeedback::new(1))
    }

    #[test]
    fn training_moves_weights() {
        let (mut p, fb) = mk();
        let packed = p.feature(&info(0, 0x700));
        let before = p.predict(packed);
        for l in 0..200u64 {
            p.on_miss(0, &info(l % 2, 0x700), &fb);
        }
        let after = p.predict(p.feature(&info(0, 0x700)));
        assert!(
            after > before,
            "tight reuse should push weights up: {before} -> {after}"
        );
    }

    #[test]
    fn scanning_becomes_averse() {
        let (mut p, fb) = mk();
        for rep in 0..12 {
            for l in 0..40u64 {
                let _ = rep;
                p.on_miss(0, &info(l * 64, 0xBAD), &fb);
            }
        }
        let sum = p.predict(p.feature(&info(0, 0xBAD)));
        assert!(sum < 0, "scanning PC should be negative, sum={sum}");
    }

    #[test]
    fn averse_blocks_evicted_first() {
        let (mut p, fb) = mk();
        for _ in 0..12 {
            for l in 0..40u64 {
                p.on_miss(0, &info(l * 64, 0xBAD), &fb);
            }
        }
        for _ in 0..100 {
            p.on_miss(0, &info(0, 0x600D), &fb); // friendly trainer
        }
        p.on_fill(1, 0, &info(1, 0x600D), &fb);
        p.on_fill(1, 1, &info(2, 0xBAD), &fb);
        let cands: Vec<CandidateLine> = (0..2)
            .map(|w| CandidateLine {
                way: w,
                line: LineAddr(w as u64),
                prefetch: false,
                dirty: false,
            })
            .collect();
        assert_eq!(p.choose_victim(1, &cands, &info(9, 0x700)), 1);
    }

    #[test]
    fn weights_are_capped() {
        let (mut p, fb) = mk();
        for l in 0..2000u64 {
            p.on_miss(0, &info(l % 2, 0x700), &fb);
        }
        assert!(p.weights.iter().all(|&w| (w as i32).abs() <= WEIGHT_CAP));
    }

    #[test]
    fn pchr_rotates() {
        let (mut p, fb) = mk();
        p.on_miss(1, &info(1, 0xAAA), &fb);
        p.on_miss(1, &info(2, 0xBBB), &fb);
        assert_eq!(p.pchr[0][0], 0xBBB);
        assert_eq!(p.pchr[0][1], 0xAAA);
    }
}
