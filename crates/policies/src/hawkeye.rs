//! Hawkeye (Jain & Lin, ISCA'16): learn from Belady's OPT.
//!
//! OPTgen reconstructs what OPT would have done on a handful of sampled
//! sets; a PC-indexed predictor classifies loads as *cache-friendly* or
//! *cache-averse*. Friendly fills insert at RRPV 0 (with aging of other
//! friendly lines), averse fills insert at max RRPV and are evicted
//! first.

use chrome_sim::overhead::StorageOverhead;
use chrome_sim::policy::{AccessInfo, CandidateLine, FillDecision, LlcPolicy, SystemFeedback};
use chrome_sim::types::LineAddr;
use chrome_telemetry::TelemetrySink;

use crate::common::{pc_signature, CounterTable, DecisionTrace, OptGen};

const PREDICTOR_ENTRIES: usize = 8 * 1024;
const PREDICTOR_MAX: u8 = 7;
const SIG_BITS: u32 = 13;
const RRPV_MAX: u8 = 7;
// Scale note: the paper samples 64 sets over 200M-instruction runs; our
// default runs are ~20x shorter, so experiments sample 4x more sets to
// keep per-set training volume comparable.
const SAMPLED_SETS: usize = 256;

/// The Hawkeye policy.
pub struct Hawkeye {
    predictor: CounterTable,
    optgens: Vec<OptGen>,
    rrpv: Vec<u8>,
    friendly: Vec<bool>,
    num_sets: usize,
    ways: usize,
    trace: DecisionTrace,
}

impl std::fmt::Debug for Hawkeye {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hawkeye")
            .field("sets", &self.num_sets)
            .finish_non_exhaustive()
    }
}

impl Default for Hawkeye {
    fn default() -> Self {
        Self::new()
    }
}

impl Hawkeye {
    /// Create a Hawkeye policy (geometry set by `initialize`).
    pub fn new() -> Self {
        Hawkeye {
            predictor: CounterTable::new(PREDICTOR_ENTRIES, PREDICTOR_MAX),
            optgens: Vec::new(),
            rrpv: Vec::new(),
            friendly: Vec::new(),
            num_sets: 0,
            ways: 0,
            trace: DecisionTrace::default(),
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn sampled_index(&self, set: usize) -> Option<usize> {
        chrome_sim::policy::sampled_index(set, self.num_sets, SAMPLED_SETS)
    }

    /// Feed a sampled-set access through OPTgen and train the predictor.
    fn train(&mut self, set: usize, info: &AccessInfo) {
        let Some(si) = self.sampled_index(set) else {
            return;
        };
        let sig = pc_signature(info.pc, info.is_prefetch, info.core, SIG_BITS);
        if let Some(outcome) = self.optgens[si].access(info.line.0, sig) {
            if outcome.opt_hit {
                self.predictor.bump_up(outcome.payload);
            } else {
                self.predictor.bump_down(outcome.payload);
            }
        }
    }

    fn is_friendly(&self, info: &AccessInfo) -> bool {
        let sig = pc_signature(info.pc, info.is_prefetch, info.core, SIG_BITS);
        self.predictor.is_positive(sig)
    }

    /// Age all friendly blocks in `set` (cap below averse RRPV).
    fn age_friendly(&mut self, set: usize) {
        for w in 0..self.ways {
            let i = self.idx(set, w);
            if self.friendly[i] && self.rrpv[i] < RRPV_MAX - 1 {
                self.rrpv[i] += 1;
            }
        }
    }
}

impl LlcPolicy for Hawkeye {
    fn initialize(&mut self, num_sets: usize, ways: usize, _cores: usize) {
        self.num_sets = num_sets;
        self.ways = ways;
        self.rrpv = vec![RRPV_MAX; num_sets * ways];
        self.friendly = vec![false; num_sets * ways];
        self.optgens = (0..SAMPLED_SETS.min(num_sets))
            .map(|_| OptGen::new(ways))
            .collect();
        // guard: sampled_index can return indices up to SAMPLED_SETS-1
        while self.optgens.len() < SAMPLED_SETS {
            self.optgens.push(OptGen::new(ways));
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo, _: &SystemFeedback) {
        self.train(set, info);
        let i = self.idx(set, way);
        self.friendly[i] = self.is_friendly(info);
        self.rrpv[i] = if self.friendly[i] { 0 } else { RRPV_MAX };
    }

    fn on_miss(&mut self, set: usize, info: &AccessInfo, _: &SystemFeedback) -> FillDecision {
        self.train(set, info);
        FillDecision::Insert
    }

    fn choose_victim(&mut self, set: usize, c: &[CandidateLine], _: &AccessInfo) -> usize {
        // Prefer cache-averse blocks (RRPV == max); otherwise evict the
        // oldest friendly block.
        if let Some(cand) = c
            .iter()
            .find(|cand| self.rrpv[self.idx(set, cand.way)] == RRPV_MAX)
        {
            return cand.way;
        }
        c.iter()
            .max_by_key(|cand| self.rrpv[self.idx(set, cand.way)])
            .expect("candidates nonempty")
            .way
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo, _: &SystemFeedback) {
        let friendly = self.is_friendly(info);
        let sig = pc_signature(info.pc, info.is_prefetch, info.core, SIG_BITS);
        self.trace.verdict(info.cycle, info.core, sig, friendly);
        if friendly {
            self.age_friendly(set);
        }
        let i = self.idx(set, way);
        self.friendly[i] = friendly;
        self.rrpv[i] = if friendly { 0 } else { RRPV_MAX };
    }

    fn on_evict(&mut self, _: usize, _: usize, _: LineAddr, _: bool) {}

    fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.trace.attach(sink);
    }

    fn name(&self) -> &str {
        "Hawkeye"
    }

    fn storage_overhead(&self, llc_blocks: usize) -> StorageOverhead {
        let mut o = StorageOverhead::new();
        o.add_table("PC predictor", PREDICTOR_ENTRIES as u64, 3);
        o.add_table("per-block RRPV + friendly", llc_blocks as u64, 4);
        // OPTgen occupancy vectors + sampler tags (per Hawkeye paper ~
        // 8x ways entries/sampled set, ~40 bits each)
        o.add_table("OPTgen samplers", 64 * 8 * 12, 40); // hardware budget uses the paper's 64 sets
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(line: u64, pc: u64) -> AccessInfo {
        AccessInfo {
            core: 0,
            pc,
            line: LineAddr(line),
            is_prefetch: false,
            is_write: false,
            cycle: 0,
        }
    }

    fn cands(n: usize) -> Vec<CandidateLine> {
        (0..n)
            .map(|w| CandidateLine {
                way: w,
                line: LineAddr(w as u64),
                prefetch: false,
                dirty: false,
            })
            .collect()
    }

    fn mk() -> (Hawkeye, SystemFeedback) {
        let mut p = Hawkeye::new();
        p.initialize(64, 4, 1);
        (p, SystemFeedback::new(1))
    }

    #[test]
    fn averse_pc_learned_from_thrashing_pattern() {
        let (mut p, fb) = mk();
        // on sampled set 0: scan over many lines (reuse distance >>
        // capacity) from one PC — OPT misses, PC becomes averse
        for rep in 0..12 {
            for l in 0..40u64 {
                let i = info(l * 64, 0xBAD); // all map to set 0 (line % 64... )
                let _ = rep;
                p.on_miss(0, &i, &fb);
            }
        }
        let sig = pc_signature(0xBAD, false, 0, SIG_BITS);
        assert!(
            !p.predictor.is_positive(sig),
            "scanning PC should be averse"
        );
    }

    #[test]
    fn friendly_pc_learned_from_tight_reuse() {
        let (mut p, fb) = mk();
        for _ in 0..50 {
            for l in 0..2u64 {
                p.on_miss(0, &info(l, 0x600D), &fb);
            }
        }
        let sig = pc_signature(0x600D, false, 0, SIG_BITS);
        assert!(
            p.predictor.is_positive(sig),
            "tight-reuse PC should be friendly"
        );
    }

    #[test]
    fn averse_fill_is_first_victim() {
        let (mut p, fb) = mk();
        // make 0xBAD averse
        for _ in 0..12 {
            for l in 0..40u64 {
                p.on_miss(0, &info(l * 64, 0xBAD), &fb);
            }
        }
        // fill ways: 0..2 friendly-ish (default weakly positive), way 3 averse
        p.on_fill(1, 0, &info(1, 0x111), &fb);
        p.on_fill(1, 1, &info(2, 0x111), &fb);
        p.on_fill(1, 2, &info(3, 0x111), &fb);
        p.on_fill(1, 3, &info(4, 0xBAD), &fb);
        assert_eq!(p.choose_victim(1, &cands(4), &info(5, 0x111)), 3);
    }

    #[test]
    fn friendly_fills_age_older_friendlies() {
        let (mut p, fb) = mk();
        p.on_fill(2, 0, &info(1, 0x111), &fb);
        let before = p.rrpv[p.idx(2, 0)];
        p.on_fill(2, 1, &info(2, 0x111), &fb);
        assert_eq!(p.rrpv[p.idx(2, 0)], before + 1);
    }

    #[test]
    fn unsampled_sets_do_not_train() {
        let (p, fb) = mk();
        // set 3 is not sampled with 64 sets / 64 sampled... with
        // num_sets=64 every set is sampled, so use a bigger geometry
        let mut p2 = Hawkeye::new();
        p2.initialize(256, 4, 1);
        let sig = pc_signature(0xAAA, false, 0, SIG_BITS);
        let before = p2.predictor.get(sig);
        for l in 0..100u64 {
            p2.on_miss(3, &info(l, 0xAAA), &fb); // set 3 unsampled (stride 4)
        }
        assert_eq!(p2.predictor.get(sig), before);
        let _ = p;
    }
}
