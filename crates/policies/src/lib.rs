//! # chrome-policies — baseline LLC management schemes
//!
//! The state-of-the-art schemes the paper compares CHROME against:
//!
//! * [`lru`] — the classic Least-Recently-Used baseline,
//! * [`drrip`] — DRRIP (set-dueling SRRIP/BRRIP),
//! * [`ship`] — SHiP++ (signature-based hit prediction, prefetch-aware),
//! * [`pacman`] — PACMan (static prefetch-aware RRIP, paper §VIII),
//! * [`hawkeye`] — Hawkeye (learning from Belady's OPT via OPTgen),
//! * [`glider`] — Glider's online ISVM distillation,
//! * [`mockingjay`] — Mockingjay (fine-grained reuse-distance mimicry of
//!   OPT with replacement *and* bypassing),
//! * [`care`] — CARE (concurrency-aware lightweight management using
//!   C-AMAT feedback), reconstructed from its description in the CHROME
//!   paper.
//!
//! All schemes implement [`chrome_sim::LlcPolicy`] and can be
//! instantiated by name via [`build_policy`].
//!
//! These are the hardware-LLC baselines. Their serving-cache
//! counterparts (LRU/SLRU/LFU/LFUDA/GDSF over byte-budgeted shards)
//! live in `chrome-serve::heuristics`, behind that crate's per-shard
//! `ShardPolicy` trait — the eviction ideas carry over, the metadata
//! (sizes, miss costs, resident sets) does not.

pub mod care;
pub mod common;
pub mod drrip;
pub mod glider;
pub mod hawkeye;
pub mod lru;
pub mod mockingjay;
pub mod pacman;
pub mod ship;

use chrome_sim::LlcPolicy;

pub use care::Care;
pub use drrip::Drrip;
pub use glider::Glider;
pub use hawkeye::Hawkeye;
pub use lru::Lru;
pub use mockingjay::Mockingjay;
pub use pacman::Pacman;
pub use ship::ShipPlusPlus;

/// Names of all baseline policies provided by this crate.
pub fn baseline_policies() -> &'static [&'static str] {
    &[
        "LRU",
        "DRRIP",
        "SHiP++",
        "PACMan",
        "Hawkeye",
        "Glider",
        "Mockingjay",
        "CARE",
    ]
}

/// Construct a baseline policy by name; `None` for unknown names.
///
/// ```
/// let p = chrome_policies::build_policy("Hawkeye").expect("known");
/// assert_eq!(p.name(), "Hawkeye");
/// ```
pub fn build_policy(name: &str) -> Option<Box<dyn LlcPolicy>> {
    Some(match name {
        "LRU" => Box::new(Lru::new()),
        "DRRIP" => Box::new(Drrip::new()),
        "SHiP++" => Box::new(ShipPlusPlus::new()),
        "PACMan" => Box::new(Pacman::new()),
        "Hawkeye" => Box::new(Hawkeye::new()),
        "Glider" => Box::new(Glider::new()),
        "Mockingjay" => Box::new(Mockingjay::new()),
        "CARE" => Box::new(Care::new()),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_baseline_builds_and_names_match() {
        for name in baseline_policies() {
            let p = build_policy(name).expect("builds");
            assert_eq!(p.name(), *name);
        }
    }

    #[test]
    fn unknown_policy_is_none() {
        assert!(build_policy("OPT").is_none());
    }
}
