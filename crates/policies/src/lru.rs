//! The LRU baseline (the paper's normalization reference).

use chrome_sim::overhead::StorageOverhead;
use chrome_sim::policy::{AccessInfo, CandidateLine, FillDecision, LlcPolicy, SystemFeedback};
use chrome_sim::types::LineAddr;

/// True-LRU replacement, no bypassing, prefetch-oblivious.
#[derive(Debug, Default)]
pub struct Lru {
    stamp: Vec<u64>,
    ways: usize,
    tick: u64,
}

impl Lru {
    /// Create an LRU policy (geometry set by `initialize`).
    pub fn new() -> Self {
        Self::default()
    }
}

impl LlcPolicy for Lru {
    fn initialize(&mut self, num_sets: usize, ways: usize, _cores: usize) {
        self.stamp = vec![0; num_sets * ways];
        self.ways = ways;
    }

    fn on_hit(&mut self, set: usize, way: usize, _: &AccessInfo, _: &SystemFeedback) {
        self.tick += 1;
        self.stamp[set * self.ways + way] = self.tick;
    }

    fn on_miss(&mut self, _: usize, _: &AccessInfo, _: &SystemFeedback) -> FillDecision {
        FillDecision::Insert
    }

    fn choose_victim(&mut self, set: usize, c: &[CandidateLine], _: &AccessInfo) -> usize {
        c.iter()
            .min_by_key(|cand| self.stamp[set * self.ways + cand.way])
            .expect("candidates nonempty")
            .way
    }

    fn on_fill(&mut self, set: usize, way: usize, _: &AccessInfo, _: &SystemFeedback) {
        self.tick += 1;
        self.stamp[set * self.ways + way] = self.tick;
    }

    fn on_evict(&mut self, _: usize, _: usize, _: LineAddr, _: bool) {}

    fn name(&self) -> &str {
        "LRU"
    }

    fn storage_overhead(&self, llc_blocks: usize) -> StorageOverhead {
        let mut o = StorageOverhead::new();
        // log2(12 ways) ≈ 4 bits of recency order per block
        o.add_table("recency stack position", llc_blocks as u64, 4);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(line: u64) -> AccessInfo {
        AccessInfo {
            core: 0,
            pc: 0,
            line: LineAddr(line),
            is_prefetch: false,
            is_write: false,
            cycle: 0,
        }
    }

    fn cands(n: usize) -> Vec<CandidateLine> {
        (0..n)
            .map(|w| CandidateLine {
                way: w,
                line: LineAddr(w as u64),
                prefetch: false,
                dirty: false,
            })
            .collect()
    }

    #[test]
    fn victim_is_least_recent() {
        let fb = SystemFeedback::new(1);
        let mut p = Lru::new();
        p.initialize(4, 2, 1);
        p.on_fill(0, 0, &info(1), &fb);
        p.on_fill(0, 1, &info(2), &fb);
        p.on_hit(0, 0, &info(1), &fb);
        assert_eq!(p.choose_victim(0, &cands(2), &info(3)), 1);
    }

    #[test]
    fn always_inserts() {
        let fb = SystemFeedback::new(1);
        let mut p = Lru::new();
        p.initialize(4, 2, 1);
        assert_eq!(p.on_miss(0, &info(1), &fb), FillDecision::Insert);
    }
}
