//! Mockingjay (Shah, Jain & Lin, HPCA'22): fine-grained mimicry of
//! Belady's MIN with integrated replacement *and* bypassing.
//!
//! A sampled reuse-distance monitor measures true reuse distances on a
//! few sets; a Reuse-Distance Predictor (RDP) maps PC signatures —
//! demand and prefetch kept separate — to predicted reuse distances.
//! Cached blocks carry an Estimated-Time-Remaining (ETR) counter that
//! decays with set accesses; the victim is the block whose next use is
//! farthest (max |ETR|), and incoming blocks predicted to be reused
//! farther than any resident block are bypassed.

use chrome_sim::overhead::StorageOverhead;
use chrome_sim::policy::{AccessInfo, CandidateLine, FillDecision, LlcPolicy, SystemFeedback};
use chrome_sim::types::LineAddr;

use crate::common::{pc_signature, ReuseSampler};

// Scale note: the paper samples 64 sets over 200M-instruction runs; our
// default runs are ~20x shorter, so experiments sample 4x more sets to
// keep per-set training volume comparable.
const SAMPLED_SETS: usize = 256;
const SIG_BITS: u32 = 13;
const RDP_ENTRIES: usize = 8 * 1024;
/// Reuse distances at or beyond this value are treated as "never".
const INF_RD: u16 = 512;

/// The Mockingjay policy.
pub struct Mockingjay {
    /// RDP: predicted reuse distance per signature (u16; INF_RD = never).
    rdp: Vec<u16>,
    rdp_valid: Vec<bool>,
    samplers: Vec<ReuseSampler>,
    etr: Vec<i16>,
    set_clock: Vec<u8>,
    num_sets: usize,
    ways: usize,
    granularity: u16,
}

impl std::fmt::Debug for Mockingjay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mockingjay")
            .field("sets", &self.num_sets)
            .finish_non_exhaustive()
    }
}

impl Default for Mockingjay {
    fn default() -> Self {
        Self::new()
    }
}

impl Mockingjay {
    /// Create a Mockingjay policy (geometry set by `initialize`).
    pub fn new() -> Self {
        Mockingjay {
            rdp: vec![0; RDP_ENTRIES],
            rdp_valid: vec![false; RDP_ENTRIES],
            samplers: Vec::new(),
            etr: Vec::new(),
            set_clock: Vec::new(),
            num_sets: 0,
            ways: 0,
            granularity: 8,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    #[inline]
    fn rdp_idx(sig: u64) -> usize {
        (sig % RDP_ENTRIES as u64) as usize
    }

    fn predicted_rd(&self, sig: u64) -> u16 {
        let i = Self::rdp_idx(sig);
        if self.rdp_valid[i] {
            self.rdp[i]
        } else {
            // optimistic default: assume moderate reuse until learned
            (self.ways as u16) * 4
        }
    }

    fn update_rdp(&mut self, sig: u64, observed: u16) {
        let i = Self::rdp_idx(sig);
        if !self.rdp_valid[i] {
            self.rdp[i] = observed;
            self.rdp_valid[i] = true;
        } else {
            let old = self.rdp[i] as i32;
            let obs = observed as i32;
            // EWMA with a fast path for large surprises
            let new = if (obs - old).abs() > old / 2 + 8 {
                old + (obs - old) * 3 / 4
            } else {
                old + (obs - old) / 8
            };
            self.rdp[i] = new.clamp(0, INF_RD as i32) as u16;
        }
    }

    /// Observe an access on a sampled set: measure reuse distances and
    /// train the RDP.
    fn sample(&mut self, set: usize, info: &AccessInfo) {
        let Some(si) = chrome_sim::policy::sampled_index(set, self.num_sets, SAMPLED_SETS) else {
            return;
        };
        let sig = pc_signature(info.pc, info.is_prefetch, info.core, SIG_BITS);
        let max_age = (self.ways as u64) * 16;
        if let Some((rd, _prev_sig)) = self.samplers[si].access(info.line.0, sig) {
            // the *previous* filler signature is trained with the
            // measured distance; the monitor stores the filler's sig
            self.update_rdp(_prev_sig, rd.min(INF_RD as u64 - 1) as u16);
        }
        // lines that aged out were never reused: train toward infinity
        let expired = self.samplers[si].expire(max_age);
        for prev_sig in expired {
            self.update_rdp(prev_sig, INF_RD);
        }
    }

    /// Advance the set's decay clock (one tick per set access).
    fn tick_set(&mut self, set: usize) {
        let c = &mut self.set_clock[set];
        *c += 1;
        if *c as u16 >= self.granularity {
            *c = 0;
            for w in 0..self.ways {
                let i = self.idx(set, w);
                self.etr[i] = self.etr[i].saturating_sub(1);
            }
        }
    }

    fn etr_for(&self, sig: u64) -> i16 {
        (self.predicted_rd(sig) / self.granularity) as i16
    }
}

impl LlcPolicy for Mockingjay {
    fn initialize(&mut self, num_sets: usize, ways: usize, _cores: usize) {
        self.num_sets = num_sets;
        self.ways = ways;
        self.etr = vec![0; num_sets * ways];
        self.set_clock = vec![0; num_sets];
        self.granularity = (ways as u16 / 2).max(1);
        self.samplers = (0..SAMPLED_SETS)
            .map(|_| ReuseSampler::new(ways * 2))
            .collect();
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo, _: &SystemFeedback) {
        self.sample(set, info);
        self.tick_set(set);
        let sig = pc_signature(info.pc, info.is_prefetch, info.core, SIG_BITS);
        let v = self.etr_for(sig);
        let i = self.idx(set, way);
        self.etr[i] = v;
    }

    fn on_miss(&mut self, set: usize, info: &AccessInfo, _: &SystemFeedback) -> FillDecision {
        self.sample(set, info);
        self.tick_set(set);
        let sig = pc_signature(info.pc, info.is_prefetch, info.core, SIG_BITS);
        let rd = self.predicted_rd(sig);
        // Bypass blocks predicted to be reused beyond what the set can
        // hold (or never). Writes are never bypassed.
        if !info.is_write && rd >= (self.ways as u16) * self.granularity * 2 {
            return FillDecision::Bypass;
        }
        FillDecision::Insert
    }

    fn choose_victim(&mut self, set: usize, c: &[CandidateLine], _: &AccessInfo) -> usize {
        c.iter()
            .max_by_key(|cand| {
                let e = self.etr[self.idx(set, cand.way)];
                (e.unsigned_abs(), e < 0)
            })
            .expect("candidates nonempty")
            .way
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo, _: &SystemFeedback) {
        let sig = pc_signature(info.pc, info.is_prefetch, info.core, SIG_BITS);
        let v = self.etr_for(sig);
        let i = self.idx(set, way);
        self.etr[i] = v;
    }

    fn on_evict(&mut self, _: usize, _: usize, _: LineAddr, _: bool) {}

    fn name(&self) -> &str {
        "Mockingjay"
    }

    fn storage_overhead(&self, llc_blocks: usize) -> StorageOverhead {
        let mut o = StorageOverhead::new();
        o.add_table("RDP", RDP_ENTRIES as u64, 10);
        o.add_table("per-block ETR", llc_blocks as u64, 5);
        o.add_table("sampled cache", 64 * 24, 45); // hardware budget uses the paper's 64 sets
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(line: u64, pc: u64, prefetch: bool) -> AccessInfo {
        AccessInfo {
            core: 0,
            pc,
            line: LineAddr(line),
            is_prefetch: prefetch,
            is_write: false,
            cycle: 0,
        }
    }

    fn mk() -> (Mockingjay, SystemFeedback) {
        let mut p = Mockingjay::new();
        p.initialize(64, 4, 1);
        (p, SystemFeedback::new(1))
    }

    #[test]
    fn tight_reuse_learns_small_rd() {
        let (mut p, fb) = mk();
        for l in 0..400u64 {
            p.on_miss(0, &info(l % 2, 0x700, false), &fb);
        }
        let sig = pc_signature(0x700, false, 0, SIG_BITS);
        assert!(p.predicted_rd(sig) <= 4, "rd = {}", p.predicted_rd(sig));
    }

    #[test]
    fn never_reused_pc_learns_infinite_rd_and_bypasses() {
        let (mut p, fb) = mk();
        // long scan: every line unique, never reused
        for l in 0..4000u64 {
            p.on_miss(0, &info(l * 64, 0xBAD, false), &fb);
        }
        let sig = pc_signature(0xBAD, false, 0, SIG_BITS);
        assert!(p.predicted_rd(sig) > 100, "rd = {}", p.predicted_rd(sig));
        assert_eq!(
            p.on_miss(0, &info(1 << 30, 0xBAD, false), &fb),
            FillDecision::Bypass
        );
    }

    #[test]
    fn victim_is_farthest_predicted() {
        let (mut p, fb) = mk();
        p.on_fill(1, 0, &info(1, 0x1, false), &fb);
        p.on_fill(1, 1, &info(2, 0x2, false), &fb);
        // manually bias way 1 to be far in the future
        let i = p.idx(1, 1);
        p.etr[i] = 100;
        let cands: Vec<CandidateLine> = (0..2)
            .map(|w| CandidateLine {
                way: w,
                line: LineAddr(w as u64),
                prefetch: false,
                dirty: false,
            })
            .collect();
        assert_eq!(p.choose_victim(1, &cands, &info(3, 0x3, false)), 1);
    }

    #[test]
    fn overdue_blocks_beat_future_blocks_on_tie() {
        let (mut p, _fb) = mk();
        let (i0, i1) = (p.idx(1, 0), p.idx(1, 1));
        p.etr[i0] = 50;
        p.etr[i1] = -50;
        let cands: Vec<CandidateLine> = (0..2)
            .map(|w| CandidateLine {
                way: w,
                line: LineAddr(w as u64),
                prefetch: false,
                dirty: false,
            })
            .collect();
        // |etr| ties at 50; overdue (negative) is the better victim
        assert_eq!(p.choose_victim(1, &cands, &info(3, 0x3, false)), 1);
    }

    #[test]
    fn etr_decays_with_set_accesses() {
        let (mut p, fb) = mk();
        p.on_fill(2, 0, &info(1, 0x1, false), &fb);
        let before = p.etr[p.idx(2, 0)];
        for l in 0..64u64 {
            p.on_miss(2, &info(1000 + l, 0x5, false), &fb);
        }
        assert!(p.etr[p.idx(2, 0)] < before);
    }

    #[test]
    fn prefetch_and_demand_signatures_are_distinct() {
        let (mut p, fb) = mk();
        // demand from 0x900 reuses tightly; prefetch from 0x900 never
        for l in 0..400u64 {
            p.on_miss(0, &info(l % 2, 0x900, false), &fb);
        }
        for l in 0..2000u64 {
            p.on_miss(0, &info((1 << 20) + l * 64, 0x900, true), &fb);
        }
        let d = pc_signature(0x900, false, 0, SIG_BITS);
        let pf = pc_signature(0x900, true, 0, SIG_BITS);
        assert!(p.predicted_rd(d) < p.predicted_rd(pf));
    }
}
