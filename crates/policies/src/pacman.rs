//! PACMan (Wu et al., MICRO'11): Prefetch-Aware Cache Management.
//!
//! Discussed in the paper's related work (§VIII): PACMan mitigates
//! prefetch-induced interference by *statically* differentiating demand
//! and prefetch requests in the insertion and hit-promotion policies of
//! an RRIP cache — prefetch fills insert distant, and prefetch hits do
//! not promote. It is the classic static counterpoint to CHROME's
//! learned prefetch treatment.

use chrome_sim::overhead::StorageOverhead;
use chrome_sim::policy::{AccessInfo, CandidateLine, FillDecision, LlcPolicy, SystemFeedback};
use chrome_sim::types::LineAddr;

use crate::common::RrpvArray;

/// The PACMan policy (the PACMan-HM variant: prefetch-aware hit
/// promotion and miss insertion).
#[derive(Debug)]
pub struct Pacman {
    rrpv: RrpvArray,
}

impl Default for Pacman {
    fn default() -> Self {
        Self::new()
    }
}

impl Pacman {
    /// Create a PACMan policy (geometry set by `initialize`).
    pub fn new() -> Self {
        Pacman {
            rrpv: RrpvArray::new(1, 1, 3),
        }
    }
}

impl LlcPolicy for Pacman {
    fn initialize(&mut self, num_sets: usize, ways: usize, _cores: usize) {
        self.rrpv = RrpvArray::new(num_sets, ways, 3);
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo, _: &SystemFeedback) {
        if info.is_prefetch {
            // PACMan-H: a prefetch hit does not promote — it says
            // nothing about demand reuse
            return;
        }
        self.rrpv.set(set, way, 0);
    }

    fn on_miss(&mut self, _: usize, _: &AccessInfo, _: &SystemFeedback) -> FillDecision {
        FillDecision::Insert
    }

    fn choose_victim(&mut self, set: usize, c: &[CandidateLine], _: &AccessInfo) -> usize {
        self.rrpv.victim(set, c)
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo, _: &SystemFeedback) {
        // PACMan-M: prefetch fills insert at the most-distant RRPV,
        // demand fills at the SRRIP long interval
        let rrpv = if info.is_prefetch { 3 } else { 2 };
        self.rrpv.set(set, way, rrpv);
    }

    fn on_evict(&mut self, _: usize, _: usize, _: LineAddr, _: bool) {}

    fn name(&self) -> &str {
        "PACMan"
    }

    fn storage_overhead(&self, llc_blocks: usize) -> StorageOverhead {
        let mut o = StorageOverhead::new();
        o.add_table("per-block RRPV", llc_blocks as u64, 2);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(line: u64, prefetch: bool) -> AccessInfo {
        AccessInfo {
            core: 0,
            pc: 0x400,
            line: LineAddr(line),
            is_prefetch: prefetch,
            is_write: false,
            cycle: 0,
        }
    }

    fn mk() -> (Pacman, SystemFeedback) {
        let mut p = Pacman::new();
        p.initialize(16, 4, 1);
        (p, SystemFeedback::new(1))
    }

    #[test]
    fn demand_fill_near_prefetch_fill_distant() {
        let (mut p, fb) = mk();
        p.on_fill(0, 0, &info(1, false), &fb);
        p.on_fill(0, 1, &info(2, true), &fb);
        assert_eq!(p.rrpv.get(0, 0), 2);
        assert_eq!(p.rrpv.get(0, 1), 3);
    }

    #[test]
    fn prefetch_hit_does_not_promote() {
        let (mut p, fb) = mk();
        p.on_fill(0, 0, &info(1, true), &fb);
        p.on_hit(0, 0, &info(1, true), &fb);
        assert_eq!(p.rrpv.get(0, 0), 3, "prefetch hit must not promote");
        p.on_hit(0, 0, &info(1, false), &fb);
        assert_eq!(p.rrpv.get(0, 0), 0, "demand hit promotes");
    }

    #[test]
    fn prefetched_blocks_evicted_first() {
        let (mut p, fb) = mk();
        p.on_fill(1, 0, &info(1, false), &fb);
        p.on_fill(1, 1, &info(2, true), &fb);
        p.on_fill(1, 2, &info(3, false), &fb);
        p.on_fill(1, 3, &info(4, false), &fb);
        let cands: Vec<CandidateLine> = (0..4)
            .map(|w| CandidateLine {
                way: w,
                line: LineAddr(w as u64),
                prefetch: w == 1,
                dirty: false,
            })
            .collect();
        assert_eq!(p.choose_victim(1, &cands, &info(5, false)), 1);
    }
}
