//! SHiP++ (Young et al., CRC-2): signature-based hit prediction with
//! prefetch-aware refinements over SHiP.
//!
//! Per-block state: the filler's PC signature and an outcome bit. A
//! signature history counter table (SHCT) learns whether blocks loaded
//! by a signature are re-referenced; insertions by never-reused
//! signatures go in at distant RRPV. SHiP++ refinements implemented:
//! train only on the first re-reference, separate prefetch signatures,
//! and distant insertion for prefetch fills with cold signatures.

use chrome_sim::overhead::StorageOverhead;
use chrome_sim::policy::{AccessInfo, CandidateLine, FillDecision, LlcPolicy, SystemFeedback};
use chrome_sim::types::LineAddr;
use chrome_telemetry::TelemetrySink;

use crate::common::{pc_signature, CounterTable, DecisionTrace, RrpvArray};

const SHCT_ENTRIES: usize = 16 * 1024;
const SHCT_MAX: u8 = 7;
const SIG_BITS: u32 = 14;

/// The SHiP++ policy.
#[derive(Debug)]
pub struct ShipPlusPlus {
    rrpv: RrpvArray,
    shct: CounterTable,
    block_sig: Vec<u16>,
    block_reused: Vec<bool>,
    ways: usize,
    trace: DecisionTrace,
}

impl Default for ShipPlusPlus {
    fn default() -> Self {
        Self::new()
    }
}

impl ShipPlusPlus {
    /// Create a SHiP++ policy (geometry set by `initialize`).
    pub fn new() -> Self {
        ShipPlusPlus {
            rrpv: RrpvArray::new(1, 1, 3),
            shct: CounterTable::new(SHCT_ENTRIES, SHCT_MAX),
            block_sig: Vec::new(),
            block_reused: Vec::new(),
            ways: 0,
            trace: DecisionTrace::default(),
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }
}

impl LlcPolicy for ShipPlusPlus {
    fn initialize(&mut self, num_sets: usize, ways: usize, _cores: usize) {
        self.rrpv = RrpvArray::new(num_sets, ways, 3);
        self.block_sig = vec![0; num_sets * ways];
        self.block_reused = vec![false; num_sets * ways];
        self.ways = ways;
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo, _: &SystemFeedback) {
        self.rrpv.set(set, way, 0);
        let i = self.idx(set, way);
        // SHiP++: train only on the first re-reference, and not on
        // prefetch hits (they say nothing about demand reuse)
        if !self.block_reused[i] && !info.is_prefetch {
            self.block_reused[i] = true;
            self.shct.bump_up(self.block_sig[i] as u64);
        }
    }

    fn on_miss(&mut self, _: usize, _: &AccessInfo, _: &SystemFeedback) -> FillDecision {
        FillDecision::Insert
    }

    fn choose_victim(&mut self, set: usize, c: &[CandidateLine], _: &AccessInfo) -> usize {
        self.rrpv.victim(set, c)
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo, _: &SystemFeedback) {
        let sig = pc_signature(info.pc, info.is_prefetch, 0, SIG_BITS);
        let i = self.idx(set, way);
        self.block_sig[i] = sig as u16;
        self.block_reused[i] = false;
        let counter = self.shct.get(sig);
        let rrpv = if info.is_prefetch {
            // prefetches insert distant unless their signature is hot
            if counter >= SHCT_MAX {
                1
            } else {
                3
            }
        } else if counter == 0 {
            3
        } else if counter >= SHCT_MAX {
            0
        } else {
            2
        };
        self.trace.verdict(info.cycle, info.core, sig, rrpv < 3);
        self.rrpv.set(set, way, rrpv);
    }

    fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.trace.attach(sink);
    }

    fn on_evict(&mut self, set: usize, way: usize, _: LineAddr, was_hit: bool) {
        let i = self.idx(set, way);
        if !was_hit {
            self.shct.bump_down(self.block_sig[i] as u64);
        }
    }

    fn name(&self) -> &str {
        "SHiP++"
    }

    fn storage_overhead(&self, llc_blocks: usize) -> StorageOverhead {
        let mut o = StorageOverhead::new();
        o.add_table("SHCT", SHCT_ENTRIES as u64, 3);
        o.add_table("per-block signature", llc_blocks as u64, SIG_BITS as u64);
        o.add_table("per-block RRPV + outcome", llc_blocks as u64, 3);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(line: u64, pc: u64, prefetch: bool) -> AccessInfo {
        AccessInfo {
            core: 0,
            pc,
            line: LineAddr(line),
            is_prefetch: prefetch,
            is_write: false,
            cycle: 0,
        }
    }

    fn mk() -> (ShipPlusPlus, SystemFeedback) {
        let mut p = ShipPlusPlus::new();
        p.initialize(16, 4, 1);
        (p, SystemFeedback::new(1))
    }

    #[test]
    fn cold_signature_inserts_distant() {
        let (mut p, fb) = mk();
        // teach the SHCT that pc 0x400 never reuses
        for i in 0..40 {
            p.on_fill(0, (i % 4) as usize, &info(i, 0x400, false), &fb);
            p.on_evict(0, (i % 4) as usize, LineAddr(i), false);
        }
        p.on_fill(0, 0, &info(100, 0x400, false), &fb);
        assert_eq!(p.rrpv.get(0, 0), 3);
    }

    #[test]
    fn hot_signature_inserts_near() {
        let (mut p, fb) = mk();
        for i in 0..40 {
            p.on_fill(0, 0, &info(i, 0x500, false), &fb);
            p.on_hit(0, 0, &info(i, 0x999, false), &fb);
        }
        p.on_fill(0, 1, &info(100, 0x500, false), &fb);
        assert_eq!(p.rrpv.get(0, 1), 0);
    }

    #[test]
    fn hit_promotes_to_zero() {
        let (mut p, fb) = mk();
        p.on_fill(0, 2, &info(1, 0x400, false), &fb);
        p.on_hit(0, 2, &info(1, 0x400, false), &fb);
        assert_eq!(p.rrpv.get(0, 2), 0);
    }

    #[test]
    fn trains_only_on_first_rereference() {
        let (mut p, fb) = mk();
        p.on_fill(0, 0, &info(1, 0x400, false), &fb);
        let sig = pc_signature(0x400, false, 0, SIG_BITS);
        let before = p.shct.get(sig);
        p.on_hit(0, 0, &info(1, 0x400, false), &fb);
        p.on_hit(0, 0, &info(1, 0x400, false), &fb);
        p.on_hit(0, 0, &info(1, 0x400, false), &fb);
        assert_eq!(p.shct.get(sig), before + 1);
    }

    #[test]
    fn prefetch_inserts_distant_by_default() {
        let (mut p, fb) = mk();
        p.on_fill(0, 3, &info(1, 0x600, true), &fb);
        assert_eq!(p.rrpv.get(0, 3), 3);
    }

    #[test]
    fn never_bypasses() {
        let (mut p, fb) = mk();
        assert_eq!(p.on_miss(0, &info(1, 0, false), &fb), FillDecision::Insert);
    }
}
