//! Randomized invariant tests for the shared policy infrastructure,
//! driven by a seeded in-repo RNG so every run is deterministic.

use chrome_policies::common::{CounterTable, OptGen, ReuseSampler, RrpvArray};
use chrome_sim::policy::CandidateLine;
use chrome_sim::rng::SmallRng;
use chrome_sim::types::LineAddr;

const CASES: usize = 96;

fn cands(n: usize) -> Vec<CandidateLine> {
    (0..n)
        .map(|w| CandidateLine {
            way: w,
            line: LineAddr(w as u64),
            prefetch: false,
            dirty: false,
        })
        .collect()
}

/// RRPV victim selection always returns a candidate way and leaves at
/// least one block at max RRPV.
#[test]
fn rrpv_victim_always_valid() {
    let mut rng = SmallRng::seed_from_u64(0xB01_0001);
    for case in 0..CASES {
        let ways = rng.gen_range(2..12usize);
        let mut r = RrpvArray::new(1, ways, 3);
        for w in 0..ways {
            r.set(0, w, rng.gen_range(0u32..4) as u8);
        }
        let v = r.victim(0, &cands(ways));
        assert!(v < ways, "case {case}: victim out of range");
        assert_eq!(r.get(0, v), 3, "case {case}: victim not at max RRPV");
    }
}

/// Counters saturate at both ends and never wrap.
#[test]
fn counters_saturate() {
    let mut rng = SmallRng::seed_from_u64(0xB01_0002);
    for case in 0..CASES {
        let sig = rng.next_u64();
        let ops = rng.gen_range(1..300usize);
        let mut t = CounterTable::new(64, 7);
        for _ in 0..ops {
            if rng.next_u64() & 1 == 1 {
                t.bump_up(sig)
            } else {
                t.bump_down(sig)
            }
            assert!(t.get(sig) <= 7, "case {case}: counter wrapped");
        }
    }
}

/// OPTgen: every re-access (and only re-accesses) yields an outcome.
#[test]
fn optgen_counts_consistent() {
    let mut rng = SmallRng::seed_from_u64(0xB01_0003);
    for case in 0..CASES {
        let mut g = OptGen::new(8);
        let mut reaccesses = 0u32;
        let mut outcomes = 0u32;
        let mut seen = std::collections::HashSet::new();
        let count = rng.gen_range(2..200usize);
        for _ in 0..count {
            let l = rng.gen_range(0u64..32);
            let prior = !seen.insert(l);
            if g.access(l, 0).is_some() {
                outcomes += 1;
            }
            if prior {
                reaccesses += 1;
            }
        }
        assert_eq!(
            outcomes, reaccesses,
            "case {case}: outcome per re-access broken"
        );
    }
}

/// Working sets no larger than the OPT capacity are always kept.
#[test]
fn optgen_small_sets_always_hit() {
    let mut rng = SmallRng::seed_from_u64(0xB01_0004);
    for case in 0..CASES {
        let ws = rng.gen_range(1u64..8);
        let reps = rng.gen_range(2..40usize);
        let mut g = OptGen::new(8);
        for _ in 0..reps {
            for l in 0..ws {
                if let Some(out) = g.access(l, 0) {
                    assert!(
                        out.opt_hit,
                        "case {case}: line {l} should be OPT-kept (ws={ws})"
                    );
                }
            }
        }
    }
}

/// The reuse sampler's measured distance equals the true number of
/// intervening accesses.
#[test]
fn sampler_distances_exact() {
    let mut rng = SmallRng::seed_from_u64(0xB01_0005);
    for case in 0..CASES {
        let gap = rng.gen_range(1u64..30);
        let mut s = ReuseSampler::new(64);
        s.access(999, 7);
        for i in 0..gap {
            s.access(i, 0);
        }
        let (rd, payload) = s.access(999, 8).expect("tracked");
        assert_eq!(rd, gap + 1, "case {case}: wrong distance");
        assert_eq!(payload, 7, "case {case}: wrong payload");
    }
}
