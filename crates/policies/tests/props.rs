//! Property-based tests for the shared policy infrastructure.

use chrome_policies::common::{CounterTable, OptGen, ReuseSampler, RrpvArray};
use chrome_sim::policy::CandidateLine;
use chrome_sim::types::LineAddr;
use proptest::prelude::*;

fn cands(n: usize) -> Vec<CandidateLine> {
    (0..n)
        .map(|w| CandidateLine { way: w, line: LineAddr(w as u64), prefetch: false, dirty: false })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// RRPV victim selection always returns a candidate way and leaves
    /// at least one block at max RRPV.
    #[test]
    fn rrpv_victim_always_valid(vals in prop::collection::vec(0u8..4, 2..12)) {
        let ways = vals.len();
        let mut r = RrpvArray::new(1, ways, 3);
        for (w, &v) in vals.iter().enumerate() {
            r.set(0, w, v);
        }
        let v = r.victim(0, &cands(ways));
        prop_assert!(v < ways);
        prop_assert_eq!(r.get(0, v), 3);
    }

    /// Counters saturate at both ends and never wrap.
    #[test]
    fn counters_saturate(ops in prop::collection::vec(any::<bool>(), 1..300),
                         sig in any::<u64>()) {
        let mut t = CounterTable::new(64, 7);
        for up in ops {
            if up { t.bump_up(sig) } else { t.bump_down(sig) }
            prop_assert!(t.get(sig) <= 7);
        }
    }

    /// OPTgen: hits plus misses equals re-accesses, and an access stream
    /// that fits in the set is always OPT-hit.
    #[test]
    fn optgen_counts_consistent(lines in prop::collection::vec(0u64..32, 2..200)) {
        let mut g = OptGen::new(8);
        let mut reaccesses = 0u32;
        let mut outcomes = 0u32;
        let mut seen = std::collections::HashSet::new();
        for &l in &lines {
            let prior = !seen.insert(l);
            if let Some(_out) = g.access(l, 0) {
                outcomes += 1;
            }
            if prior {
                reaccesses += 1;
            }
        }
        prop_assert_eq!(outcomes, reaccesses, "every re-access yields an outcome");
    }

    /// Working sets no larger than the OPT capacity are always kept.
    #[test]
    fn optgen_small_sets_always_hit(ws in 1u64..8, reps in 2usize..40) {
        let mut g = OptGen::new(8);
        for _ in 0..reps {
            for l in 0..ws {
                if let Some(out) = g.access(l, 0) {
                    prop_assert!(out.opt_hit, "line {l} should be OPT-kept (ws={ws})");
                }
            }
        }
    }

    /// The reuse sampler's measured distance equals the true number of
    /// intervening accesses.
    #[test]
    fn sampler_distances_exact(gap in 1u64..30) {
        let mut s = ReuseSampler::new(64);
        s.access(999, 7);
        for i in 0..gap {
            s.access(i, 0);
        }
        let (rd, payload) = s.access(999, 8).expect("tracked");
        prop_assert_eq!(rd, gap + 1);
        prop_assert_eq!(payload, 7);
    }
}
