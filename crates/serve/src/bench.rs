//! The servebench measurement harness: drive N client threads against
//! one [`ServeCache`] and report hit ratio, latency percentiles and
//! throughput — byte-identically reproducible at any thread count.
//!
//! Determinism comes from three choices:
//!
//! 1. the request stream is **pre-generated** from a seed derived via
//!    [`chrome_exec::workload_seed`] (stream name + shard count), so
//!    thread scheduling can never perturb what is asked;
//! 2. requests are **partitioned by shard** and each worker thread
//!    owns a disjoint set of shards (`shard % threads == t`), so every
//!    shard sees its requests in exactly the generated order no matter
//!    how many workers exist;
//! 3. latencies are **virtual** (hit cost + key-derived backend cost),
//!    so percentiles are functions of the access pattern alone.
//!
//! Only wall-clock figures (`rps`, `wall_ms`) vary between runs; every
//! counter and percentile is a pure function of `(params, seed)`.

use std::time::Instant;

use chrome_exec::workload_seed;

use crate::cache::{CacheStats, ServeCache, ServeConfig};
use crate::policy::PolicyKind;
use crate::stream::{Request, RequestStream, StreamKind};

/// One benchmark cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchParams {
    /// Policy under test.
    pub policy: PolicyKind,
    /// Request stream kind.
    pub stream: StreamKind,
    /// Client threads (clamped to at least 1).
    pub threads: usize,
    /// Total requests.
    pub requests: usize,
    /// Keys per tenant.
    pub keyspace: u64,
    /// Root seed (stream + per-shard RNG derivation).
    pub seed: u64,
    /// Shard count (power of two).
    pub shards: usize,
    /// Slots per shard.
    pub shard_slots: usize,
    /// Value-byte budget per shard.
    pub shard_bytes: u64,
}

impl Default for BenchParams {
    fn default() -> Self {
        BenchParams {
            policy: PolicyKind::Chrome,
            stream: StreamKind::MixedTenant,
            threads: 8,
            requests: 200_000,
            keyspace: 20_000,
            seed: 0xC42,
            shards: 16,
            shard_slots: 512,
            shard_bytes: 256 * 1024,
        }
    }
}

/// One cell's outcome.
#[derive(Debug, Clone, Copy)]
pub struct BenchResult {
    /// Policy name.
    pub policy: &'static str,
    /// Stream name.
    pub stream: &'static str,
    /// Worker threads used.
    pub threads: usize,
    /// Merged counters.
    pub stats: CacheStats,
    /// Virtual service-latency median (µs).
    pub p50_us: u32,
    /// Virtual service-latency 99th percentile (µs).
    pub p99_us: u32,
    /// Wall-clock duration (ms) — machine-dependent.
    pub wall_ms: f64,
    /// Requests per wall-clock second — machine-dependent.
    pub rps: f64,
}

/// Run one benchmark cell.
pub fn run(p: &BenchParams) -> BenchResult {
    // the stream seed depends on (stream, shards, seed) but NOT the
    // thread count: any -j produces the same requests
    let stream_seed = workload_seed(p.stream.name(), p.shards as u32, p.seed);
    let requests = RequestStream::generate(p.stream, p.requests, p.keyspace, stream_seed);
    let cache = ServeCache::new(&ServeConfig {
        policy: p.policy,
        shards: p.shards,
        shard_slots: p.shard_slots,
        shard_bytes: p.shard_bytes,
        seed: p.seed,
    });

    // partition per shard, preserving stream order within each shard
    let mut by_shard: Vec<Vec<Request>> = (0..p.shards).map(|_| Vec::new()).collect();
    for r in &requests {
        by_shard[cache.shard_index(r.key)].push(*r);
    }

    let threads = p.threads.clamp(1, p.shards);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = &cache;
            let by_shard = &by_shard;
            scope.spawn(move || {
                // each worker owns shards ≡ t (mod threads): disjoint
                // ownership keeps per-shard order equal at any -j
                for shard in (t..by_shard.len()).step_by(threads) {
                    for r in &by_shard[shard] {
                        cache.access(r);
                    }
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64().max(1e-9);

    let hist = cache.histogram();
    BenchResult {
        policy: p.policy.name(),
        stream: p.stream.name(),
        threads,
        stats: cache.stats(),
        p50_us: hist.percentile(0.50),
        p99_us: hist.percentile(0.99),
        wall_ms: wall * 1e3,
        rps: p.requests as f64 / wall,
    }
}

/// Run one cell and also return the cache's decision-event JSONL
/// (empty unless the policy keeps a ring).
pub fn run_with_events(p: &BenchParams) -> (BenchResult, String) {
    let stream_seed = workload_seed(p.stream.name(), p.shards as u32, p.seed);
    let requests = RequestStream::generate(p.stream, p.requests, p.keyspace, stream_seed);
    let cache = ServeCache::new(&ServeConfig {
        policy: p.policy,
        shards: p.shards,
        shard_slots: p.shard_slots,
        shard_bytes: p.shard_bytes,
        seed: p.seed,
    });
    for r in &requests {
        cache.access(r);
    }
    let hist = cache.histogram();
    let result = BenchResult {
        policy: p.policy.name(),
        stream: p.stream.name(),
        threads: 1,
        stats: cache.stats(),
        p50_us: hist.percentile(0.50),
        p99_us: hist.percentile(0.99),
        wall_ms: 0.0,
        rps: 0.0,
    };
    (result, cache.events_jsonl())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(policy: PolicyKind, stream: StreamKind, threads: usize) -> BenchParams {
        BenchParams {
            policy,
            stream,
            threads,
            requests: 20_000,
            keyspace: 4_000,
            shards: 8,
            shard_slots: 128,
            shard_bytes: 64 * 1024,
            ..BenchParams::default()
        }
    }

    #[test]
    fn counters_are_thread_count_invariant() {
        let base = run(&quick(PolicyKind::Chrome, StreamKind::MixedTenant, 1));
        for threads in [2, 8] {
            let r = run(&quick(PolicyKind::Chrome, StreamKind::MixedTenant, threads));
            assert_eq!(r.stats, base.stats, "threads={threads}");
            assert_eq!((r.p50_us, r.p99_us), (base.p50_us, base.p99_us));
        }
    }

    #[test]
    fn percentiles_order_sanely() {
        let r = run(&quick(PolicyKind::Lru, StreamKind::Zipf, 4));
        assert!(r.p50_us <= r.p99_us);
        assert!(r.stats.hit_ratio() > 0.0);
        assert_eq!(r.stats.errors, 0);
    }

    #[test]
    fn events_variant_matches_plain_run() {
        let p = quick(PolicyKind::Chrome, StreamKind::Zipf, 1);
        let plain = run(&p);
        let (with_events, jsonl) = run_with_events(&p);
        assert_eq!(plain.stats, with_events.stats);
        assert!(!jsonl.is_empty());
    }
}
