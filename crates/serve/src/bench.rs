//! The servebench measurement harness: drive N client threads against
//! one [`ServeCache`] and report hit ratio, latency percentiles and
//! throughput — byte-identically reproducible at any thread count.
//!
//! Determinism comes from three choices:
//!
//! 1. the request stream is **pre-generated** from a seed derived via
//!    [`chrome_exec::workload_seed`] (stream name + shard count), so
//!    thread scheduling can never perturb what is asked;
//! 2. requests are **partitioned by shard** and each worker thread
//!    owns a disjoint set of shards (`shard % threads == t`), so every
//!    shard sees its requests in exactly the generated order no matter
//!    how many workers exist;
//! 3. latencies are **virtual** (hit cost + key-derived backend cost),
//!    so percentiles are functions of the access pattern alone.
//!
//! Only wall-clock figures (`rps`, `wall_ms`) vary between runs; every
//! counter and percentile is a pure function of `(params, seed)`.

use std::time::Instant;

use chrome_exec::workload_seed;

use crate::cache::{CacheStats, PolicyTiming, ServeCache, ServeConfig};
use crate::policy::PolicyKind;
use crate::stream::{Request, RequestStream, StreamKind};

/// One benchmark cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchParams {
    /// Policy under test.
    pub policy: PolicyKind,
    /// Request stream kind.
    pub stream: StreamKind,
    /// Client threads (clamped to at least 1).
    pub threads: usize,
    /// Total requests.
    pub requests: usize,
    /// Keys per tenant.
    pub keyspace: u64,
    /// Root seed (stream + per-shard RNG derivation).
    pub seed: u64,
    /// Shard count (power of two).
    pub shards: usize,
    /// Slots per shard.
    pub shard_slots: usize,
    /// Value-byte budget per shard.
    pub shard_bytes: u64,
    /// Time the policy's decision path (see
    /// [`ServeConfig::time_policy`]).
    pub time_policy: bool,
}

impl Default for BenchParams {
    fn default() -> Self {
        BenchParams {
            policy: PolicyKind::Chrome,
            stream: StreamKind::MixedTenant,
            threads: 8,
            requests: 200_000,
            keyspace: 20_000,
            seed: 0xC42,
            shards: 16,
            shard_slots: 512,
            shard_bytes: 256 * 1024,
            time_policy: false,
        }
    }
}

impl BenchParams {
    fn serve_config(&self) -> ServeConfig {
        ServeConfig {
            policy: self.policy,
            shards: self.shards,
            shard_slots: self.shard_slots,
            shard_bytes: self.shard_bytes,
            seed: self.seed,
            time_policy: self.time_policy,
        }
    }
}

/// One cell's outcome.
#[derive(Debug, Clone, Copy)]
pub struct BenchResult {
    /// Policy name.
    pub policy: &'static str,
    /// Stream name.
    pub stream: &'static str,
    /// Worker threads used.
    pub threads: usize,
    /// Merged counters.
    pub stats: CacheStats,
    /// Virtual service-latency median (µs).
    pub p50_us: u32,
    /// Virtual service-latency 99th percentile (µs).
    pub p99_us: u32,
    /// Wall-clock duration (ms) — machine-dependent.
    pub wall_ms: f64,
    /// Requests per wall-clock second — machine-dependent.
    pub rps: f64,
    /// Decision-path timing, when [`BenchParams::time_policy`] was set.
    pub timing: Option<PolicyTiming>,
}

/// Where the decision-event stream went: how much the run produced,
/// how much the bounded rings kept, and how much an export cap cut.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventsMeta {
    /// Decision events the run offered to the rings.
    pub offered: u64,
    /// Stored events the bounded rings later overwrote.
    pub overwritten: u64,
    /// JSONL lines actually exported.
    pub exported: u64,
    /// Retained lines dropped by an explicit export cap.
    pub truncated: u64,
}

/// Run one benchmark cell.
pub fn run(p: &BenchParams) -> BenchResult {
    run_inner(p, None).0
}

/// Run one cell with per-decision audit recording on (bounded to
/// `audit_cap` records per shard), returning the merged binary audit
/// trail alongside the result. The blob is byte-identical at any
/// thread count.
pub fn run_audited(p: &BenchParams, audit_cap: usize) -> (BenchResult, Vec<u8>) {
    let (result, audit) = run_inner(p, Some(audit_cap));
    (result, audit.expect("audit requested"))
}

fn run_inner(p: &BenchParams, audit_cap: Option<usize>) -> (BenchResult, Option<Vec<u8>>) {
    // the stream seed depends on (stream, shards, seed) but NOT the
    // thread count: any -j produces the same requests
    let stream_seed = workload_seed(p.stream.name(), p.shards as u32, p.seed);
    let requests = RequestStream::generate(p.stream, p.requests, p.keyspace, stream_seed);
    let cache = ServeCache::new(&p.serve_config());
    if let Some(cap) = audit_cap {
        cache.enable_audit(cap);
    }

    // partition per shard, preserving stream order within each shard
    let mut by_shard: Vec<Vec<Request>> = (0..p.shards).map(|_| Vec::new()).collect();
    for r in &requests {
        by_shard[cache.shard_index(r.key)].push(*r);
    }

    let threads = p.threads.clamp(1, p.shards);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = &cache;
            let by_shard = &by_shard;
            scope.spawn(move || {
                // each worker owns shards ≡ t (mod threads): disjoint
                // ownership keeps per-shard order equal at any -j
                for shard in (t..by_shard.len()).step_by(threads) {
                    for r in &by_shard[shard] {
                        cache.access(r);
                    }
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64().max(1e-9);

    let hist = cache.histogram();
    let result = BenchResult {
        policy: p.policy.name(),
        stream: p.stream.name(),
        threads,
        stats: cache.stats(),
        p50_us: hist.percentile(0.50),
        p99_us: hist.percentile(0.99),
        wall_ms: wall * 1e3,
        rps: p.requests as f64 / wall,
        timing: cache.timing(),
    };
    let audit = audit_cap.map(|_| cache.audit_bytes());
    (result, audit)
}

/// Run one cell and also return the cache's decision-event JSONL
/// (empty unless the policy keeps a ring).
pub fn run_with_events(p: &BenchParams) -> (BenchResult, String) {
    let (result, jsonl, _) = run_with_events_capped(p, None);
    (result, jsonl)
}

/// Like [`run_with_events`], but drop retained lines past `max_events`
/// and account for everything the export did not keep in the returned
/// [`EventsMeta`].
pub fn run_with_events_capped(
    p: &BenchParams,
    max_events: Option<u64>,
) -> (BenchResult, String, EventsMeta) {
    let stream_seed = workload_seed(p.stream.name(), p.shards as u32, p.seed);
    let requests = RequestStream::generate(p.stream, p.requests, p.keyspace, stream_seed);
    let cache = ServeCache::new(&p.serve_config());
    for r in &requests {
        cache.access(r);
    }
    let hist = cache.histogram();
    let result = BenchResult {
        policy: p.policy.name(),
        stream: p.stream.name(),
        threads: 1,
        stats: cache.stats(),
        p50_us: hist.percentile(0.50),
        p99_us: hist.percentile(0.99),
        wall_ms: 0.0,
        rps: 0.0,
        timing: cache.timing(),
    };
    let jsonl = cache.events_jsonl();
    let retained = jsonl.lines().count() as u64;
    let (offered, overwritten) = cache.events_meta();
    let (jsonl, exported) = match max_events {
        Some(cap) if retained > cap => {
            let mut kept = String::new();
            for line in jsonl.lines().take(cap as usize) {
                kept.push_str(line);
                kept.push('\n');
            }
            (kept, cap)
        }
        _ => (jsonl, retained),
    };
    let meta = EventsMeta {
        offered,
        overwritten,
        exported,
        truncated: retained - exported,
    };
    (result, jsonl, meta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(policy: PolicyKind, stream: StreamKind, threads: usize) -> BenchParams {
        BenchParams {
            policy,
            stream,
            threads,
            requests: 20_000,
            keyspace: 4_000,
            shards: 8,
            shard_slots: 128,
            shard_bytes: 64 * 1024,
            ..BenchParams::default()
        }
    }

    #[test]
    fn counters_are_thread_count_invariant() {
        let base = run(&quick(PolicyKind::Chrome, StreamKind::MixedTenant, 1));
        for threads in [2, 8] {
            let r = run(&quick(PolicyKind::Chrome, StreamKind::MixedTenant, threads));
            assert_eq!(r.stats, base.stats, "threads={threads}");
            assert_eq!((r.p50_us, r.p99_us), (base.p50_us, base.p99_us));
        }
    }

    #[test]
    fn percentiles_order_sanely() {
        let r = run(&quick(PolicyKind::Lru, StreamKind::Zipf, 4));
        assert!(r.p50_us <= r.p99_us);
        assert!(r.stats.hit_ratio() > 0.0);
        assert_eq!(r.stats.errors, 0);
    }

    #[test]
    fn events_variant_matches_plain_run() {
        let p = quick(PolicyKind::Chrome, StreamKind::Zipf, 1);
        let plain = run(&p);
        let (with_events, jsonl) = run_with_events(&p);
        assert_eq!(plain.stats, with_events.stats);
        assert!(!jsonl.is_empty());
    }

    #[test]
    fn events_cap_truncates_and_accounts() {
        let p = quick(PolicyKind::Chrome, StreamKind::Zipf, 1);
        let (_, full, meta_full) = run_with_events_capped(&p, None);
        let retained = full.lines().count() as u64;
        assert_eq!(meta_full.exported, retained);
        assert_eq!(meta_full.truncated, 0);
        assert!(meta_full.offered >= retained + meta_full.overwritten);

        let cap = retained / 2;
        let (_, capped, meta) = run_with_events_capped(&p, Some(cap));
        assert_eq!(capped.lines().count() as u64, cap);
        assert_eq!(meta.exported, cap);
        assert_eq!(meta.truncated, retained - cap);
        // the capped export is a prefix of the full one
        assert!(full.starts_with(&capped));
    }

    #[test]
    fn timing_is_collected_only_on_request() {
        let mut p = quick(PolicyKind::Chrome, StreamKind::Zipf, 1);
        assert!(run(&p).timing.is_none());
        p.time_policy = true;
        let timed = run(&p);
        let t = timed.timing.expect("timing requested");
        assert!(t.admit_calls > 0 && t.hit_calls > 0);
        assert!(t.total_ns() > 0);
        assert_eq!(
            t.admit_calls, timed.stats.misses,
            "admit runs on every miss"
        );
        assert_eq!(t.hit_calls, timed.stats.hits);
    }

    #[test]
    fn audited_run_matches_plain_and_parses() {
        let p = quick(PolicyKind::Chrome, StreamKind::MixedTenant, 4);
        let plain = run(&p);
        let (audited, blob) = run_audited(&p, 1 << 20);
        assert_eq!(plain.stats, audited.stats, "auditing must not perturb");
        let segs = chrome_telemetry::parse_audit(&blob).expect("audit blob parses");
        assert_eq!(segs.len(), p.shards, "one segment per shard");
        for (i, seg) in segs.iter().enumerate() {
            assert_eq!(seg.stream, i as u32, "segments in shard order");
        }
        let decisions: u64 = segs
            .iter()
            .flat_map(|s| &s.records)
            .filter(|r| matches!(r, chrome_telemetry::AuditRecord::Decision(_)))
            .count() as u64;
        assert_eq!(
            decisions, plain.stats.requests,
            "every request is one audited decision"
        );
    }
}
