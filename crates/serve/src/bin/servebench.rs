//! Serving-cache benchmark: drive client threads against the sharded
//! KV cache under each policy and report hit ratio, virtual-latency
//! percentiles and wall-clock throughput.
//!
//! ```text
//! servebench [--policies A,B,...] [--stream zipf|scan|churn|mixed]
//!            [--threads N] [--requests N] [--keyspace N] [--seed S]
//!            [--shards N] [--shard-slots N] [--shard-bytes N]
//!            [--quick] [--out FILE] [--baseline FILE]
//!            [--gate-chrome] [--telemetry-out FILE] [--max-events N]
//!            [--time-policy]
//! ```
//!
//! Counters and percentiles are byte-reproducible for a fixed seed at
//! any `--threads`; only `rps`/`wall_ms` are machine-dependent. With
//! `--out FILE` a machine-readable summary is written (the checked-in
//! `BENCH_serve_throughput.json` is one of these). With `--baseline
//! FILE` the run exits non-zero if any matching policy row's hit ratio
//! fell below the baseline's by more than one point, or aggregate
//! throughput fell below 30% of the baseline's — the CI smoke gate.
//! `--gate-chrome` additionally requires CHROME to beat plain LRU on
//! hit ratio (the paper's serve-side acceptance claim). With
//! `--telemetry-out FILE` the CHROME run's per-decision event JSONL
//! (features, action, Q-estimate, rewards) is captured as well,
//! bounded by `--max-events N` (default 1,000,000 lines) with a
//! `meta` trailer line accounting for everything not kept.
//! `--time-policy` measures wall time inside each policy's decision
//! callbacks and reports ns/call per policy — the instrument behind
//! the "where does CHROME's throughput gap come from" question.

use chrome_exec::json;
use chrome_serve::{bench, BenchParams, BenchResult, PolicyKind, StreamKind};

/// Tolerated wall-clock regression vs the checked-in baseline.
const RPS_REGRESSION_FLOOR: f64 = 0.3;
/// Tolerated absolute hit-ratio regression vs the baseline.
const HIT_RATIO_SLACK: f64 = 0.01;

fn arg_string(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_u64(name: &str) -> Option<u64> {
    arg_string(name).map(|s| {
        s.parse()
            .unwrap_or_else(|_| panic!("{name} wants an integer, got {s}"))
    })
}

fn params_from_args() -> BenchParams {
    let mut p = BenchParams::default();
    if arg_flag("--quick") {
        p.requests = 30_000;
        p.keyspace = 5_000;
        p.shards = 8;
        p.shard_slots = 256;
        p.shard_bytes = 128 * 1024;
    }
    if let Some(s) = arg_string("--stream") {
        p.stream = StreamKind::parse(&s).unwrap_or_else(|| panic!("unknown stream {s}"));
    }
    if let Some(v) = arg_u64("--threads") {
        p.threads = v as usize;
    }
    if let Some(v) = arg_u64("--requests") {
        p.requests = v as usize;
    }
    if let Some(v) = arg_u64("--keyspace") {
        p.keyspace = v;
    }
    if let Some(v) = arg_u64("--seed") {
        p.seed = v;
    }
    if let Some(v) = arg_u64("--shards") {
        p.shards = v as usize;
    }
    if let Some(v) = arg_u64("--shard-slots") {
        p.shard_slots = v as usize;
    }
    if let Some(v) = arg_u64("--shard-bytes") {
        p.shard_bytes = v;
    }
    p.time_policy = arg_flag("--time-policy");
    p
}

fn main() {
    let base = params_from_args();
    let policies: Vec<PolicyKind> = match arg_string("--policies") {
        Some(s) => s
            .split(',')
            .filter(|x| !x.is_empty())
            .map(|x| PolicyKind::parse(x).unwrap_or_else(|| panic!("unknown policy {x}")))
            .collect(),
        None => PolicyKind::all().to_vec(),
    };

    println!(
        "== servebench: {} stream, {} requests, keyspace {}, {} shards x {} slots / {} KiB, {} \
         threads ==",
        base.stream.name(),
        base.requests,
        base.keyspace,
        base.shards,
        base.shard_slots,
        base.shard_bytes / 1024,
        base.threads,
    );
    println!(
        "{:<8} {:>9} {:>10} {:>10} {:>8} {:>8} {:>12} {:>7}",
        "policy", "hit%", "bypasses", "evictions", "p50us", "p99us", "req/s", "errors"
    );

    let mut rows: Vec<BenchResult> = Vec::with_capacity(policies.len());
    for policy in &policies {
        let r = bench::run(&BenchParams {
            policy: *policy,
            ..base
        });
        println!(
            "{:<8} {:>8.2}% {:>10} {:>10} {:>8} {:>8} {:>12.0} {:>7}",
            r.policy,
            r.stats.hit_ratio() * 100.0,
            r.stats.bypasses,
            r.stats.evictions,
            r.p50_us,
            r.p99_us,
            r.rps,
            r.stats.errors,
        );
        if let Some(t) = r.timing.as_ref() {
            println!(
                "         decision path: {:.0} ns/call (admit {:.0}ns x{}, hit {:.0}ns x{}, \
                 victim {:.0}ns x{}, insert {:.0}ns x{})",
                t.mean_ns(),
                per_call(t.admit_ns, t.admit_calls),
                t.admit_calls,
                per_call(t.hit_ns, t.hit_calls),
                t.hit_calls,
                per_call(t.victim_ns, t.victim_calls),
                t.victim_calls,
                per_call(t.insert_ns, t.insert_calls),
                t.insert_calls,
            );
        }
        assert_eq!(
            r.stats.errors, 0,
            "{}: read-path integrity failure",
            r.policy
        );
        rows.push(r);
    }

    let total_requests: u64 = rows.iter().map(|r| r.stats.requests).sum();
    let total_wall_sec: f64 = rows.iter().map(|r| r.wall_ms / 1e3).sum();
    let aggregate_rps = total_requests as f64 / total_wall_sec.max(1e-9);
    println!(
        "aggregate: {aggregate_rps:.0} req/s across {} policies",
        rows.len()
    );

    if arg_flag("--gate-chrome") {
        gate_chrome(&rows);
    }

    if let Some(path) = arg_string("--telemetry-out") {
        let cap = arg_u64("--max-events").unwrap_or(1_000_000);
        let (_, mut jsonl, meta) = bench::run_with_events_capped(
            &BenchParams {
                policy: PolicyKind::Chrome,
                ..base
            },
            Some(cap),
        );
        // trailer line: what the bounded rings and the cap dropped, so
        // a consumer can tell a short file from a truncated one
        jsonl.push_str(&format!(
            "{{\"kind\":\"meta\",\"offered\":{},\"overwritten\":{},\"exported\":{},\
             \"truncated\":{},\"max_events\":{}}}\n",
            meta.offered, meta.overwritten, meta.exported, meta.truncated, cap
        ));
        std::fs::write(&path, &jsonl).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!(
            "wrote {path} ({} decision-event lines; {} offered, {} overwritten in-ring, {} \
             dropped by --max-events {cap})",
            meta.exported, meta.offered, meta.overwritten, meta.truncated
        );
    }

    if let Some(path) = arg_string("--out") {
        let payload = render_json(&base, &rows, aggregate_rps);
        std::fs::write(&path, payload).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }

    if let Some(path) = arg_string("--baseline") {
        gate_baseline(&path, &base, &rows, aggregate_rps);
    }
}

/// The paper's serve-side claim: the learned policy beats plain LRU on
/// hit ratio for the mixed-tenant churn stream.
fn gate_chrome(rows: &[BenchResult]) {
    let find = |name: &str| rows.iter().find(|r| r.policy == name);
    let (Some(chrome), Some(lru)) = (find("chrome"), find("lru")) else {
        eprintln!("GATE ERROR: --gate-chrome needs both chrome and lru in --policies");
        std::process::exit(1);
    };
    let (c, l) = (chrome.stats.hit_ratio(), lru.stats.hit_ratio());
    println!("chrome-vs-lru gate: chrome {:.4} vs lru {:.4}", c, l);
    if c <= l {
        eprintln!("CHROME GATE FAILED: chrome hit ratio {c:.4} does not beat lru {l:.4}");
        std::process::exit(1);
    }
}

/// CI regression gate against a checked-in baseline file: per-policy
/// hit ratios within slack, aggregate throughput above the floor. Only
/// applies when the baseline ran comparable parameters.
fn gate_baseline(path: &str, base: &BenchParams, rows: &[BenchResult], aggregate_rps: f64) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let doc = json::parse(&text).unwrap_or_else(|| panic!("{path}: malformed JSON"));
    let num = |k: &str| doc.get(k).and_then(json::JsonValue::as_u64);
    let comparable = doc.get("stream").and_then(json::JsonValue::as_str)
        == Some(base.stream.name())
        && num("requests") == Some(base.requests as u64)
        && num("keyspace") == Some(base.keyspace)
        && num("shards") == Some(base.shards as u64)
        && num("seed") == Some(base.seed);
    if !comparable {
        println!("baseline gate: {path} ran different parameters; skipping comparison");
        return;
    }
    let mut failed = false;
    if let Some(policies) = doc.get("policies").and_then(json::JsonValue::as_arr) {
        for base_row in policies {
            let (Some(name), Some(base_hit)) = (
                base_row.get("policy").and_then(json::JsonValue::as_str),
                base_row.get("hit_ratio").and_then(json::JsonValue::as_f64),
            ) else {
                continue;
            };
            let Some(current) = rows.iter().find(|r| r.policy == name) else {
                continue;
            };
            let hit = current.stats.hit_ratio();
            if hit + HIT_RATIO_SLACK < base_hit {
                eprintln!(
                    "HIT-RATIO REGRESSION: {name} {hit:.4} vs baseline {base_hit:.4} \
                     (slack {HIT_RATIO_SLACK})"
                );
                failed = true;
            }
        }
    }
    if let Some(base_rps) = doc.get("aggregate_rps").and_then(json::JsonValue::as_f64) {
        let floor = base_rps * RPS_REGRESSION_FLOOR;
        println!(
            "baseline gate: current {aggregate_rps:.0} req/s vs baseline {base_rps:.0} \
             (floor {floor:.0})"
        );
        if aggregate_rps < floor {
            eprintln!(
                "THROUGHPUT REGRESSION: {aggregate_rps:.0} req/s is below 30% of the baseline \
                 {base_rps:.0}"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// A JSON string literal (escaped and quoted).
fn quoted(s: &str) -> String {
    format!("\"{}\"", json::escape(s))
}

/// Mean nanoseconds for one callback lane (0 when never called).
fn per_call(ns: u64, calls: u64) -> f64 {
    if calls == 0 {
        0.0
    } else {
        ns as f64 / calls as f64
    }
}

fn render_json(base: &BenchParams, rows: &[BenchResult], aggregate_rps: f64) -> String {
    let policy_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            let timing = r
                .timing
                .as_ref()
                .map(|t| {
                    format!(
                        ",\"policy_ns_per_call\":{:.1},\"admit_ns_per_call\":{:.1},\
                         \"hit_ns_per_call\":{:.1},\"victim_ns_per_call\":{:.1},\
                         \"insert_ns_per_call\":{:.1}",
                        t.mean_ns(),
                        per_call(t.admit_ns, t.admit_calls),
                        per_call(t.hit_ns, t.hit_calls),
                        per_call(t.victim_ns, t.victim_calls),
                        per_call(t.insert_ns, t.insert_calls),
                    )
                })
                .unwrap_or_default();
            format!(
                "    {{\"policy\":{},\"requests\":{},\"hits\":{},\"misses\":{},\
                 \"admits\":{},\"bypasses\":{},\"evictions\":{},\"errors\":{},\
                 \"hit_ratio\":{:.6},\"p50_us\":{},\"p99_us\":{},\"rps\":{:.0},\
                 \"wall_ms\":{:.3}{timing}}}",
                quoted(r.policy),
                r.stats.requests,
                r.stats.hits,
                r.stats.misses,
                r.stats.admits,
                r.stats.bypasses,
                r.stats.evictions,
                r.stats.errors,
                r.stats.hit_ratio(),
                r.p50_us,
                r.p99_us,
                r.rps,
                r.wall_ms,
            )
        })
        .collect();
    format!(
        "{{\n  \"name\": \"serve_throughput\",\n  \"stream\": {},\n  \"requests\": {},\n  \
         \"keyspace\": {},\n  \"shards\": {},\n  \"shard_slots\": {},\n  \"shard_bytes\": {},\n  \
         \"threads\": {},\n  \"seed\": {},\n  \"policies\": [\n{}\n  ],\n  \
         \"aggregate_rps\": {:.0}\n}}\n",
        quoted(base.stream.name()),
        base.requests,
        base.keyspace,
        base.shards,
        base.shard_slots,
        base.shard_bytes,
        base.threads,
        base.seed,
        policy_rows.join(",\n"),
        aggregate_rps,
    )
}
