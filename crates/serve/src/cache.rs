//! The concurrent in-memory KV cache: power-of-two sharding, per-shard
//! fine-grained locking, byte-budgeted segments, and a zero-copy read
//! path.
//!
//! A key maps to a shard by `mix64(key) & (shards − 1)`; each shard is
//! an independent `Mutex<Shard>` holding its own hash index, slot
//! arena, replacement policy and statistics, so threads touching
//! different shards never contend. Reads go through
//! [`ServeCache::get_with`]: the caller's closure runs against the
//! stored value bytes *in place* under the shard lock — no copy-out,
//! the serving-cache idiom for handing bytes to a response writer.
//!
//! Every shard also keeps a pressure window: when the last
//! `PRESSURE_WINDOW` requests evicted faster than any admission could
//! pay off, the shard flags itself as thrashing — the serving analog
//! of the paper's LLC-obstruction signal, consumed by the agent's
//! dead-block rewards.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use chrome_exec::splitmix64;
use chrome_sim::types::mix64;
use chrome_telemetry::export::events_jsonl;

use crate::policy::{PolicyKind, ShardPolicy, ShardPressure};
use crate::serve_agent::HIT_US;
use crate::stream::Request;

/// Requests per shard-pressure window.
const PRESSURE_WINDOW: u64 = 1024;

/// Latency histogram ceiling (µs); larger samples clamp into the top
/// bucket. Backend costs are < 1000 µs by construction.
const HIST_BUCKETS: usize = 1024;

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Replacement/admission policy per shard.
    pub policy: PolicyKind,
    /// Number of shards (must be a power of two).
    pub shards: usize,
    /// Slot arena size per shard.
    pub shard_slots: usize,
    /// Value-byte budget per shard.
    pub shard_bytes: u64,
    /// Root seed; per-shard streams derive from it.
    pub seed: u64,
    /// Measure wall time spent inside policy callbacks (admission,
    /// hit bookkeeping, victim selection, insert bookkeeping). Off by
    /// default: the `Instant` reads cost more than a heuristic's whole
    /// callback, so timing is opt-in for overhead studies only.
    pub time_policy: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            policy: PolicyKind::Chrome,
            shards: 16,
            shard_slots: 512,
            shard_bytes: 256 * 1024,
            seed: 0xC42,
            time_policy: false,
        }
    }
}

/// Wall time spent inside the replacement policy's callbacks, split by
/// callback, merged across shards. Only collected when
/// [`ServeConfig::time_policy`] is set; the numbers are
/// machine-dependent (unlike every counter in [`CacheStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyTiming {
    /// Nanoseconds inside `admit` (the decision path on every miss).
    pub admit_ns: u64,
    /// Calls to `admit`.
    pub admit_calls: u64,
    /// Nanoseconds inside `on_hit`.
    pub hit_ns: u64,
    /// Calls to `on_hit`.
    pub hit_calls: u64,
    /// Nanoseconds inside `choose_victim`.
    pub victim_ns: u64,
    /// Calls to `choose_victim`.
    pub victim_calls: u64,
    /// Nanoseconds inside `on_insert`.
    pub insert_ns: u64,
    /// Calls to `on_insert`.
    pub insert_calls: u64,
}

impl PolicyTiming {
    /// Fold another shard's timing into this one.
    pub fn merge(&mut self, other: &PolicyTiming) {
        self.admit_ns += other.admit_ns;
        self.admit_calls += other.admit_calls;
        self.hit_ns += other.hit_ns;
        self.hit_calls += other.hit_calls;
        self.victim_ns += other.victim_ns;
        self.victim_calls += other.victim_calls;
        self.insert_ns += other.insert_ns;
        self.insert_calls += other.insert_calls;
    }

    /// Total nanoseconds across all four callbacks.
    pub fn total_ns(&self) -> u64 {
        self.admit_ns + self.hit_ns + self.victim_ns + self.insert_ns
    }

    /// Mean nanoseconds per policy call (0 when nothing was timed).
    pub fn mean_ns(&self) -> f64 {
        let calls = self.admit_calls + self.hit_calls + self.victim_calls + self.insert_calls;
        if calls == 0 {
            0.0
        } else {
            self.total_ns() as f64 / calls as f64
        }
    }
}

/// Per-shard (and merged) operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served.
    pub requests: u64,
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that went to the backend.
    pub misses: u64,
    /// Missed objects admitted into the cache.
    pub admits: u64,
    /// Missed objects the policy refused to store.
    pub bypasses: u64,
    /// Objects evicted to make room.
    pub evictions: u64,
    /// Integrity failures on the read path (always 0 unless a policy
    /// corrupts the slot bookkeeping).
    pub errors: u64,
}

impl CacheStats {
    /// Fold another shard's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.requests += other.requests;
        self.hits += other.hits;
        self.misses += other.misses;
        self.admits += other.admits;
        self.bypasses += other.bypasses;
        self.evictions += other.evictions;
        self.errors += other.errors;
    }

    /// Hits per request.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// Fixed-bucket (1 µs) latency histogram; mergeable across shards so
/// percentiles are identical at any thread count.
#[derive(Debug, Clone)]
pub struct LatencyHist {
    buckets: Vec<u64>,
    count: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
        }
    }
}

impl LatencyHist {
    /// Record one sample (µs).
    pub fn record(&mut self, us: u32) {
        let b = (us as usize).min(HIST_BUCKETS - 1);
        self.buckets[b] += 1;
        self.count += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    /// The `p`-quantile (0 < p ≤ 1) in µs; 0 when empty.
    pub fn percentile(&self, p: f64) -> u32 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (us, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return us as u32;
            }
        }
        (HIST_BUCKETS - 1) as u32
    }
}

/// One stored object.
#[derive(Debug)]
struct Entry {
    key: u64,
    value: Vec<u8>,
}

/// Deterministic value bytes for `key`: an 8-byte key prefix (checked
/// on every hit) padded with a key-derived fill byte to the logical
/// object size.
fn make_value(req: &Request) -> Vec<u8> {
    let size = req.size() as usize;
    let mut v = vec![(mix64(req.key) & 0xFF) as u8; size];
    v[..8].copy_from_slice(&req.key.to_le_bytes());
    v
}

/// One lock-striped cache segment.
struct Shard {
    map: HashMap<u64, u32>,
    entries: Vec<Option<Entry>>,
    free: Vec<u32>,
    policy: Box<dyn ShardPolicy>,
    bytes: u64,
    budget: u64,
    pressure: ShardPressure,
    window_requests: u64,
    window_evictions: u64,
    stats: CacheStats,
    hist: LatencyHist,
    timing: Option<PolicyTiming>,
}

impl Shard {
    fn new(slots: usize, budget: u64, policy: Box<dyn ShardPolicy>, timed: bool) -> Self {
        Shard {
            map: HashMap::with_capacity(slots),
            entries: (0..slots).map(|_| None).collect(),
            free: (0..slots as u32).rev().collect(),
            policy,
            bytes: 0,
            budget,
            pressure: ShardPressure::default(),
            window_requests: 0,
            window_evictions: 0,
            stats: CacheStats::default(),
            hist: LatencyHist::default(),
            timing: timed.then(PolicyTiming::default),
        }
    }

    /// Start the clock for one policy callback, if timing is on.
    fn clock_start(&self) -> Option<Instant> {
        self.timing.is_some().then(Instant::now)
    }

    /// Charge an elapsed callback to `(ns, calls)` picked by `lane`.
    fn clock_stop(
        &mut self,
        t0: Option<Instant>,
        lane: fn(&mut PolicyTiming) -> (&mut u64, &mut u64),
    ) {
        if let (Some(t0), Some(timing)) = (t0, self.timing.as_mut()) {
            let (ns, calls) = lane(timing);
            *ns += t0.elapsed().as_nanos() as u64;
            *calls += 1;
        }
    }

    /// Roll the pressure window: at each boundary, the last window's
    /// eviction rate decides the thrashing flag for the next.
    fn tick(&mut self) {
        if self.window_requests >= PRESSURE_WINDOW {
            self.pressure.thrashing = self.window_evictions * 3 > self.window_requests;
            self.window_requests = 0;
            self.window_evictions = 0;
        }
        self.window_requests += 1;
    }

    fn evict_one(&mut self) {
        let t0 = self.clock_start();
        let victim = self.policy.choose_victim();
        self.clock_stop(t0, |t| (&mut t.victim_ns, &mut t.victim_calls));
        let entry = self.entries[victim as usize]
            .take()
            .expect("victim slot is resident");
        self.map.remove(&entry.key);
        self.bytes -= entry.value.len() as u64;
        self.free.push(victim);
        self.policy.on_remove(victim);
        self.stats.evictions += 1;
        self.window_evictions += 1;
    }

    fn insert(&mut self, req: &Request) {
        let size = u64::from(req.size());
        if size > self.budget {
            self.stats.bypasses += 1; // can never fit
            return;
        }
        while self.bytes + size > self.budget || self.free.is_empty() {
            self.evict_one();
        }
        let slot = self.free.pop().expect("freed above");
        let value = make_value(req);
        self.bytes += value.len() as u64;
        self.map.insert(req.key, slot);
        self.entries[slot as usize] = Some(Entry {
            key: req.key,
            value,
        });
        let t0 = self.clock_start();
        self.policy.on_insert(slot, req, &self.pressure);
        self.clock_stop(t0, |t| (&mut t.insert_ns, &mut t.insert_calls));
        self.stats.admits += 1;
    }

    /// The full request path; `Some` with the closure's result on a
    /// hit, `None` on a miss (after running admission).
    fn get_with<R>(&mut self, req: &Request, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        self.tick();
        self.stats.requests += 1;
        if let Some(&slot) = self.map.get(&req.key) {
            self.stats.hits += 1;
            self.hist.record(HIT_US);
            let t0 = self.clock_start();
            self.policy.on_hit(slot, req, &self.pressure);
            self.clock_stop(t0, |t| (&mut t.hit_ns, &mut t.hit_calls));
            let entry = self.entries[slot as usize]
                .as_ref()
                .expect("mapped slot is resident");
            if entry.value[..8] != req.key.to_le_bytes() {
                self.stats.errors += 1;
            }
            Some(f(&entry.value))
        } else {
            self.stats.misses += 1;
            self.hist.record(req.miss_cost_us());
            let t0 = self.clock_start();
            let admitted = self.policy.admit(req, &self.pressure);
            self.clock_stop(t0, |t| (&mut t.admit_ns, &mut t.admit_calls));
            if admitted {
                self.insert(req);
            } else {
                self.stats.bypasses += 1;
            }
            None
        }
    }
}

/// The sharded, lock-striped cache.
pub struct ServeCache {
    shards: Vec<Mutex<Shard>>,
    mask: u64,
}

impl ServeCache {
    /// Build the shard array for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics unless `cfg.shards` is a nonzero power of two and the
    /// per-shard geometry is nonzero.
    pub fn new(cfg: &ServeConfig) -> Self {
        assert!(
            cfg.shards.is_power_of_two(),
            "shard count must be a power of two for mask selection"
        );
        assert!(cfg.shard_slots > 0 && cfg.shard_bytes > 0, "empty shard");
        let shards = (0..cfg.shards)
            .map(|s| {
                let seed = splitmix64(cfg.seed ^ (s as u64));
                let policy = cfg.policy.build(cfg.shard_slots, seed);
                Mutex::new(Shard::new(
                    cfg.shard_slots,
                    cfg.shard_bytes,
                    policy,
                    cfg.time_policy,
                ))
            })
            .collect();
        ServeCache {
            shards,
            mask: (cfg.shards - 1) as u64,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard serving `key` (power-of-two mask over the mixed hash).
    pub fn shard_index(&self, key: u64) -> usize {
        (mix64(key) & self.mask) as usize
    }

    /// Zero-copy read path: on a hit, run `f` over the stored bytes in
    /// place under the shard lock and return its result; on a miss,
    /// run the admission/eviction path and return `None`.
    pub fn get_with<R>(&self, req: &Request, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        let shard = &self.shards[self.shard_index(req.key)];
        shard.lock().expect("shard lock poisoned").get_with(req, f)
    }

    /// Serve one request, touching the value on a hit. Returns true on
    /// a hit.
    pub fn access(&self, req: &Request) -> bool {
        self.get_with(req, |bytes| {
            debug_assert!(!bytes.is_empty());
        })
        .is_some()
    }

    /// Counters merged across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            total.merge(&s.lock().expect("shard lock poisoned").stats);
        }
        total
    }

    /// Latency histogram merged across shards.
    pub fn histogram(&self) -> LatencyHist {
        let mut total = LatencyHist::default();
        for s in &self.shards {
            total.merge(&s.lock().expect("shard lock poisoned").hist);
        }
        total
    }

    /// Value bytes currently resident, across shards.
    pub fn resident_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").bytes)
            .sum()
    }

    /// Concatenated JSONL of every shard's retained decision events
    /// (empty for policies that keep no ring).
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.shards {
            let shard = s.lock().expect("shard lock poisoned");
            if let Some(ring) = shard.policy.events() {
                out.push_str(&events_jsonl(ring));
            }
        }
        out
    }

    /// `(offered, overwritten)` event counts summed over every shard's
    /// ring: how many decision events the run produced versus how many
    /// the bounded rings have already discarded.
    pub fn events_meta(&self) -> (u64, u64) {
        let mut offered = 0;
        let mut overwritten = 0;
        for s in &self.shards {
            let shard = s.lock().expect("shard lock poisoned");
            if let Some(ring) = shard.policy.events() {
                offered += ring.offered();
                overwritten += ring.overwritten();
            }
        }
        (offered, overwritten)
    }

    /// Turn on per-decision audit recording in every shard, each shard
    /// tagged as its own stream and bounded to `cap` records. Returns
    /// the number of shards whose policy supports auditing (0 for
    /// heuristics).
    pub fn enable_audit(&self, cap: usize) -> usize {
        let mut enabled = 0;
        for (i, s) in self.shards.iter().enumerate() {
            let mut shard = s.lock().expect("shard lock poisoned");
            if shard.policy.enable_audit(i as u32, cap) {
                enabled += 1;
            }
        }
        enabled
    }

    /// The audit trail as one binary blob: each shard's segment in
    /// shard-index order. Since requests are routed to shards by a
    /// pure key hash and each shard is single-writer, the blob is
    /// byte-identical at any thread count — the same argument that
    /// makes [`ServeCache::events_jsonl`] deterministic.
    pub fn audit_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for s in &self.shards {
            let shard = s.lock().expect("shard lock poisoned");
            if let Some(log) = shard.policy.audit() {
                out.extend_from_slice(&log.to_bytes());
            }
        }
        out
    }

    /// Policy-callback timing merged across shards; `None` unless the
    /// cache was built with [`ServeConfig::time_policy`].
    pub fn timing(&self) -> Option<PolicyTiming> {
        let mut total: Option<PolicyTiming> = None;
        for s in &self.shards {
            let shard = s.lock().expect("shard lock poisoned");
            if let Some(t) = shard.timing.as_ref() {
                total.get_or_insert_with(PolicyTiming::default).merge(t);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{RequestStream, StreamKind};

    fn small(policy: PolicyKind) -> ServeCache {
        ServeCache::new(&ServeConfig {
            policy,
            shards: 4,
            shard_slots: 32,
            shard_bytes: 32 * 1024,
            seed: 7,
            time_policy: false,
        })
    }

    fn req(key: u64) -> Request {
        Request { key, tenant: 0 }
    }

    #[test]
    fn second_touch_hits_with_intact_bytes() {
        let cache = small(PolicyKind::Lru);
        assert!(!cache.access(&req(42)));
        let got = cache.get_with(&req(42), |bytes| {
            (
                bytes.len(),
                u64::from_le_bytes(bytes[..8].try_into().unwrap()),
            )
        });
        let (len, key) = got.expect("second touch hits");
        assert_eq!(key, 42);
        assert_eq!(len, req(42).size() as usize);
        assert_eq!(cache.stats().errors, 0);
    }

    #[test]
    fn byte_budget_caps_residency() {
        let cache = small(PolicyKind::Lru);
        for k in 0..10_000 {
            cache.access(&req(k));
        }
        assert!(cache.resident_bytes() <= 4 * 32 * 1024);
        let stats = cache.stats();
        assert!(stats.evictions > 0, "budget forced evictions");
        assert_eq!(stats.requests, 10_000);
        assert_eq!(stats.hits + stats.misses, stats.requests);
        assert_eq!(stats.admits, stats.misses, "LRU admits every miss");
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache = small(PolicyKind::Lru);
        let mut seen = [false; 4];
        for k in 0..64 {
            seen[cache.shard_index(k)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn every_policy_survives_a_zipf_run() {
        for policy in PolicyKind::all() {
            let cache = small(policy);
            for r in RequestStream::generate(StreamKind::Zipf, 20_000, 2_000, 11) {
                cache.access(&r);
            }
            let stats = cache.stats();
            assert_eq!(stats.errors, 0, "{}", policy.name());
            assert!(
                stats.hit_ratio() > 0.2,
                "{}: hit ratio {:.3}",
                policy.name(),
                stats.hit_ratio()
            );
            assert_eq!(
                stats.admits + stats.bypasses,
                stats.misses,
                "{}: every miss either admits or bypasses",
                policy.name()
            );
        }
    }

    #[test]
    fn chrome_cache_exports_decision_events() {
        let cache = small(PolicyKind::Chrome);
        for r in RequestStream::generate(StreamKind::Zipf, 5_000, 500, 3) {
            cache.access(&r);
        }
        let jsonl = cache.events_jsonl();
        assert!(jsonl.contains("\"kind\":\"serve_decision\""));
        assert!(jsonl.contains("\"kind\":\"q_update\""));
        // every line parses as a JSON object
        for line in jsonl.lines() {
            assert!(chrome_exec::json::parse(line).is_some(), "bad line {line}");
        }
        let lru = small(PolicyKind::Lru);
        lru.access(&req(1));
        assert!(lru.events_jsonl().is_empty(), "heuristics keep no ring");
    }

    #[test]
    fn pressure_window_flags_thrashing_scans() {
        // a pure scan over a tiny shard evicts on ~every insert
        let cache = ServeCache::new(&ServeConfig {
            policy: PolicyKind::Lru,
            shards: 1,
            shard_slots: 16,
            shard_bytes: 16 * 1024,
            seed: 1,
            time_policy: false,
        });
        for r in RequestStream::generate(StreamKind::Scan, 3 * PRESSURE_WINDOW as usize, 1 << 20, 5)
        {
            cache.access(&r);
        }
        let shard = cache.shards[0].lock().unwrap();
        assert!(shard.pressure.thrashing, "scan storm must flag thrashing");
    }
}
