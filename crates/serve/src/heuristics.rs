//! The heuristic baseline policies: LRU, SLRU, LFU, LFUDA, GDSF.
//!
//! LRU and SLRU keep exact recency order in intrusive [`DList`]s. The
//! frequency family (LFU, LFUDA, GDSF) uses Redis-style sampled
//! eviction: draw `K` resident slots uniformly and evict the
//! worst-priority candidate, which keeps every operation O(1) instead
//! of maintaining a priority queue. With small shards the sample is
//! effectively exhaustive; at scale it is the standard approximation.

use chrome_sim::rng::SmallRng;

use crate::policy::{DList, ShardPolicy, ShardPressure, NIL};
use crate::stream::Request;

/// Candidates drawn per sampled eviction.
const SAMPLE_K: usize = 8;

/// Exact least-recently-used.
#[derive(Debug)]
pub struct Lru {
    list: DList,
}

impl Lru {
    /// LRU over `cap` slots.
    pub fn new(cap: usize) -> Self {
        Lru {
            list: DList::new(cap),
        }
    }
}

impl ShardPolicy for Lru {
    fn name(&self) -> &'static str {
        "lru"
    }
    fn on_hit(&mut self, slot: u32, _req: &Request, _p: &ShardPressure) {
        self.list.move_to_front(slot);
    }
    fn on_insert(&mut self, slot: u32, _req: &Request, _p: &ShardPressure) {
        self.list.push_front(slot);
    }
    fn choose_victim(&mut self) -> u32 {
        self.list.back().expect("victim requested from empty shard")
    }
    fn on_remove(&mut self, slot: u32) {
        self.list.remove(slot);
    }
}

/// Segmented LRU: new objects enter a probation segment and are only
/// promoted to the protected segment on a second touch, so one-shot
/// objects (scans) never displace proven-reusable ones.
#[derive(Debug)]
pub struct Slru {
    probation: DList,
    protected: DList,
    /// 1 when the slot sits in the protected segment.
    seg: Vec<u8>,
    protected_cap: usize,
}

impl Slru {
    /// SLRU over `cap` slots with an ~80% protected segment.
    pub fn new(cap: usize) -> Self {
        Slru {
            probation: DList::new(cap),
            protected: DList::new(cap),
            seg: vec![0; cap],
            protected_cap: (cap * 4 / 5).max(1),
        }
    }
}

impl ShardPolicy for Slru {
    fn name(&self) -> &'static str {
        "slru"
    }
    fn on_hit(&mut self, slot: u32, _req: &Request, _p: &ShardPressure) {
        if self.seg[slot as usize] == 1 {
            self.protected.move_to_front(slot);
            return;
        }
        // promote; demote the protected back into probation if full
        self.probation.remove(slot);
        if self.protected.len() >= self.protected_cap {
            if let Some(demoted) = self.protected.pop_back() {
                self.seg[demoted as usize] = 0;
                self.probation.push_front(demoted);
            }
        }
        self.seg[slot as usize] = 1;
        self.protected.push_front(slot);
    }
    fn on_insert(&mut self, slot: u32, _req: &Request, _p: &ShardPressure) {
        self.seg[slot as usize] = 0;
        self.probation.push_front(slot);
    }
    fn choose_victim(&mut self) -> u32 {
        self.probation
            .back()
            .or_else(|| self.protected.back())
            .expect("victim requested from empty shard")
    }
    fn on_remove(&mut self, slot: u32) {
        if self.seg[slot as usize] == 1 {
            self.protected.remove(slot);
        } else {
            self.probation.remove(slot);
        }
    }
}

/// Dense set of resident slots supporting O(1) insert/remove and
/// uniform sampling — the substrate for sampled eviction.
#[derive(Debug)]
pub struct ResidentSet {
    slots: Vec<u32>,
    /// Position of each slot in `slots`, [`NIL`] when absent.
    pos: Vec<u32>,
}

impl ResidentSet {
    /// An empty set over slots `0..cap`.
    pub fn new(cap: usize) -> Self {
        ResidentSet {
            slots: Vec::with_capacity(cap),
            pos: vec![NIL; cap],
        }
    }

    /// Resident count.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Add `slot` (must be absent).
    pub fn insert(&mut self, slot: u32) {
        debug_assert_eq!(self.pos[slot as usize], NIL);
        self.pos[slot as usize] = self.slots.len() as u32;
        self.slots.push(slot);
    }

    /// Remove `slot` (must be present) by swap-remove.
    pub fn remove(&mut self, slot: u32) {
        let p = self.pos[slot as usize];
        debug_assert_ne!(p, NIL);
        let last = *self.slots.last().expect("non-empty on remove");
        self.slots.swap_remove(p as usize);
        if last != slot {
            self.pos[last as usize] = p;
        }
        self.pos[slot as usize] = NIL;
    }

    /// A uniformly random resident slot.
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        self.slots[rng.gen_range(0..self.slots.len())]
    }
}

/// Evict the minimum-priority slot among `SAMPLE_K` uniform draws;
/// when the whole set fits in the sample budget, scan it exhaustively
/// instead (draws with replacement would miss slots). Ties break
/// toward the lower slot id so results are deterministic for a fixed
/// RNG stream.
fn sampled_victim(set: &ResidentSet, rng: &mut SmallRng, pri: impl Fn(u32) -> f64) -> u32 {
    debug_assert!(!set.is_empty());
    let mut victim = NIL;
    let mut victim_pri = f64::INFINITY;
    let consider = |s: u32, victim: &mut u32, victim_pri: &mut f64| {
        let p = pri(s);
        if p < *victim_pri || (p == *victim_pri && s < *victim) {
            *victim = s;
            *victim_pri = p;
        }
    };
    if set.len() <= SAMPLE_K {
        for &s in &set.slots {
            consider(s, &mut victim, &mut victim_pri);
        }
    } else {
        for _ in 0..SAMPLE_K {
            consider(set.sample(rng), &mut victim, &mut victim_pri);
        }
    }
    victim
}

/// Least-frequently-used with saturating counters and sampled eviction.
#[derive(Debug)]
pub struct Lfu {
    freq: Vec<u32>,
    set: ResidentSet,
    rng: SmallRng,
}

impl Lfu {
    /// LFU over `cap` slots.
    pub fn new(cap: usize, seed: u64) -> Self {
        Lfu {
            freq: vec![0; cap],
            set: ResidentSet::new(cap),
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl ShardPolicy for Lfu {
    fn name(&self) -> &'static str {
        "lfu"
    }
    fn on_hit(&mut self, slot: u32, _req: &Request, _p: &ShardPressure) {
        let f = &mut self.freq[slot as usize];
        *f = f.saturating_add(1);
    }
    fn on_insert(&mut self, slot: u32, _req: &Request, _p: &ShardPressure) {
        self.freq[slot as usize] = 1;
        self.set.insert(slot);
    }
    fn choose_victim(&mut self) -> u32 {
        let freq = &self.freq;
        sampled_victim(&self.set, &mut self.rng, |s| freq[s as usize] as f64)
    }
    fn on_remove(&mut self, slot: u32) {
        self.set.remove(slot);
    }
}

/// LFU with dynamic aging: priority = age-floor-at-insert + hit count,
/// and each eviction raises the floor to the victim's priority, so a
/// formerly-hot object cannot squat on its historical popularity.
#[derive(Debug)]
pub struct Lfuda {
    pri: Vec<f64>,
    age: f64,
    set: ResidentSet,
    rng: SmallRng,
}

impl Lfuda {
    /// LFUDA over `cap` slots.
    pub fn new(cap: usize, seed: u64) -> Self {
        Lfuda {
            pri: vec![0.0; cap],
            age: 0.0,
            set: ResidentSet::new(cap),
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl ShardPolicy for Lfuda {
    fn name(&self) -> &'static str {
        "lfuda"
    }
    fn on_hit(&mut self, slot: u32, _req: &Request, _p: &ShardPressure) {
        self.pri[slot as usize] += 1.0;
    }
    fn on_insert(&mut self, slot: u32, _req: &Request, _p: &ShardPressure) {
        self.pri[slot as usize] = self.age + 1.0;
        self.set.insert(slot);
    }
    fn choose_victim(&mut self) -> u32 {
        let pri = &self.pri;
        let victim = sampled_victim(&self.set, &mut self.rng, |s| pri[s as usize]);
        self.age = self.pri[victim as usize];
        victim
    }
    fn on_remove(&mut self, slot: u32) {
        self.set.remove(slot);
    }
}

/// Greedy-Dual-Size-Frequency: priority = floor + hits · cost/size, so
/// small, expensive-to-refetch objects outrank big cheap ones.
#[derive(Debug)]
pub struct Gdsf {
    freq: Vec<u32>,
    pri: Vec<f64>,
    age: f64,
    set: ResidentSet,
    rng: SmallRng,
}

impl Gdsf {
    /// GDSF over `cap` slots.
    pub fn new(cap: usize, seed: u64) -> Self {
        Gdsf {
            freq: vec![0; cap],
            pri: vec![0.0; cap],
            age: 0.0,
            set: ResidentSet::new(cap),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn value(req: &Request) -> f64 {
        f64::from(req.miss_cost_us()) / f64::from(req.size())
    }
}

impl ShardPolicy for Gdsf {
    fn name(&self) -> &'static str {
        "gdsf"
    }
    fn on_hit(&mut self, slot: u32, req: &Request, _p: &ShardPressure) {
        let s = slot as usize;
        self.freq[s] = self.freq[s].saturating_add(1);
        self.pri[s] = self.age + f64::from(self.freq[s]) * Self::value(req);
    }
    fn on_insert(&mut self, slot: u32, req: &Request, _p: &ShardPressure) {
        let s = slot as usize;
        self.freq[s] = 1;
        self.pri[s] = self.age + Self::value(req);
        self.set.insert(slot);
    }
    fn choose_victim(&mut self) -> u32 {
        let pri = &self.pri;
        let victim = sampled_victim(&self.set, &mut self.rng, |s| pri[s as usize]);
        self.age = self.pri[victim as usize];
        victim
    }
    fn on_remove(&mut self, slot: u32) {
        self.set.remove(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(key: u64) -> Request {
        Request { key, tenant: 0 }
    }

    const P: ShardPressure = ShardPressure { thrashing: false };

    #[test]
    fn lru_evicts_coldest() {
        let mut p = Lru::new(4);
        for s in 0..4 {
            p.on_insert(s, &req(s as u64), &P);
        }
        p.on_hit(0, &req(0), &P); // 0 is hot again; 1 is now coldest
        assert_eq!(p.choose_victim(), 1);
        p.on_remove(1);
        assert_eq!(p.choose_victim(), 2);
    }

    #[test]
    fn slru_protects_re_referenced_objects() {
        let mut p = Slru::new(8);
        for s in 0..4 {
            p.on_insert(s, &req(s as u64), &P);
        }
        p.on_hit(3, &req(3), &P); // 3 → protected
                                  // probation back is 0 (oldest single-touch object)
        assert_eq!(p.choose_victim(), 0);
        p.on_remove(0);
        p.on_remove(1);
        p.on_remove(2);
        // only the protected object remains
        assert_eq!(p.choose_victim(), 3);
    }

    #[test]
    fn slru_demotes_when_protected_overflows() {
        let mut p = Slru::new(5); // protected_cap = 4
        for s in 0..5 {
            p.on_insert(s, &req(s as u64), &P);
        }
        for s in 0..5 {
            p.on_hit(s, &req(s as u64), &P); // fifth promotion demotes 0
        }
        // slot 0 got demoted back to probation → it is the victim
        assert_eq!(p.choose_victim(), 0);
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        // cap 8 with K=8 sampling ≈ exhaustive
        let mut p = Lfu::new(8, 3);
        for s in 0..8 {
            p.on_insert(s, &req(s as u64), &P);
        }
        for s in 0..8u32 {
            for _ in 0..s {
                p.on_hit(s, &req(s as u64), &P);
            }
        }
        // slot 0 has freq 1, everything else higher
        assert_eq!(p.choose_victim(), 0);
    }

    #[test]
    fn lfuda_aging_lets_new_objects_displace_old_hot_ones() {
        let mut p = Lfuda::new(4, 9);
        p.on_insert(0, &req(0), &P);
        for _ in 0..50 {
            p.on_hit(0, &req(0), &P); // pri ≈ 51
        }
        p.on_insert(1, &req(1), &P); // pri 1
        assert_eq!(p.choose_victim(), 1);
        p.on_remove(1);
        self::assert_age_floor(&p); // age floor now 1.0
                                    // a fresh insert now starts at age+1 = 2, not hopelessly behind;
                                    // after evicting the hot object once, the floor jumps to ~51
        p.on_insert(2, &req(2), &P);
        let v = p.choose_victim();
        assert_eq!(v, 2, "newest object still lowest priority");
        p.on_remove(2);
        let v = p.choose_victim();
        assert_eq!(v, 0);
        p.on_remove(0);
        p.on_insert(3, &req(3), &P);
        assert!(p.age >= 51.0, "floor tracked the hot victim: {}", p.age);
        assert!(p.pri[3] > 51.0, "new insert rides the raised floor");
    }

    fn assert_age_floor(p: &Lfuda) {
        assert!((p.age - 1.0).abs() < 1e-9, "age = {}", p.age);
    }

    #[test]
    fn gdsf_prefers_cheap_large_victims() {
        let mut p = Gdsf::new(8, 5);
        // find two keys with contrasting cost/size value
        let mut best = (0u64, 0.0f64);
        let mut worst = (0u64, f64::INFINITY);
        for k in 0..200u64 {
            let v = Gdsf::value(&req(k));
            if v > best.1 {
                best = (k, v);
            }
            if v < worst.1 {
                worst = (k, v);
            }
        }
        p.on_insert(0, &req(best.0), &P);
        p.on_insert(1, &req(worst.0), &P);
        assert_eq!(p.choose_victim(), 1, "cheap/large object evicts first");
    }

    #[test]
    fn resident_set_swap_remove_keeps_positions() {
        let mut s = ResidentSet::new(8);
        for slot in [3, 5, 7] {
            s.insert(slot);
        }
        s.remove(3); // 7 swaps into 3's position
        assert_eq!(s.len(), 2);
        s.remove(7);
        s.remove(5);
        assert!(s.is_empty());
    }
}
