//! # chrome-serve — CHROME as the brain of a concurrent KV cache
//!
//! The paper trains its agent against a simulated LLC; this crate
//! points the *same* SARSA engine ([`chrome_core::RlEngine`], via the
//! [`chrome_core::Environment`] abstraction) at a software serving
//! cache: a lock-striped, sharded, byte-budgeted in-memory KV store of
//! the kind that fronts a CDN or database. The agent decides admission
//! (bypass vs. insert-at-EPV) on every miss and re-assigns eviction
//! priorities on every hit, rewarded by observed hit/miss latency
//! deltas instead of C-AMAT.
//!
//! Layering, bottom-up:
//!
//! * [`stream`] — deterministic CDN-style request generators (zipf,
//!   scan, churn, mixed-tenant);
//! * [`policy`] — the per-shard [`policy::ShardPolicy`] interface and
//!   the intrusive [`policy::DList`] shared by all policies;
//! * [`heuristics`] — the baselines: LRU, SLRU, LFU, LFUDA, GDSF;
//! * [`serve_agent`] — CHROME bound to the serving environment;
//! * [`cache`] — the sharded [`cache::ServeCache`] with its zero-copy
//!   `get_with` read path;
//! * [`bench`] — the multi-threaded measurement harness behind the
//!   `servebench` binary, byte-reproducible at any thread count.

pub mod bench;
pub mod cache;
pub mod heuristics;
pub mod policy;
pub mod serve_agent;
pub mod stream;

pub use bench::{
    run, run_audited, run_with_events, run_with_events_capped, BenchParams, BenchResult, EventsMeta,
};
pub use cache::{CacheStats, LatencyHist, PolicyTiming, ServeCache, ServeConfig};
pub use policy::{PolicyKind, ShardPolicy, ShardPressure};
pub use serve_agent::ChromeServePolicy;
pub use stream::{Request, RequestStream, StreamKind};
