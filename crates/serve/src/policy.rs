//! The per-shard replacement-policy interface and its shared plumbing.
//!
//! Every shard owns one boxed [`ShardPolicy`]. The shard drives the
//! protocol; the policy only ranks slots:
//!
//! 1. miss → [`ShardPolicy::admit`] — may refuse (bypass),
//! 2. while over budget → [`ShardPolicy::choose_victim`] names a slot
//!    (without unlinking it), the shard frees it and confirms with
//!    [`ShardPolicy::on_remove`],
//! 3. the shard places the object and calls [`ShardPolicy::on_insert`],
//! 4. hit → [`ShardPolicy::on_hit`].
//!
//! [`DList`] is the intrusive slot-indexed doubly-linked list all the
//! recency-ordered policies share: O(1) push/remove/move with no
//! per-node allocation, mirroring the way hardware policies keep RRPV
//! state per way rather than boxed nodes.

use chrome_telemetry::{AuditLog, EventRing};

use crate::heuristics::{Gdsf, Lfu, Lfuda, Lru, Slru};
use crate::serve_agent::ChromeServePolicy;
use crate::stream::Request;

/// Sentinel for "no slot" in the intrusive lists.
pub const NIL: u32 = u32::MAX;

/// A shard's load snapshot, consulted by admission decisions and by the
/// agent's obstruction-analog reward. `thrashing` is true when the
/// previous pressure window evicted faster than it could possibly pay
/// off (the serving-side analog of the paper's LLC obstruction signal).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardPressure {
    /// Evictions outpaced reuse in the last window.
    pub thrashing: bool,
}

/// What one shard policy must provide. Policies are `Send` because each
/// lives behind its shard's mutex and shards migrate across worker
/// threads.
pub trait ShardPolicy: Send {
    /// Stable display name.
    fn name(&self) -> &'static str;

    /// Admission decision for a missed object. Returning false bypasses
    /// the cache (the object is served from the backend but not
    /// stored). Heuristics admit everything; the learned policy may
    /// refuse.
    fn admit(&mut self, _req: &Request, _pressure: &ShardPressure) -> bool {
        true
    }

    /// `slot` was re-referenced.
    fn on_hit(&mut self, slot: u32, req: &Request, pressure: &ShardPressure);

    /// `req` was just placed in `slot`.
    fn on_insert(&mut self, slot: u32, req: &Request, pressure: &ShardPressure);

    /// Name the next eviction victim among resident slots. The slot
    /// stays linked until the shard confirms with
    /// [`ShardPolicy::on_remove`].
    fn choose_victim(&mut self) -> u32;

    /// `slot` was evicted; drop its metadata.
    fn on_remove(&mut self, slot: u32);

    /// The policy's decision-event ring, when it keeps one (only the
    /// learned policy does).
    fn events(&self) -> Option<&EventRing> {
        None
    }

    /// Start recording a per-decision audit trail into a bounded log
    /// tagged with `stream` (the shard index), holding at most `cap`
    /// records. Returns true when the policy supports auditing; the
    /// default (heuristics have no decision stream) refuses.
    fn enable_audit(&mut self, stream: u32, cap: usize) -> bool {
        let _ = (stream, cap);
        false
    }

    /// The recorded audit trail, if auditing was enabled and the
    /// policy supports it.
    fn audit(&self) -> Option<&AuditLog> {
        None
    }
}

/// The selectable shard policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Least-recently-used.
    Lru,
    /// Segmented LRU (probation + protected).
    Slru,
    /// Least-frequently-used, sampled eviction.
    Lfu,
    /// LFU with dynamic aging.
    Lfuda,
    /// Greedy-Dual-Size-Frequency (cost- and size-aware).
    Gdsf,
    /// CHROME: the online-RL agent drives admission and eviction.
    Chrome,
    /// N-CHROME serve analog: the same agent with the thrashing
    /// (obstruction-analog) signal masked out of its rewards — the
    /// forensics ablation baseline.
    ChromeNc,
}

impl PolicyKind {
    /// All policies, for sweeps.
    pub fn all() -> [PolicyKind; 7] {
        [
            PolicyKind::Lru,
            PolicyKind::Slru,
            PolicyKind::Lfu,
            PolicyKind::Lfuda,
            PolicyKind::Gdsf,
            PolicyKind::Chrome,
            PolicyKind::ChromeNc,
        ]
    }

    /// Stable name (CLI + JSON).
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Slru => "slru",
            PolicyKind::Lfu => "lfu",
            PolicyKind::Lfuda => "lfuda",
            PolicyKind::Gdsf => "gdsf",
            PolicyKind::Chrome => "chrome",
            PolicyKind::ChromeNc => "chrome-nc",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s {
            "lru" => Some(PolicyKind::Lru),
            "slru" => Some(PolicyKind::Slru),
            "lfu" => Some(PolicyKind::Lfu),
            "lfuda" => Some(PolicyKind::Lfuda),
            "gdsf" => Some(PolicyKind::Gdsf),
            "chrome" => Some(PolicyKind::Chrome),
            "chrome-nc" => Some(PolicyKind::ChromeNc),
            _ => None,
        }
    }

    /// Build a policy instance for a shard with `cap` slots. `seed`
    /// derives the policy-internal RNG (sampled eviction, ε-greedy
    /// exploration) so shards never share streams.
    pub fn build(&self, cap: usize, seed: u64) -> Box<dyn ShardPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new(cap)),
            PolicyKind::Slru => Box::new(Slru::new(cap)),
            PolicyKind::Lfu => Box::new(Lfu::new(cap, seed)),
            PolicyKind::Lfuda => Box::new(Lfuda::new(cap, seed)),
            PolicyKind::Gdsf => Box::new(Gdsf::new(cap, seed)),
            PolicyKind::Chrome => Box::new(ChromeServePolicy::new(cap, seed)),
            PolicyKind::ChromeNc => Box::new(ChromeServePolicy::new_unaware(cap, seed)),
        }
    }
}

/// Intrusive slot-indexed doubly-linked list: `prev`/`next` arrays over
/// slot ids, O(1) everything, no allocation after construction.
#[derive(Debug, Clone)]
pub struct DList {
    head: u32,
    tail: u32,
    prev: Vec<u32>,
    next: Vec<u32>,
    len: usize,
}

impl DList {
    /// An empty list over slots `0..cap`.
    pub fn new(cap: usize) -> Self {
        DList {
            head: NIL,
            tail: NIL,
            prev: vec![NIL; cap],
            next: vec![NIL; cap],
            len: 0,
        }
    }

    /// Linked slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is linked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The coldest slot (list back), if any.
    pub fn back(&self) -> Option<u32> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// Link `slot` at the front (hottest). The slot must be unlinked.
    pub fn push_front(&mut self, slot: u32) {
        let s = slot as usize;
        self.prev[s] = NIL;
        self.next[s] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = slot;
        } else {
            self.tail = slot;
        }
        self.head = slot;
        self.len += 1;
    }

    /// Unlink `slot`. The slot must currently be linked in this list.
    pub fn remove(&mut self, slot: u32) {
        let s = slot as usize;
        let (p, n) = (self.prev[s], self.next[s]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
        self.prev[s] = NIL;
        self.next[s] = NIL;
        self.len -= 1;
    }

    /// Unlink and return the coldest slot.
    pub fn pop_back(&mut self) -> Option<u32> {
        let back = self.back()?;
        self.remove(back);
        Some(back)
    }

    /// Move an already-linked slot to the front.
    pub fn move_to_front(&mut self, slot: u32) {
        if self.head == slot {
            return;
        }
        self.remove(slot);
        self.push_front(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_remove_pop_keep_order() {
        let mut l = DList::new(8);
        l.push_front(1);
        l.push_front(2);
        l.push_front(3); // front: 3 2 1 :back
        assert_eq!(l.len(), 3);
        assert_eq!(l.back(), Some(1));
        l.remove(2); // 3 1
        assert_eq!(l.pop_back(), Some(1));
        assert_eq!(l.pop_back(), Some(3));
        assert_eq!(l.pop_back(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn move_to_front_reorders() {
        let mut l = DList::new(4);
        for s in 0..4 {
            l.push_front(s);
        }
        // front: 3 2 1 0
        l.move_to_front(0);
        assert_eq!(l.back(), Some(1));
        l.move_to_front(0); // already front: no-op
        assert_eq!(l.len(), 4);
        let drained: Vec<u32> = std::iter::from_fn(|| l.pop_back()).collect();
        assert_eq!(drained, [1, 2, 3, 0]);
    }

    #[test]
    fn singleton_list_edges() {
        let mut l = DList::new(2);
        l.push_front(1);
        assert_eq!(l.back(), Some(1));
        l.remove(1);
        assert!(l.is_empty());
        assert_eq!(l.back(), None);
    }

    #[test]
    fn policy_names_roundtrip() {
        for kind in PolicyKind::all() {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("belady"), None);
    }

    #[test]
    fn every_policy_builds() {
        for kind in PolicyKind::all() {
            let p = kind.build(16, 7);
            assert_eq!(p.name(), kind.name());
        }
    }
}
