//! CHROME as a serving-cache policy: the paper's SARSA engine bound to
//! a KV-request environment.
//!
//! The hardware agent and this one share [`RlEngine`] verbatim (same
//! ε-greedy selection, Q-table, evaluation queue and SARSA update);
//! only the [`Environment`] differs:
//!
//! * **state** — instead of PC signature + page number, the serve
//!   features are a *flow signature* (tenant ⊕ hit ⊕ size class: which
//!   kind of traffic is this?) and a *key neighborhood* (key >> 7: is
//!   this region of the keyspace hot?);
//! * **reward** — instead of the fixed Table II constants under C-AMAT
//!   obstruction, rewards are the same constants scaled by the
//!   *observed* hit/miss latency gap (EWMA of virtual service
//!   latencies), so actions that protect expensive-to-refetch objects
//!   earn proportionally more;
//! * **obstruction analog** — a shard is "obstructed" when its
//!   pressure window shows thrashing (evictions outpacing any possible
//!   payoff), standing in for the paper's LLC-obstruction bit.
//!
//! Unlike the hardware agent, which samples 64 sets to bound SRAM
//! overhead, the serve agent trains on every request — software has no
//! such budget and per-shard request counts are small.
//!
//! Eviction reuses the paper's 3-level EPV scheme with O(1) aging:
//! three intrusive lists indexed through a rotating `order` map, so
//! "raise everyone's eviction priority by k" is a rotation instead of
//! a walk over all slots.

use chrome_core::engine::{EngineConfig, RlEngine, ACTION_BYPASS, ACTION_HIT_EPVH};
use chrome_core::eq::EqEntry;
use chrome_core::{Agent, DecisionObserver, DecisionSnapshot, Environment, RewardTable};
use chrome_sim::types::mix64;
use chrome_telemetry::{AuditLog, EventKind, EventRing, RewardRecord, TraceEvent};

use crate::policy::{DList, ShardPolicy, ShardPressure};
use crate::stream::Request;

/// Virtual service latency of a cache hit, in microseconds.
pub const HIT_US: u32 = 2;

/// EWMA smoothing factor for the observed latencies (1/64 per sample).
const EWMA_SHIFT: f64 = 1.0 / 64.0;
/// Latency gap (µs) at which rewards carry their nominal Table II
/// magnitude; the observed gap scales them between 0.25× and 4×.
const NOMINAL_GAP_US: f64 = 538.0;

/// Decision-event ring capacity per shard.
const RING_CAPACITY: usize = 2048;
/// Keep every Nth offered decision event.
const RING_SAMPLE: u64 = 8;

/// Frequency-sketch counters (power of two).
const SKETCH_SLOTS: usize = 4096;
/// Halve every sketch counter after this many accesses, so popularity
/// is recent popularity (churned-out keys decay back to cold).
const SKETCH_DECAY_PERIOD: u64 = 8192;
/// Sketch-count thresholds separating reuse classes 1/2/3.
const REUSE_THRESHOLDS: [u16; 3] = [1, 3, 8];

/// The KV-request environment for the SARSA engine.
#[derive(Debug)]
pub struct ServeEnv {
    rewards: RewardTable,
    /// False for the N-CHROME ablation: the thrashing signal is masked
    /// out of dead-key rewards.
    concurrency_aware: bool,
    /// EWMA of observed hit latencies (µs).
    hit_ewma: f64,
    /// EWMA of observed miss (backend fetch) latencies (µs).
    miss_ewma: f64,
    /// Decayed per-key frequency sketch backing the reuse class.
    sketch: Vec<u16>,
    /// Accesses folded into the sketch (drives decay).
    sketch_accesses: u64,
}

impl ServeEnv {
    fn new() -> Self {
        // Table II ratios, with the not-requested (dead-key) rewards at
        // a quarter weight: in a serving cache the dead tail is the
        // *majority* of miss traffic (hardware LLCs sample sets; we see
        // every request), and at full weight its steady reinforcement
        // of bypass drowns the rarer but decisive matched evidence
        let rewards = RewardTable {
            ac_nr_obstructed: 7.0,
            ac_nr_normal: 2.5,
            in_nr_obstructed: -5.5,
            in_nr_normal: -2.5,
            ..RewardTable::default()
        };
        ServeEnv {
            rewards,
            concurrency_aware: true,
            hit_ewma: f64::from(HIT_US),
            miss_ewma: NOMINAL_GAP_US + f64::from(HIT_US),
            sketch: vec![0; SKETCH_SLOTS],
            sketch_accesses: 0,
        }
    }

    /// Read the key's reuse class (0 = unseen … 3 = hot) from the
    /// sketch, then count this access into it. Without this signal the
    /// flow feature lumps a tenant's hot and cold keys into one state,
    /// and the dead-key majority teaches it to bypass everything.
    fn reuse_class(&mut self, key: u64) -> u64 {
        self.sketch_accesses += 1;
        if self.sketch_accesses.is_multiple_of(SKETCH_DECAY_PERIOD) {
            for c in &mut self.sketch {
                *c >>= 1;
            }
        }
        let slot = (mix64(key) >> 12) as usize & (SKETCH_SLOTS - 1);
        let count = self.sketch[slot];
        self.sketch[slot] = count.saturating_add(1);
        REUSE_THRESHOLDS.iter().filter(|&&t| count >= t).count() as u64
    }

    /// Reward multiplier: the observed hit/miss latency gap relative to
    /// nominal, clamped so a cold EWMA can neither mute nor explode the
    /// learning signal.
    fn scale(&self) -> f64 {
        ((self.miss_ewma - self.hit_ewma) / NOMINAL_GAP_US).clamp(0.25, 4.0)
    }
}

impl Environment for ServeEnv {
    type Access = Request;
    type Ctx = ShardPressure;

    fn state(&mut self, req: &Request, hit: bool) -> ([u64; 2], usize) {
        // fold the realized latency into the reward scale's EWMAs
        if hit {
            self.hit_ewma += (f64::from(HIT_US) - self.hit_ewma) * EWMA_SHIFT;
        } else {
            self.miss_ewma += (f64::from(req.miss_cost_us()) - self.miss_ewma) * EWMA_SHIFT;
        }
        let size_class = u64::from(req.size() >> 10); // 0..=3
        let reuse = self.reuse_class(req.key);
        let flow =
            (u64::from(req.tenant) + 1) | (size_class << 8) | (reuse << 16) | ((hit as u64) << 62);
        ([mix64(flow), mix64(req.key >> 7)], 2)
    }

    fn key(&self, req: &Request) -> u64 {
        req.key
    }

    fn lane(&self, req: &Request) -> usize {
        req.tenant as usize
    }

    fn matched_reward(&self, _req: &Request, hit: bool) -> f64 {
        let base = if hit {
            self.rewards.requested_hit(false)
        } else {
            self.rewards.requested_miss(false)
        };
        base * self.scale()
    }

    fn unmatched_reward(&self, pressure: &ShardPressure, entry: &EqEntry) -> f64 {
        let accurate = if entry.trigger_hit {
            entry.action == ACTION_HIT_EPVH
        } else {
            entry.action == ACTION_BYPASS
        };
        let obstructed = self.concurrency_aware && pressure.thrashing;
        self.rewards.not_requested(accurate, obstructed) * self.scale()
    }
}

/// Observer that forwards reward/Q-update telemetry into the shard's
/// event ring and (when auditing) snapshots decisions and rewards into
/// the shard's audit log.
struct RingObserver<'a> {
    ring: &'a mut EventRing,
    audit: Option<&'a mut AuditLog>,
    cycle: u64,
    lane: u32,
}

impl RingObserver<'_> {
    fn emit(&mut self, kind: EventKind) {
        self.ring.offer(TraceEvent {
            cycle: self.cycle,
            core: self.lane,
            kind,
        });
    }

    fn audit_reward(&mut self, id: u64, matched: bool, reward: f64) {
        if let Some(audit) = self.audit.as_deref_mut() {
            audit.push_reward(RewardRecord {
                id,
                matched,
                reward,
            });
        }
    }
}

impl DecisionObserver for RingObserver<'_> {
    fn reward_matched(&mut self, id: u64, reward: f64) {
        self.emit(EventKind::RewardApplied {
            reward,
            matched: true,
        });
        self.audit_reward(id, true, reward);
    }
    fn reward_unmatched(&mut self, id: u64, reward: f64) {
        self.emit(EventKind::RewardApplied {
            reward,
            matched: false,
        });
        self.audit_reward(id, false, reward);
    }
    fn wants_q_delta(&self) -> bool {
        true
    }
    fn q_update(&mut self, delta: f64, action: usize) {
        self.emit(EventKind::QUpdate {
            delta,
            action: action as u8,
        });
    }
    fn wants_decisions(&self) -> bool {
        self.audit.is_some()
    }
    fn decision(&mut self, snap: &DecisionSnapshot) {
        if let Some(audit) = self.audit.as_deref_mut() {
            audit.push_decision(snap.to_record());
        }
    }
}

/// Per-shard engine geometry: smaller tables than the hardware agent
/// (each shard sees a slice of the traffic), faster learning rate, and
/// full-stream training instead of set sampling.
fn engine_config(seed: u64) -> EngineConfig {
    let gamma = 0.3679;
    EngineConfig {
        alpha: 0.15,
        gamma,
        epsilon: 0.02,
        q_init: 1.0 / (1.0 - gamma),
        features: 2,
        sub_tables: 2,
        sub_table_entries: 2048,
        sampled_sets: 32,
        eq_fifo_len: 64,
        seed,
    }
}

/// CHROME driving one shard: RL admission on misses, RL EPV
/// re-assignment on hits, EPV-ordered eviction.
pub struct ChromeServePolicy {
    agent: Agent<ServeEnv>,
    /// Three physical EPV lists, indexed through `order`.
    lists: [DList; 3],
    /// Virtual EPV level → physical list index. Aging rotates this map
    /// instead of touching every slot.
    order: [usize; 3],
    /// Physical list currently holding each slot.
    slot_list: Vec<u8>,
    /// EPV chosen by the admission decision, consumed by `on_insert`.
    pending_epv: u8,
    /// Decision counter; the telemetry cycle stamp.
    clock: u64,
    ring: EventRing,
    audit: Option<AuditLog>,
    name: &'static str,
}

impl ChromeServePolicy {
    /// A CHROME policy for a shard with `cap` slots; `seed` drives the
    /// ε-greedy exploration stream.
    pub fn new(cap: usize, seed: u64) -> Self {
        Self::build(cap, seed, true)
    }

    /// The N-CHROME ablation: identical except the thrashing signal is
    /// masked out of its dead-key rewards.
    pub fn new_unaware(cap: usize, seed: u64) -> Self {
        Self::build(cap, seed, false)
    }

    fn build(cap: usize, seed: u64, concurrency_aware: bool) -> Self {
        let mut env = ServeEnv::new();
        env.concurrency_aware = concurrency_aware;
        ChromeServePolicy {
            agent: Agent::new(env, RlEngine::new(engine_config(seed))),
            lists: [DList::new(cap), DList::new(cap), DList::new(cap)],
            order: [0, 1, 2],
            slot_list: vec![0; cap],
            pending_epv: 0,
            clock: 0,
            ring: EventRing::new(RING_CAPACITY, RING_SAMPLE),
            audit: None,
            name: if concurrency_aware {
                "chrome"
            } else {
                "chrome-nc"
            },
        }
    }

    /// The agent's engine (stats probes, tests).
    pub fn engine(&self) -> &RlEngine {
        &self.agent.engine
    }

    /// Every-request EQ bucketing: the FIFO a key's decisions record
    /// into (and are matched from).
    fn bucket(&self, key: u64) -> usize {
        (mix64(key) % self.agent.engine.config().sampled_sets as u64) as usize
    }

    /// Run one request through the agent and emit its decision event.
    fn decide(&mut self, req: &Request, hit: bool, pressure: &ShardPressure) -> usize {
        self.clock += 1;
        let si = self.bucket(req.key);
        let mut obs = RingObserver {
            ring: &mut self.ring,
            audit: self.audit.as_mut(),
            cycle: self.clock,
            lane: u32::from(req.tenant),
        };
        let d = self.agent.on_access(Some(si), req, hit, pressure, &mut obs);
        let q = self.agent.engine.q(&d.state[..d.features], d.action);
        self.ring.offer(TraceEvent {
            cycle: self.clock,
            core: u32::from(req.tenant),
            kind: EventKind::ServeDecision {
                f1: d.state[0],
                f2: d.state[1],
                action: d.action as u8,
                q,
            },
        });
        d.action
    }
}

impl ShardPolicy for ChromeServePolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn admit(&mut self, req: &Request, pressure: &ShardPressure) -> bool {
        let action = self.decide(req, false, pressure);
        if action == ACTION_BYPASS {
            false
        } else {
            self.pending_epv = (action - 1) as u8;
            true
        }
    }

    fn on_hit(&mut self, slot: u32, req: &Request, pressure: &ShardPressure) {
        let action = self.decide(req, true, pressure);
        let epv = action - 4;
        let dst = self.order[epv];
        let cur = usize::from(self.slot_list[slot as usize]);
        if cur == dst {
            self.lists[dst].move_to_front(slot);
        } else {
            self.lists[cur].remove(slot);
            self.lists[dst].push_front(slot);
            self.slot_list[slot as usize] = dst as u8;
        }
    }

    fn on_insert(&mut self, slot: u32, _req: &Request, _pressure: &ShardPressure) {
        let dst = self.order[usize::from(self.pending_epv)];
        self.lists[dst].push_front(slot);
        self.slot_list[slot as usize] = dst as u8;
    }

    fn choose_victim(&mut self) -> u32 {
        // highest non-empty virtual EPV level holds the victims
        let mut level = 2;
        while level > 0 && self.lists[self.order[level]].is_empty() {
            level -= 1;
        }
        // age every resident up by the gap (RRIP-style), O(1): the
        // rotation relabels virtual levels, and the lists above the
        // occupied one are empty so their relabeling is vacuous
        let bump = 2 - level;
        if bump > 0 {
            self.order.rotate_right(bump);
        }
        self.lists[self.order[2]]
            .back()
            .expect("victim requested from empty shard")
    }

    fn on_remove(&mut self, slot: u32) {
        let cur = usize::from(self.slot_list[slot as usize]);
        self.lists[cur].remove(slot);
    }

    fn events(&self) -> Option<&EventRing> {
        Some(&self.ring)
    }

    fn enable_audit(&mut self, stream: u32, cap: usize) -> bool {
        self.audit = Some(AuditLog::new(stream, cap));
        true
    }

    fn audit(&self) -> Option<&AuditLog> {
        self.audit.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CALM: ShardPressure = ShardPressure { thrashing: false };
    const THRASH: ShardPressure = ShardPressure { thrashing: true };

    fn req(key: u64, tenant: u8) -> Request {
        Request { key, tenant }
    }

    #[test]
    fn reward_scale_tracks_observed_latency_gap() {
        let mut env = ServeEnv::new();
        assert!((env.scale() - 1.0).abs() < 1e-9, "nominal gap at start");
        // a long run of hits with no misses narrows the believed gap…
        for _ in 0..2000 {
            env.state(&req(1, 0), true);
        }
        assert!(
            (env.scale() - 1.0).abs() < 1e-9,
            "hit EWMA already at floor"
        );
        // …while expensive misses widen it
        let costly = (0..500)
            .map(|k| req(k, 0))
            .max_by_key(Request::miss_cost_us)
            .unwrap();
        for _ in 0..2000 {
            env.state(&costly, false);
        }
        assert!(env.scale() > 1.0, "gap above nominal: {}", env.scale());
        assert!(env.scale() <= 4.0, "clamped");
    }

    #[test]
    fn unmatched_reward_credits_bypass_and_punishes_dead_inserts() {
        let env = ServeEnv::new();
        let dead_bypass = EqEntry {
            id: 0,
            state: chrome_core::eq::EqState::from_slice(&[1, 2]),
            action: ACTION_BYPASS,
            trigger_hit: false,
            key: 9,
            lane: 0,
            reward: None,
        };
        let dead_insert = EqEntry {
            action: 2,
            ..dead_bypass
        };
        assert!(env.unmatched_reward(&CALM, &dead_bypass) > 0.0);
        assert!(env.unmatched_reward(&CALM, &dead_insert) < 0.0);
        // thrashing amplifies both judgments
        assert!(
            env.unmatched_reward(&THRASH, &dead_bypass) > env.unmatched_reward(&CALM, &dead_bypass)
        );
        assert!(
            env.unmatched_reward(&THRASH, &dead_insert) < env.unmatched_reward(&CALM, &dead_insert)
        );
    }

    #[test]
    fn flow_signature_separates_tenants_and_key_regions() {
        let (a, _) = ServeEnv::new().state(&req(1000, 0), false);
        let (b, _) = ServeEnv::new().state(&req(1000, 1), false);
        assert_ne!(a[0], b[0], "tenants get distinct flow signatures");
        let mut env = ServeEnv::new();
        let (c, _) = env.state(&req(1000, 0), false);
        let (d, _) = env.state(&req(1000 + 4096, 0), false);
        assert_ne!(c[1], d[1], "distant keys get distinct neighborhoods");
        let (e, _) = env.state(&req(1001, 0), false);
        assert_eq!(c[1], e[1], "adjacent keys share a neighborhood");
    }

    #[test]
    fn reuse_class_rises_with_touches_and_decays() {
        let mut env = ServeEnv::new();
        assert_eq!(env.reuse_class(77), 0, "unseen key is cold");
        assert_eq!(env.reuse_class(77), 1, "second touch sees one count");
        for _ in 0..10 {
            env.reuse_class(77);
        }
        assert_eq!(env.reuse_class(77), 3, "hot key reaches the top class");
        // flows with different reuse classes get different signatures
        let (hot, _) = env.state(&req(77, 0), false);
        let (cold, _) = ServeEnv::new().state(&req(77, 0), false);
        assert_ne!(hot[0], cold[0]);
        // a decay period halves the counters back toward cold
        for _ in 0..SKETCH_DECAY_PERIOD * 4 {
            env.reuse_class(0xDEAD_0000);
        }
        assert!(env.reuse_class(77) < 3, "stale heat decays");
    }

    #[test]
    fn admission_consumes_agent_actions() {
        let mut p = ChromeServePolicy::new(64, 0xBEEF);
        let mut admitted = 0;
        for k in 0..200u64 {
            if p.admit(&req(k, 0), &CALM) {
                p.on_insert((k % 64) as u32, &req(k, 0), &CALM);
                p.on_remove((k % 64) as u32);
                admitted += 1;
            }
        }
        // untrained agent tie-breaks to insert (TIE_RANK), ε explores
        assert!(admitted > 150, "admitted {admitted}/200");
        assert_eq!(p.engine().stats.sampled_accesses, 200);
    }

    #[test]
    fn epv_lists_age_by_rotation_and_evict_highest_epv() {
        let mut p = ChromeServePolicy::new(8, 1);
        // place slots directly: 0 at EPV0, 1 at EPV2
        p.pending_epv = 0;
        p.on_insert(0, &req(0, 0), &CALM);
        p.pending_epv = 2;
        p.on_insert(1, &req(1, 0), &CALM);
        assert_eq!(p.choose_victim(), 1, "EPV2 evicts first");
        p.on_remove(1);
        // only an EPV0 resident remains: aging rotates it up to EPV2
        assert_eq!(p.choose_victim(), 0);
        p.on_remove(0);
        // after aging, a fresh EPV0 insert lands in a now-relabeled list
        p.pending_epv = 0;
        p.on_insert(2, &req(2, 0), &CALM);
        assert_eq!(p.choose_victim(), 2);
    }

    #[test]
    fn decision_events_flow_into_the_ring() {
        let mut p = ChromeServePolicy::new(32, 5);
        for k in 0..300u64 {
            p.admit(&req(k, 0), &CALM);
        }
        let ring = p.events().expect("chrome keeps a ring");
        assert!(!ring.is_empty());
        assert!(ring
            .iter()
            .any(|e| matches!(e.kind, EventKind::ServeDecision { .. })));
    }
}
