//! Deterministic request-stream generators for the serving cache.
//!
//! Four CDN-style access characters, all driven by one [`SmallRng`] so a
//! seed fully determines the key sequence:
//!
//! * **zipf** — a skewed hot set (classic CDN popularity),
//! * **scan** — a sequential sweep with no short-term reuse (backup /
//!   analytics traffic; pure cache pollution),
//! * **churn** — a zipf hot set whose identity rotates periodically
//!   (content catalogs rolling over),
//! * **mixed** — four tenants interleaved on one cache: a zipf tenant, a
//!   scanning tenant, a churning tenant, and a uniform-random tenant.
//!   This is the acceptance workload: a recency-only policy caches the
//!   scan/uniform pollution, while an admission-learning agent can
//!   route it around the cache.
//!
//! Zipf sampling reuses the memoized inverse-CDF tables from
//! `chrome-traces`, and benchmark seeds derive through
//! `chrome_exec::workload_seed` so grid cells never share streams.

use chrome_sim::rng::SmallRng;
use chrome_sim::types::mix64;
use chrome_traces::zipf::Zipf;

/// Salt for deriving a key's value size.
const SIZE_SALT: u64 = 0x5A1D_515E;
/// Salt for deriving a key's backend miss cost.
const COST_SALT: u64 = 0xC057_7AB1;

/// One cache request. Size and backend cost are pure functions of the
/// key (every generator and every thread count observes identical
/// objects), so results stay byte-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The key being fetched.
    pub key: u64,
    /// Issuing tenant (0 for single-tenant streams).
    pub tenant: u8,
}

impl Request {
    /// Logical object size in bytes, 64..4032, derived from the key.
    pub fn size(&self) -> u32 {
        64 + (mix64(self.key ^ SIZE_SALT) % 3968) as u32
    }

    /// Backend fetch latency on a miss, in virtual microseconds,
    /// 80..1000, derived from the key.
    pub fn miss_cost_us(&self) -> u32 {
        80 + (mix64(self.key ^ COST_SALT) % 920) as u32
    }
}

/// Which access character to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Skewed stationary popularity.
    Zipf,
    /// Sequential sweep, no short-term reuse.
    Scan,
    /// Zipf hot set that rotates its identity.
    Churn,
    /// Four tenants (zipf + scan + churn + uniform) interleaved.
    MixedTenant,
}

impl StreamKind {
    /// All stream kinds, for sweeps.
    pub fn all() -> [StreamKind; 4] {
        [
            StreamKind::Zipf,
            StreamKind::Scan,
            StreamKind::Churn,
            StreamKind::MixedTenant,
        ]
    }

    /// Stable name (CLI + JSON + seed derivation).
    pub fn name(&self) -> &'static str {
        match self {
            StreamKind::Zipf => "zipf",
            StreamKind::Scan => "scan",
            StreamKind::Churn => "churn",
            StreamKind::MixedTenant => "mixed",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<StreamKind> {
        match s {
            "zipf" => Some(StreamKind::Zipf),
            "scan" => Some(StreamKind::Scan),
            "churn" => Some(StreamKind::Churn),
            "mixed" => Some(StreamKind::MixedTenant),
            _ => None,
        }
    }
}

/// Zipf skew for the hot-set tenants (classic CDN popularity).
const ALPHA: f64 = 1.0;
/// Churn streams rotate their hot set every this many drawn requests.
const CHURN_PHASE: u64 = 20_000;
/// Offset applied per churn phase (keys the hot set shifts by).
const CHURN_SHIFT: u64 = 997;

/// A deterministic request generator over `keyspace` keys per tenant.
#[derive(Debug)]
pub struct RequestStream {
    kind: StreamKind,
    keyspace: u64,
    rng: SmallRng,
    zipf: Zipf,
    /// Scan cursor.
    pos: u64,
    /// Requests drawn so far (drives churn phases).
    served: u64,
}

impl RequestStream {
    /// A generator over `keyspace` keys (per tenant) seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `keyspace == 0`.
    pub fn new(kind: StreamKind, keyspace: u64, seed: u64) -> Self {
        assert!(keyspace > 0, "empty keyspace");
        RequestStream {
            kind,
            keyspace,
            rng: SmallRng::seed_from_u64(seed),
            zipf: Zipf::new(keyspace as usize, ALPHA),
            pos: 0,
            served: 0,
        }
    }

    /// Tenants keep disjoint key ranges so one cache serves them all
    /// without aliasing.
    #[inline]
    fn tenant_key(&self, tenant: u8, local: u64) -> u64 {
        u64::from(tenant) * self.keyspace + (local % self.keyspace)
    }

    fn zipf_key(&mut self, tenant: u8) -> u64 {
        let rank = self.zipf.sample(&mut self.rng) as u64;
        self.tenant_key(tenant, rank)
    }

    fn scan_key(&mut self, tenant: u8) -> u64 {
        let k = self.tenant_key(tenant, self.pos);
        self.pos += 1;
        k
    }

    fn churn_key(&mut self, tenant: u8) -> u64 {
        // same skew as zipf, but the rank→key mapping shifts each
        // phase: yesterday's hot keys go cold and a new set heats up
        let rank = self.zipf.sample(&mut self.rng) as u64;
        let phase = self.served / CHURN_PHASE;
        self.tenant_key(tenant, rank + phase * CHURN_SHIFT)
    }

    fn uniform_key(&mut self, tenant: u8) -> u64 {
        let local = self.rng.gen_range(0..self.keyspace);
        self.tenant_key(tenant, local)
    }

    /// Draw the next request.
    pub fn next_request(&mut self) -> Request {
        let req = match self.kind {
            StreamKind::Zipf => Request {
                key: self.zipf_key(0),
                tenant: 0,
            },
            StreamKind::Scan => Request {
                key: self.scan_key(0),
                tenant: 0,
            },
            StreamKind::Churn => Request {
                key: self.churn_key(0),
                tenant: 0,
            },
            StreamKind::MixedTenant => {
                // 40% zipf, 25% scan, 25% churn, 10% uniform
                let draw = self.rng.gen_range(0u64..100);
                if draw < 40 {
                    Request {
                        key: self.zipf_key(0),
                        tenant: 0,
                    }
                } else if draw < 65 {
                    Request {
                        key: self.scan_key(1),
                        tenant: 1,
                    }
                } else if draw < 90 {
                    Request {
                        key: self.churn_key(2),
                        tenant: 2,
                    }
                } else {
                    Request {
                        key: self.uniform_key(3),
                        tenant: 3,
                    }
                }
            }
        };
        self.served += 1;
        req
    }

    /// Generate `n` requests up front (the benchmark pre-generates so
    /// thread scheduling can never perturb the stream).
    pub fn generate(kind: StreamKind, n: usize, keyspace: u64, seed: u64) -> Vec<Request> {
        let mut s = RequestStream::new(kind, keyspace, seed);
        (0..n).map(|_| s.next_request()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_attributes_are_key_pure() {
        let a = Request { key: 99, tenant: 0 };
        let b = Request { key: 99, tenant: 3 };
        assert_eq!(a.size(), b.size());
        assert_eq!(a.miss_cost_us(), b.miss_cost_us());
        assert!((64..4032).contains(&a.size()));
        assert!((80..1000).contains(&a.miss_cost_us()));
    }

    #[test]
    fn scan_sweeps_sequentially() {
        let reqs = RequestStream::generate(StreamKind::Scan, 10, 1 << 20, 7);
        let keys: Vec<u64> = reqs.iter().map(|r| r.key).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_concentrates_on_hot_keys() {
        let reqs = RequestStream::generate(StreamKind::Zipf, 50_000, 10_000, 3);
        let hot = reqs.iter().filter(|r| r.key < 100).count();
        assert!(hot > 20_000, "hot-100 share = {hot}/50000");
    }

    #[test]
    fn churn_rotates_the_hot_set() {
        let n = CHURN_PHASE as usize * 2;
        let reqs = RequestStream::generate(StreamKind::Churn, n, 1 << 20, 3);
        let head: std::collections::HashSet<u64> = reqs[..1000].iter().map(|r| r.key).collect();
        let tail: std::collections::HashSet<u64> = reqs[n - 1000..].iter().map(|r| r.key).collect();
        let shared = head.intersection(&tail).count();
        assert!(
            shared * 2 < head.len().min(tail.len()),
            "hot sets barely overlap across phases (shared {shared})"
        );
    }

    #[test]
    fn mixed_uses_all_tenants_with_disjoint_ranges() {
        let keyspace = 10_000u64;
        let reqs = RequestStream::generate(StreamKind::MixedTenant, 20_000, keyspace, 11);
        let mut seen = [false; 4];
        for r in &reqs {
            seen[r.tenant as usize] = true;
            let lo = u64::from(r.tenant) * keyspace;
            assert!((lo..lo + keyspace).contains(&r.key), "{r:?} out of range");
        }
        assert_eq!(seen, [true; 4], "all four tenants appear");
    }

    #[test]
    fn stream_names_roundtrip() {
        for kind in StreamKind::all() {
            assert_eq!(StreamKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(StreamKind::parse("nope"), None);
    }
}
