//! Determinism guarantees for the serving stack (ISSUE 6 satellite):
//! identical seeds produce identical key sequences at any thread
//! count, grid-derived seeds produce distinct sequences, and full
//! benchmark results are byte-identical for a fixed seed at any `-j`.

use chrome_exec::workload_seed;
use chrome_serve::{bench, BenchParams, PolicyKind, RequestStream, StreamKind};

const KEYSPACE: u64 = 8_000;

fn keys(kind: StreamKind, seed: u64, n: usize) -> Vec<u64> {
    RequestStream::generate(kind, n, KEYSPACE, seed)
        .iter()
        .map(|r| r.key)
        .collect()
}

#[test]
fn identical_seeds_give_identical_sequences() {
    for kind in StreamKind::all() {
        let a = keys(kind, 0xABCD, 5_000);
        let b = keys(kind, 0xABCD, 5_000);
        assert_eq!(a, b, "{} diverged for equal seeds", kind.name());
    }
}

#[test]
fn different_seeds_give_different_sequences() {
    for kind in StreamKind::all() {
        if kind == StreamKind::Scan {
            continue; // a pure sweep ignores its seed by construction
        }
        let a = keys(kind, 1, 5_000);
        let b = keys(kind, 2, 5_000);
        assert_ne!(a, b, "{} ignored its seed", kind.name());
    }
}

#[test]
fn grid_derived_seeds_are_distinct_per_cell() {
    // chrome_exec::workload_seed keys the stream on (workload, cores,
    // seed): every grid cell gets its own stream, and the same cell
    // always gets the same one
    let mut seeds = Vec::new();
    for kind in StreamKind::all() {
        for shards in [8u32, 16, 32] {
            for root in [0xC42u64, 7] {
                seeds.push(workload_seed(kind.name(), shards, root));
            }
        }
    }
    let mut unique = seeds.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), seeds.len(), "grid seed collision");
    assert_eq!(
        workload_seed("mixed", 16, 0xC42),
        workload_seed("mixed", 16, 0xC42),
        "derivation is stable"
    );
    // and distinct cells produce genuinely distinct streams
    let a = keys(
        StreamKind::MixedTenant,
        workload_seed("mixed", 16, 0xC42),
        2_000,
    );
    let b = keys(
        StreamKind::MixedTenant,
        workload_seed("mixed", 32, 0xC42),
        2_000,
    );
    assert_ne!(a, b);
}

#[test]
fn bench_results_are_byte_identical_at_any_thread_count() {
    // the acceptance-criterion claim, for every policy on the mixed
    // stream: counters and percentiles are a pure function of the
    // seed, never of the worker count
    for policy in [PolicyKind::Lru, PolicyKind::Chrome] {
        let mut baseline = None;
        for threads in [1usize, 3, 8] {
            let r = bench::run(&BenchParams {
                policy,
                stream: StreamKind::MixedTenant,
                threads,
                requests: 24_000,
                keyspace: 4_000,
                seed: 0xD15C,
                shards: 8,
                shard_slots: 128,
                shard_bytes: 64 * 1024,
                time_policy: false,
            });
            let fingerprint = (r.stats, r.p50_us, r.p99_us);
            match &baseline {
                None => baseline = Some(fingerprint),
                Some(base) => assert_eq!(
                    *base,
                    fingerprint,
                    "{} diverged at {threads} threads",
                    policy.name()
                ),
            }
        }
    }
}

#[test]
fn audit_trail_is_byte_identical_at_any_thread_count() {
    // the forensics acceptance criterion: the per-decision audit blob
    // is a pure function of the seed, never of the worker count —
    // segments are per-shard and merged in shard-index order
    let cell = |threads| {
        bench::run_audited(
            &BenchParams {
                policy: PolicyKind::Chrome,
                stream: StreamKind::MixedTenant,
                threads,
                requests: 24_000,
                keyspace: 4_000,
                seed: 0xD15C,
                shards: 8,
                shard_slots: 128,
                shard_bytes: 64 * 1024,
                time_policy: false,
            },
            1 << 20,
        )
        .1
    };
    let solo = cell(1);
    assert!(!solo.is_empty(), "audit blob must not be empty");
    chrome_telemetry::parse_audit(&solo).expect("audit blob parses");
    for threads in [3usize, 8] {
        assert_eq!(solo, cell(threads), "audit diverged at {threads} threads");
    }
}

#[test]
fn chrome_beats_lru_on_the_mixed_stream() {
    // scaled-down version of the servebench acceptance gate, kept in
    // the suite so a regression fails fast without the full benchmark
    let cell = |policy| {
        bench::run(&BenchParams {
            policy,
            stream: StreamKind::MixedTenant,
            threads: 8,
            requests: 60_000,
            keyspace: 8_000,
            seed: 0xC42,
            shards: 8,
            shard_slots: 256,
            shard_bytes: 128 * 1024,
            time_policy: false,
        })
    };
    let chrome = cell(PolicyKind::Chrome);
    let lru = cell(PolicyKind::Lru);
    assert_eq!(chrome.stats.errors + lru.stats.errors, 0);
    assert!(
        chrome.stats.hit_ratio() > lru.stats.hit_ratio(),
        "chrome {:.4} must beat lru {:.4}",
        chrome.stats.hit_ratio(),
        lru.stats.hit_ratio()
    );
}
