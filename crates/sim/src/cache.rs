//! Private set-associative caches (L1D, L2) with LRU replacement.

use crate::config::CacheConfig;
use crate::mshr::MshrFile;
use crate::stats::CacheStats;
use crate::types::LineAddr;

/// Packed residency key; see the `keys` field of [`PrivateCache`]. Line
/// addresses come from byte addresses shifted down by the line-offset
/// bits, so the shift cannot overflow.
#[inline]
fn key_of(line: LineAddr) -> u64 {
    debug_assert!(line.0 < 1 << 63, "line address overflows packed key");
    (line.0 << 1) | 1
}

/// A block evicted from a cache, reported to the caller so writebacks can
/// be propagated down the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line address of the victim.
    pub line: LineAddr,
    /// True if the victim was dirty (a writeback is required).
    pub dirty: bool,
}

/// A private, write-back, write-allocate cache with true-LRU replacement.
///
/// Used for the L1D and L2 levels; the shared LLC lives in
/// [`crate::llc::SharedLlc`] because it needs a pluggable policy.
#[derive(Debug)]
pub struct PrivateCache {
    sets: usize,
    /// `sets - 1`; set indexing is a bitmask (sets is asserted to be a
    /// power of two at construction) so the demand path never pays a
    /// 64-bit modulo.
    set_mask: u64,
    ways: usize,
    /// Access latency in cycles.
    pub latency: u64,
    /// Packed tag+valid per way: `(line << 1) | 1`, `0` = invalid way.
    /// One array scanned per lookup instead of a tag array plus a valid
    /// array — the L1 lookup runs once per memory access.
    keys: Vec<u64>,
    dirty: Vec<bool>,
    prefetch: Vec<bool>,
    /// Cycle at which each block's data arrives (fills are recorded
    /// eagerly; a hit before this time waits for the in-flight data).
    ready: Vec<u64>,
    lru: Vec<u64>,
    tick: u64,
    /// Outstanding-miss tracking for this level.
    pub mshr: MshrFile,
    /// Counters for this cache.
    pub stats: CacheStats,
}

impl PrivateCache {
    /// Build a cache from a [`CacheConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration implies zero sets or zero ways, or if
    /// the set count is not a power of two (bitmask indexing).
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets > 0 && cfg.ways > 0, "degenerate cache geometry");
        assert!(
            sets.is_power_of_two(),
            "cache set count must be a power of two (got {sets})"
        );
        let n = sets * cfg.ways;
        PrivateCache {
            sets,
            set_mask: sets as u64 - 1,
            ways: cfg.ways,
            latency: cfg.latency,
            keys: vec![0; n],
            dirty: vec![false; n],
            prefetch: vec![false; n],
            ready: vec![0; n],
            lru: vec![0; n],
            tick: 0,
            mshr: MshrFile::new(cfg.mshr_entries),
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 & self.set_mask) as usize
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Look up `line` without updating replacement state.
    pub fn probe(&self, line: LineAddr) -> Option<usize> {
        let base = self.set_of(line) * self.ways;
        crate::probe::find_key(&self.keys[base..base + self.ways], key_of(line))
    }

    /// Look up `line`; on a hit, update LRU state and the dirty bit (for
    /// stores) and return `Some(ready_cycle)` — the cycle the block's
    /// data arrives (in the past for settled blocks). `is_prefetch`
    /// suppresses demand accounting. The caller updates stats counters.
    pub fn lookup(&mut self, line: LineAddr, is_write: bool, is_prefetch: bool) -> Option<u64> {
        let base = self.set_of(line) * self.ways;
        let way = crate::probe::find_key(&self.keys[base..base + self.ways], key_of(line))?;
        let i = base + way;
        self.tick += 1;
        self.lru[i] = self.tick;
        if is_write {
            self.dirty[i] = true;
        }
        if !is_prefetch && self.prefetch[i] {
            self.prefetch[i] = false;
            self.stats.prefetch_useful += 1;
        }
        Some(self.ready[i])
    }

    /// Insert `line`, evicting the LRU block if the set is full.
    /// `ready` is the cycle the data arrives. Returns the evicted
    /// block, if any.
    pub fn fill(
        &mut self,
        line: LineAddr,
        dirty: bool,
        is_prefetch: bool,
        ready: u64,
    ) -> Option<Evicted> {
        debug_assert!(self.probe(line).is_none(), "double fill of resident line");
        let base = self.set_of(line) * self.ways;
        // One fused pass: take the first invalid way if there is one,
        // otherwise the first LRU-minimal way. Steady-state sets are
        // full, so a separate invalid-way probe would scan every key
        // and fail before the LRU scan even started.
        let mut way = 0;
        let mut best = u64::MAX;
        for w in 0..self.ways {
            let i = base + w;
            if self.keys[i] == 0 {
                way = w;
                break;
            }
            if self.lru[i] < best {
                best = self.lru[i];
                way = w;
            }
        }
        let i = base + way;
        let evicted = if self.keys[i] != 0 {
            self.stats.evictions += 1;
            Some(Evicted {
                line: LineAddr(self.keys[i] >> 1),
                dirty: self.dirty[i],
            })
        } else {
            None
        };
        if evicted.as_ref().is_some_and(|e| e.dirty) {
            self.stats.writebacks += 1;
        }
        self.tick += 1;
        self.keys[i] = key_of(line);
        self.dirty[i] = dirty;
        self.prefetch[i] = is_prefetch;
        self.ready[i] = ready;
        self.lru[i] = self.tick;
        if is_prefetch {
            self.stats.prefetch_fills += 1;
        }
        evicted
    }

    /// Mark a resident line dirty (used for writebacks arriving from an
    /// upper level). Returns `false` if the line is not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        if let Some(way) = self.probe(line) {
            let set = self.set_of(line);
            let i = self.idx(set, way);
            self.dirty[i] = true;
            true
        } else {
            false
        }
    }

    /// Number of currently valid blocks (test/diagnostic helper).
    pub fn occupancy(&self) -> usize {
        self.keys.iter().filter(|&&k| k != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PrivateCache {
        // 4 sets x 2 ways
        PrivateCache::new(&CacheConfig {
            capacity: 4 * 2 * 64,
            ways: 2,
            latency: 5,
            mshr_entries: 4,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(c.lookup(LineAddr(12), false, false).is_none());
        c.fill(LineAddr(12), false, false, 0);
        assert!(c.lookup(LineAddr(12), false, false).is_some());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // lines 0, 4, 8 all map to set 0 (4 sets)
        c.fill(LineAddr(0), false, false, 0);
        c.fill(LineAddr(4), false, false, 0);
        c.lookup(LineAddr(0), false, false); // make 0 MRU
        let ev = c.fill(LineAddr(8), false, false, 0).expect("eviction");
        assert_eq!(ev.line, LineAddr(4));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(LineAddr(0), true, false, 0);
        c.fill(LineAddr(4), false, false, 0);
        let ev = c.fill(LineAddr(8), false, false, 0).expect("eviction");
        assert!(ev.dirty);
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn store_hit_sets_dirty() {
        let mut c = tiny();
        c.fill(LineAddr(0), false, false, 0);
        c.fill(LineAddr(4), false, false, 0);
        c.lookup(LineAddr(0), true, false); // store: 0 becomes dirty and MRU
        let ev = c.fill(LineAddr(8), false, false, 0).expect("eviction");
        assert_eq!(ev.line, LineAddr(4));
        assert!(!ev.dirty);
        let ev2 = c.fill(LineAddr(4), false, false, 0).expect("eviction");
        assert_eq!(ev2.line, LineAddr(0));
        assert!(ev2.dirty);
    }

    #[test]
    fn prefetch_bit_cleared_on_demand_hit() {
        let mut c = tiny();
        c.fill(LineAddr(3), false, true, 0);
        assert_eq!(c.stats.prefetch_fills, 1);
        c.lookup(LineAddr(3), false, false);
        assert_eq!(c.stats.prefetch_useful, 1);
        // second demand hit does not double count
        c.lookup(LineAddr(3), false, false);
        assert_eq!(c.stats.prefetch_useful, 1);
    }

    #[test]
    fn occupancy_counts_valid() {
        let mut c = tiny();
        assert_eq!(c.occupancy(), 0);
        c.fill(LineAddr(1), false, false, 0);
        c.fill(LineAddr(2), false, false, 0);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn mark_dirty_only_when_resident() {
        let mut c = tiny();
        assert!(!c.mark_dirty(LineAddr(9)));
        c.fill(LineAddr(9), false, false, 0);
        assert!(c.mark_dirty(LineAddr(9)));
    }
}
