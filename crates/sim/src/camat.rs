//! C-AMAT (Concurrent Average Memory Access Time) instrumentation.
//!
//! C-AMAT [Sun & Wang 2013] is memory-active cycles divided by memory
//! accesses, where overlapping accesses contribute a cycle only once.
//! Each LLC access from core *i* is an interval `[start, end)`; the
//! memory-active cycles of core *i* are the measure of the union of its
//! intervals. Because the simulator produces intervals in non-decreasing
//! start order per core, the union can be maintained incrementally with a
//! single "covered-until" watermark per core.
//!
//! The tracker also keeps the plain (non-overlapped) latency sum, so
//! every epoch yields both pure AMAT and C-AMAT — their difference is
//! the per-access cycles that memory-level parallelism hid.
//!
//! Per feedback epoch (100K cycles in the paper) the tracker produces
//! per-core [`CamatEpoch`] samples and the LLC-obstruction inputs
//! (`C-AMAT_i(LLC) > T_mem`). Active cycles are attributed to the epoch
//! whose window they fall in: an interval straddling an epoch boundary
//! is split, with the overhang carried into the following epoch(s)
//! rather than credited to the epoch that issued the access. Accesses
//! (and their pure latency) stay attributed to the issuing epoch —
//! counts are not divisible.

/// One core's C-AMAT sample for one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CamatEpoch {
    /// Concurrent AMAT: union-of-intervals active cycles per access.
    pub camat: f64,
    /// Pure AMAT: summed latency per access (no overlap discount).
    pub amat: f64,
    /// Accesses issued this epoch.
    pub accesses: u64,
    /// Memory-active cycles that fell inside this epoch's window.
    pub active_cycles: u64,
    /// Summed end-to-end latency of the accesses issued this epoch.
    pub latency_cycles: u64,
}

impl CamatEpoch {
    fn from_counts(active: u64, accesses: u64, latency: u64) -> Self {
        let per_access = |v: u64| {
            if accesses == 0 {
                0.0
            } else {
                v as f64 / accesses as f64
            }
        };
        CamatEpoch {
            camat: per_access(active),
            amat: per_access(latency),
            accesses,
            active_cycles: active,
            latency_cycles: latency,
        }
    }

    /// Per-access cycles that overlap hid (`amat - camat`, ≥ 0 up to
    /// boundary-split skew).
    pub fn overlap_savings(&self) -> f64 {
        self.amat - self.camat
    }
}

/// Per-core C-AMAT accounting at one memory level.
#[derive(Debug, Clone)]
pub struct CamatTracker {
    covered_until: Vec<u64>,
    epoch_active: Vec<u64>,
    epoch_accesses: Vec<u64>,
    epoch_latency: Vec<u64>,
    total_active: Vec<u64>,
    total_accesses: Vec<u64>,
    total_latency: Vec<u64>,
    /// End boundary of the currently open epoch window; `u64::MAX`
    /// disables boundary splitting (every cycle lands in the open epoch).
    epoch_end: u64,
    /// Per-core union segments `[start, end)` lying at or beyond
    /// `epoch_end`, waiting for the epoch that owns them. Disjoint and
    /// ordered (a consequence of the watermark union).
    overhang: Vec<Vec<(u64, u64)>>,
    /// Spare segment buffer ping-ponged with `overhang[core]` at epoch
    /// boundaries so migrating deferred segments never drops capacity
    /// (keeps epoch boundaries allocation-free at steady state).
    overhang_scratch: Vec<(u64, u64)>,
}

impl CamatTracker {
    /// Tracker for `cores` cores.
    pub fn new(cores: usize) -> Self {
        CamatTracker {
            covered_until: vec![0; cores],
            epoch_active: vec![0; cores],
            epoch_accesses: vec![0; cores],
            epoch_latency: vec![0; cores],
            total_active: vec![0; cores],
            total_accesses: vec![0; cores],
            total_latency: vec![0; cores],
            epoch_end: u64::MAX,
            overhang: vec![Vec::new(); cores],
            overhang_scratch: Vec::new(),
        }
    }

    /// Set the end boundary of the currently open epoch. Call once at
    /// construction (first boundary); afterwards [`CamatTracker::end_epoch`]
    /// advances it.
    pub fn set_epoch_boundary(&mut self, end: u64) {
        self.epoch_end = end;
    }

    /// Credit union segment `[from, to)` to the open epoch, deferring
    /// any part at or beyond the epoch boundary.
    fn credit(&mut self, core: usize, from: u64, to: u64) {
        let in_window = to.min(self.epoch_end);
        if in_window > from {
            self.epoch_active[core] += in_window - from;
        }
        let over_from = from.max(self.epoch_end);
        if to > over_from {
            self.overhang[core].push((over_from, to));
        }
    }

    /// Record an access interval `[start, end)` from `core`.
    ///
    /// Intervals must arrive in non-decreasing `start` order per core for
    /// the union computation to be exact (the simulator guarantees this).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `end < start`.
    pub fn record(&mut self, core: usize, start: u64, end: u64) {
        debug_assert!(end >= start, "inverted interval");
        let covered = &mut self.covered_until[core];
        let new_from = start.max(*covered);
        let add = end.saturating_sub(new_from);
        *covered = (*covered).max(end);
        if add > 0 {
            self.credit(core, new_from, end);
        }
        self.epoch_accesses[core] += 1;
        self.epoch_latency[core] += end - start;
        self.total_active[core] += add;
        self.total_accesses[core] += 1;
        self.total_latency[core] += end - start;
    }

    /// Close the current epoch window and open the next one ending at
    /// `next_end`: returns per-core [`CamatEpoch`] samples for the
    /// closed epoch, then migrates deferred overhang cycles into the new
    /// window. Convenience wrapper over
    /// [`CamatTracker::end_epoch_into`] for callers that don't reuse a
    /// buffer.
    pub fn end_epoch(&mut self, next_end: u64) -> Vec<CamatEpoch> {
        let mut out = Vec::new();
        self.end_epoch_into(next_end, &mut out);
        out
    }

    /// Allocation-free [`CamatTracker::end_epoch`]: samples are written
    /// into `out` (cleared first) so a caller-held scratch buffer can be
    /// reused across every epoch boundary.
    pub fn end_epoch_into(&mut self, next_end: u64, out: &mut Vec<CamatEpoch>) {
        self.epoch_samples_into(out);
        for v in &mut self.epoch_active {
            *v = 0;
        }
        for v in &mut self.epoch_accesses {
            *v = 0;
        }
        for v in &mut self.epoch_latency {
            *v = 0;
        }
        self.epoch_end = next_end;
        for core in 0..self.overhang.len() {
            // Ping-pong the deferred segments through the scratch buffer:
            // `credit` pushes the still-deferred tail back into
            // `overhang[core]`, so both vectors keep their capacity and
            // the migration allocates nothing at steady state.
            let mut segments = std::mem::take(&mut self.overhang_scratch);
            std::mem::swap(&mut self.overhang[core], &mut segments);
            for &(from, to) in &segments {
                self.credit(core, from, to);
            }
            segments.clear();
            self.overhang_scratch = segments;
        }
    }

    fn epoch_samples_into(&self, out: &mut Vec<CamatEpoch>) {
        out.clear();
        out.extend((0..self.epoch_active.len()).map(|c| {
            CamatEpoch::from_counts(
                self.epoch_active[c],
                self.epoch_accesses[c],
                self.epoch_latency[c],
            )
        }));
    }

    /// Per-core samples of the still-open epoch, without closing it —
    /// the end-of-run partial-epoch telemetry probe. The run is over, so
    /// any cycles still deferred past the boundary are folded in: the
    /// sum of all epoch `active_cycles` equals the lifetime totals.
    pub fn epoch_snapshot(&self) -> Vec<CamatEpoch> {
        let mut out = Vec::new();
        self.epoch_snapshot_into(&mut out);
        out
    }

    /// Buffer-reusing variant of [`CamatTracker::epoch_snapshot`].
    pub fn epoch_snapshot_into(&self, out: &mut Vec<CamatEpoch>) {
        out.clear();
        out.extend((0..self.epoch_active.len()).map(|c| {
            let deferred: u64 = self.overhang[c].iter().map(|&(s, e)| e - s).sum();
            CamatEpoch::from_counts(
                self.epoch_active[c] + deferred,
                self.epoch_accesses[c],
                self.epoch_latency[c],
            )
        }));
    }

    /// Lifetime totals for `core`: `(active_cycles, accesses)`.
    pub fn totals(&self, core: usize) -> (u64, u64) {
        (self.total_active[core], self.total_accesses[core])
    }

    /// Lifetime summed (non-overlapped) latency for `core`.
    pub fn total_latency(&self, core: usize) -> u64 {
        self.total_latency[core]
    }

    /// Lifetime C-AMAT for `core`.
    pub fn camat(&self, core: usize) -> f64 {
        let (act, acc) = self.totals(core);
        if acc == 0 {
            0.0
        } else {
            act as f64 / acc as f64
        }
    }

    /// Lifetime pure AMAT for `core`.
    pub fn amat(&self, core: usize) -> f64 {
        let (_, acc) = self.totals(core);
        if acc == 0 {
            0.0
        } else {
            self.total_latency[core] as f64 / acc as f64
        }
    }

    /// Reset lifetime totals (used at the warmup/measurement boundary).
    pub fn reset_totals(&mut self) {
        for v in &mut self.total_active {
            *v = 0;
        }
        for v in &mut self.total_accesses {
            *v = 0;
        }
        for v in &mut self.total_latency {
            *v = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_intervals_sum() {
        let mut t = CamatTracker::new(1);
        t.record(0, 0, 10);
        t.record(0, 20, 30);
        assert_eq!(t.totals(0), (20, 2));
        assert!((t.camat(0) - 10.0).abs() < 1e-12);
        assert!((t.amat(0) - 10.0).abs() < 1e-12, "disjoint: amat == camat");
    }

    #[test]
    fn overlapping_intervals_count_once() {
        let mut t = CamatTracker::new(1);
        t.record(0, 0, 100);
        t.record(0, 50, 120); // 50..100 overlaps; adds only 20
        assert_eq!(t.totals(0), (120, 2));
        assert!((t.camat(0) - 60.0).abs() < 1e-12);
        // pure AMAT keeps the full 100 + 70 latency
        assert_eq!(t.total_latency(0), 170);
        assert!((t.amat(0) - 85.0).abs() < 1e-12);
    }

    #[test]
    fn contained_interval_adds_nothing() {
        let mut t = CamatTracker::new(1);
        t.record(0, 0, 100);
        t.record(0, 10, 50);
        assert_eq!(t.totals(0), (100, 2));
    }

    #[test]
    fn cores_are_independent() {
        let mut t = CamatTracker::new(2);
        t.record(0, 0, 10);
        t.record(1, 0, 100);
        assert_eq!(t.totals(0), (10, 1));
        assert_eq!(t.totals(1), (100, 1));
    }

    #[test]
    fn epoch_reset() {
        let mut t = CamatTracker::new(1);
        t.record(0, 0, 10);
        let e = t.end_epoch(u64::MAX);
        assert!((e[0].camat - 10.0).abs() < 1e-12);
        assert_eq!(e[0].accesses, 1);
        let e2 = t.end_epoch(u64::MAX);
        assert_eq!(e2[0].accesses, 0);
        assert_eq!(e2[0].active_cycles, 0);
        // lifetime totals survive epochs
        assert_eq!(t.totals(0), (10, 1));
    }

    #[test]
    fn boundary_straddling_interval_splits_active_cycles() {
        let mut t = CamatTracker::new(1);
        t.set_epoch_boundary(100);
        // 60 cycles in epoch 0, 40 in epoch 1
        t.record(0, 40, 140);
        let e0 = t.end_epoch(200);
        assert_eq!(e0[0].active_cycles, 60, "only in-window cycles");
        assert_eq!(e0[0].accesses, 1, "access counted where issued");
        assert_eq!(e0[0].latency_cycles, 100, "pure latency not split");
        let e1 = t.end_epoch(300);
        assert_eq!(e1[0].active_cycles, 40, "overhang lands in epoch 1");
        assert_eq!(e1[0].accesses, 0);
        // lifetime totals see the whole interval immediately
        assert_eq!(t.totals(0), (100, 1));
    }

    #[test]
    fn overhang_spanning_multiple_epochs_trickles_through() {
        let mut t = CamatTracker::new(1);
        t.set_epoch_boundary(100);
        // 250-cycle interval: 50 + 100 + 100 across three epochs
        t.record(0, 50, 300);
        assert_eq!(t.end_epoch(200)[0].active_cycles, 50);
        assert_eq!(t.end_epoch(300)[0].active_cycles, 100);
        assert_eq!(t.end_epoch(400)[0].active_cycles, 100);
        assert_eq!(t.end_epoch(500)[0].active_cycles, 0);
        assert_eq!(t.totals(0), (250, 1));
    }

    #[test]
    fn epoch_actives_reconcile_with_totals() {
        let mut t = CamatTracker::new(1);
        t.set_epoch_boundary(100);
        t.record(0, 10, 90);
        t.record(0, 80, 150); // union adds 90..150, straddling
        t.record(0, 120, 260); // union adds 150..260, straddling again
        let mut epoch_sum = t.end_epoch(200)[0].active_cycles;
        epoch_sum += t.end_epoch(300)[0].active_cycles;
        // run ends mid-epoch: snapshot folds the remaining overhang in
        epoch_sum += t.epoch_snapshot()[0].active_cycles;
        let (total, accesses) = t.totals(0);
        assert_eq!(epoch_sum, total);
        assert_eq!(accesses, 3);
    }

    #[test]
    fn interval_entirely_beyond_boundary_is_all_overhang() {
        let mut t = CamatTracker::new(1);
        t.set_epoch_boundary(100);
        t.record(0, 150, 180);
        let e0 = t.end_epoch(200);
        assert_eq!(e0[0].active_cycles, 0);
        assert_eq!(e0[0].accesses, 1, "issued in epoch 0");
        assert_eq!(t.end_epoch(300)[0].active_cycles, 30);
    }

    #[test]
    fn snapshot_without_boundaries_matches_old_behaviour() {
        let mut t = CamatTracker::new(1);
        t.record(0, 0, 10);
        let snap = t.epoch_snapshot();
        assert!((snap[0].camat - 10.0).abs() < 1e-12);
        assert_eq!(snap[0].accesses, 1);
    }

    #[test]
    fn overlap_savings_is_amat_minus_camat() {
        let mut t = CamatTracker::new(1);
        t.record(0, 0, 100);
        t.record(0, 0, 100); // perfect overlap
        let e = t.end_epoch(u64::MAX)[0];
        assert!((e.amat - 100.0).abs() < 1e-12);
        assert!((e.camat - 50.0).abs() < 1e-12);
        assert!((e.overlap_savings() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn reset_totals_clears_lifetime() {
        let mut t = CamatTracker::new(1);
        t.record(0, 0, 10);
        t.reset_totals();
        assert_eq!(t.totals(0), (0, 0));
        assert_eq!(t.camat(0), 0.0);
        assert_eq!(t.total_latency(0), 0);
    }

    #[test]
    fn zero_length_interval_counts_access() {
        let mut t = CamatTracker::new(1);
        t.record(0, 5, 5);
        assert_eq!(t.totals(0), (0, 1));
    }
}
