//! C-AMAT (Concurrent Average Memory Access Time) instrumentation.
//!
//! C-AMAT [Sun & Wang 2013] is memory-active cycles divided by memory
//! accesses, where overlapping accesses contribute a cycle only once.
//! Each LLC access from core *i* is an interval `[start, end)`; the
//! memory-active cycles of core *i* are the measure of the union of its
//! intervals. Because the simulator produces intervals in non-decreasing
//! start order per core, the union can be maintained incrementally with a
//! single "covered-until" watermark per core.
//!
//! Per feedback epoch (100K cycles in the paper) the tracker produces
//! per-core C-AMAT(LLC) values and the LLC-obstruction flags
//! (`C-AMAT_i(LLC) > T_mem`).

/// Per-core C-AMAT accounting at one memory level.
#[derive(Debug, Clone)]
pub struct CamatTracker {
    covered_until: Vec<u64>,
    epoch_active: Vec<u64>,
    epoch_accesses: Vec<u64>,
    total_active: Vec<u64>,
    total_accesses: Vec<u64>,
}

impl CamatTracker {
    /// Tracker for `cores` cores.
    pub fn new(cores: usize) -> Self {
        CamatTracker {
            covered_until: vec![0; cores],
            epoch_active: vec![0; cores],
            epoch_accesses: vec![0; cores],
            total_active: vec![0; cores],
            total_accesses: vec![0; cores],
        }
    }

    /// Record an access interval `[start, end)` from `core`.
    ///
    /// Intervals must arrive in non-decreasing `start` order per core for
    /// the union computation to be exact (the simulator guarantees this).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `end < start`.
    pub fn record(&mut self, core: usize, start: u64, end: u64) {
        debug_assert!(end >= start, "inverted interval");
        let covered = &mut self.covered_until[core];
        let new_from = start.max(*covered);
        let add = end.saturating_sub(new_from);
        *covered = (*covered).max(end);
        self.epoch_active[core] += add;
        self.epoch_accesses[core] += 1;
        self.total_active[core] += add;
        self.total_accesses[core] += 1;
    }

    /// Close the current epoch: returns per-core `(camat, accesses)` for
    /// the epoch and resets epoch counters.
    pub fn end_epoch(&mut self) -> Vec<(f64, u64)> {
        let out = self
            .epoch_active
            .iter()
            .zip(&self.epoch_accesses)
            .map(|(&act, &acc)| {
                let camat = if acc == 0 {
                    0.0
                } else {
                    act as f64 / acc as f64
                };
                (camat, acc)
            })
            .collect();
        for v in &mut self.epoch_active {
            *v = 0;
        }
        for v in &mut self.epoch_accesses {
            *v = 0;
        }
        out
    }

    /// Per-core `(camat, accesses)` of the still-open epoch, without
    /// closing it (the end-of-run partial-epoch telemetry probe).
    pub fn epoch_snapshot(&self) -> Vec<(f64, u64)> {
        self.epoch_active
            .iter()
            .zip(&self.epoch_accesses)
            .map(|(&act, &acc)| {
                let camat = if acc == 0 {
                    0.0
                } else {
                    act as f64 / acc as f64
                };
                (camat, acc)
            })
            .collect()
    }

    /// Lifetime totals for `core`: `(active_cycles, accesses)`.
    pub fn totals(&self, core: usize) -> (u64, u64) {
        (self.total_active[core], self.total_accesses[core])
    }

    /// Lifetime C-AMAT for `core`.
    pub fn camat(&self, core: usize) -> f64 {
        let (act, acc) = self.totals(core);
        if acc == 0 {
            0.0
        } else {
            act as f64 / acc as f64
        }
    }

    /// Reset lifetime totals (used at the warmup/measurement boundary).
    pub fn reset_totals(&mut self) {
        for v in &mut self.total_active {
            *v = 0;
        }
        for v in &mut self.total_accesses {
            *v = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_intervals_sum() {
        let mut t = CamatTracker::new(1);
        t.record(0, 0, 10);
        t.record(0, 20, 30);
        assert_eq!(t.totals(0), (20, 2));
        assert!((t.camat(0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn overlapping_intervals_count_once() {
        let mut t = CamatTracker::new(1);
        t.record(0, 0, 100);
        t.record(0, 50, 120); // 50..100 overlaps; adds only 20
        assert_eq!(t.totals(0), (120, 2));
        assert!((t.camat(0) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn contained_interval_adds_nothing() {
        let mut t = CamatTracker::new(1);
        t.record(0, 0, 100);
        t.record(0, 10, 50);
        assert_eq!(t.totals(0), (100, 2));
    }

    #[test]
    fn cores_are_independent() {
        let mut t = CamatTracker::new(2);
        t.record(0, 0, 10);
        t.record(1, 0, 100);
        assert_eq!(t.totals(0), (10, 1));
        assert_eq!(t.totals(1), (100, 1));
    }

    #[test]
    fn epoch_reset() {
        let mut t = CamatTracker::new(1);
        t.record(0, 0, 10);
        let e = t.end_epoch();
        assert!((e[0].0 - 10.0).abs() < 1e-12);
        assert_eq!(e[0].1, 1);
        let e2 = t.end_epoch();
        assert_eq!(e2[0], (0.0, 0));
        // lifetime totals survive epochs
        assert_eq!(t.totals(0), (10, 1));
    }

    #[test]
    fn reset_totals_clears_lifetime() {
        let mut t = CamatTracker::new(1);
        t.record(0, 0, 10);
        t.reset_totals();
        assert_eq!(t.totals(0), (0, 0));
        assert_eq!(t.camat(0), 0.0);
    }

    #[test]
    fn zero_length_interval_counts_access() {
        let mut t = CamatTracker::new(1);
        t.record(0, 5, 5);
        assert_eq!(t.totals(0), (0, 1));
    }
}
