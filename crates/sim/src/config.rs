//! Simulated system configuration (paper Table V defaults).

/// Which hardware prefetcher to instantiate at a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetcherKind {
    /// No prefetching at this level.
    None,
    /// Next-line prefetcher.
    NextLine,
    /// Per-PC stride prefetcher (Fu & Patel style).
    Stride,
    /// Streamer prefetcher (Chen & Baer style stream detector).
    Streamer,
    /// IPCP-style instruction-pointer classifier prefetcher.
    Ipcp,
}

/// Prefetchers at L1 and L2 (the paper evaluates three combinations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetcherConfig {
    /// Prefetcher observing L1D demand accesses.
    pub l1: PrefetcherKind,
    /// Prefetcher observing L2 demand accesses.
    pub l2: PrefetcherKind,
}

impl PrefetcherConfig {
    /// Paper default (CRC-2 methodology): next-line at L1, stride at L2.
    pub fn default_paper() -> Self {
        PrefetcherConfig {
            l1: PrefetcherKind::NextLine,
            l2: PrefetcherKind::Stride,
        }
    }

    /// The Fig. 3(b)/Fig. 14 alternative: stride at L1, streamer at L2.
    pub fn stride_streamer() -> Self {
        PrefetcherConfig {
            l1: PrefetcherKind::Stride,
            l2: PrefetcherKind::Streamer,
        }
    }

    /// The Fig. 14 IPCP configuration (IPCP at L2, next-line at L1).
    pub fn ipcp() -> Self {
        PrefetcherConfig {
            l1: PrefetcherKind::NextLine,
            l2: PrefetcherKind::Ipcp,
        }
    }

    /// No prefetching anywhere (used for MPKI-based workload screening).
    pub fn none() -> Self {
        PrefetcherConfig {
            l1: PrefetcherKind::None,
            l2: PrefetcherKind::None,
        }
    }
}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Access latency in core cycles.
    pub latency: u64,
    /// Number of MSHR entries (outstanding misses).
    pub mshr_entries: usize,
}

impl CacheConfig {
    /// Number of sets implied by capacity / ways / 64B lines.
    pub fn sets(&self) -> usize {
        self.capacity / (self.ways * crate::types::LINE_SIZE as usize)
    }
}

/// DRAM timing parameters, expressed in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Row-precharge time in core cycles (tRP).
    pub t_rp: u64,
    /// Row-to-column delay in core cycles (tRCD).
    pub t_rcd: u64,
    /// Column access strobe latency in core cycles (tCAS).
    pub t_cas: u64,
    /// Cycles the channel data bus is occupied per 64B transfer.
    pub burst: u64,
    /// Number of lines per DRAM row (row-buffer size / 64B).
    pub lines_per_row: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        // DDR4-3200 on a 4 GHz core: 12.5ns = 50 cycles; 64B over a 64-bit
        // channel at 3200 MT/s = 20ns/8B*... = 2.5ns ≈ 10 core cycles.
        DramConfig {
            channels: 2,
            ranks: 2,
            banks: 8,
            t_rp: 50,
            t_rcd: 50,
            t_cas: 50,
            burst: 10,
            lines_per_row: 128, // 8KB row buffer
        }
    }
}

/// Full system configuration. Defaults follow the paper's Table V.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of cores (the paper uses 4, 8 and 16).
    pub cores: usize,
    /// Fetch/execute/commit width.
    pub width: usize,
    /// Reorder buffer capacity.
    pub rob_size: usize,
    /// Private L1 data cache.
    pub l1d: CacheConfig,
    /// Private L2 cache.
    pub l2: CacheConfig,
    /// Shared LLC capacity *per core* in bytes (total = per-core × cores).
    pub llc_per_core: usize,
    /// LLC associativity.
    pub llc_ways: usize,
    /// LLC access latency in cycles.
    pub llc_latency: u64,
    /// LLC MSHR entries per slice (scaled by core count).
    pub llc_mshr_per_slice: usize,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Prefetcher selection.
    pub prefetchers: PrefetcherConfig,
    /// Prefetch degree (lines issued per trigger).
    pub prefetch_degree: usize,
    /// Length of the system-feedback epoch in cycles (100K in the paper).
    pub epoch_cycles: u64,
    /// Number of sampled LLC sets observed by sampling-based policies.
    pub sampled_sets: usize,
    /// Mesh NoC timing between cores and address-interleaved LLC
    /// slices. `None` (the default) keeps the classic uniform-latency
    /// LLC, byte-identical to every pre-NoC result.
    pub noc: Option<chrome_noc::NocConfig>,
}

impl SimConfig {
    /// Table V configuration with the given number of cores.
    pub fn with_cores(cores: usize) -> Self {
        assert!(cores >= 1, "need at least one core");
        SimConfig {
            cores,
            width: 6,
            rob_size: 512,
            l1d: CacheConfig {
                capacity: 48 * 1024,
                ways: 12,
                latency: 5,
                mshr_entries: 16,
            },
            l2: CacheConfig {
                capacity: 1280 * 1024,
                ways: 20,
                latency: 10,
                mshr_entries: 48,
            },
            llc_per_core: 3 * 1024 * 1024,
            llc_ways: 12,
            llc_latency: 40,
            llc_mshr_per_slice: 64,
            dram: DramConfig::default(),
            prefetchers: PrefetcherConfig::default_paper(),
            prefetch_degree: 2,
            epoch_cycles: 100_000,
            sampled_sets: 64,
            noc: None,
        }
    }

    /// Total LLC geometry as a [`CacheConfig`].
    pub fn llc(&self) -> CacheConfig {
        CacheConfig {
            capacity: self.llc_per_core * self.cores,
            ways: self.llc_ways,
            latency: self.llc_latency,
            mshr_entries: self.llc_mshr_per_slice * self.cores,
        }
    }

    /// A scaled-down configuration for fast unit/property tests: small
    /// caches so interesting events (misses, evictions) happen quickly.
    pub fn small_test(cores: usize) -> Self {
        let mut cfg = Self::with_cores(cores);
        cfg.l1d = CacheConfig {
            capacity: 4 * 1024,
            ways: 4,
            latency: 5,
            mshr_entries: 8,
        };
        cfg.l2 = CacheConfig {
            capacity: 16 * 1024,
            ways: 8,
            latency: 10,
            mshr_entries: 16,
        };
        cfg.llc_per_core = 64 * 1024;
        cfg.llc_ways = 8;
        cfg.epoch_cycles = 10_000;
        cfg.sampled_sets = 16;
        cfg
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::with_cores(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_geometry() {
        let cfg = SimConfig::with_cores(4);
        assert_eq!(cfg.l1d.sets(), 64); // 48KB / (12 * 64)
        assert_eq!(cfg.l2.sets(), 1024); // 1.25MB / (20 * 64)
        assert_eq!(cfg.llc().sets(), 16384); // 12MB / (12 * 64)
    }

    #[test]
    fn llc_scales_with_cores() {
        assert_eq!(SimConfig::with_cores(8).llc().sets(), 32768);
        assert_eq!(SimConfig::with_cores(16).llc().sets(), 65536);
        assert_eq!(SimConfig::with_cores(16).llc().mshr_entries, 64 * 16);
    }

    #[test]
    fn prefetcher_presets() {
        assert_eq!(
            PrefetcherConfig::default_paper().l1,
            PrefetcherKind::NextLine
        );
        assert_eq!(
            PrefetcherConfig::stride_streamer().l2,
            PrefetcherKind::Streamer
        );
        assert_eq!(PrefetcherConfig::ipcp().l2, PrefetcherKind::Ipcp);
        assert_eq!(PrefetcherConfig::none().l1, PrefetcherKind::None);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = SimConfig::with_cores(0);
    }
}
