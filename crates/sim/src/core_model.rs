//! The per-core timing model: a trace-driven front end bounded by a
//! reorder buffer.
//!
//! Every cycle a core retires up to `width` completed instructions in
//! order and issues up to `width` new ones while the ROB has room.
//! Non-memory instructions complete the next cycle; loads receive a
//! completion cycle from the memory hierarchy at issue time; stores
//! retire immediately (an idealized store buffer) while still exercising
//! the cache/DRAM state. Loads flagged `dep_prev` (pointer chasing)
//! cannot issue before the previous load of the same core completes,
//! which is what differentiates high-MLP streaming from serialized
//! chasing in the C-AMAT feedback.

use std::collections::VecDeque;

use crate::trace::TraceSource;
use crate::types::{AccessKind, TraceRecord};

/// Architectural state of one simulated core.
pub struct Core {
    /// The workload feeding this core.
    pub trace: Box<dyn TraceSource>,
    /// In-flight instruction completion times, in fetch order,
    /// run-length encoded as `(completion, count)`: adjacent
    /// instructions with equal completion cycles (the common case —
    /// every non-memory instruction issued in a cycle completes the
    /// next) share one entry. Retire order and per-instruction
    /// accounting are exactly those of the expanded queue.
    rob: VecDeque<(u64, u32)>,
    /// Total instructions across `rob` entries (the architectural ROB
    /// occupancy).
    rob_len: usize,
    rob_size: usize,
    width: usize,
    /// Non-memory instructions still to issue before the pending record.
    nonmem_left: u16,
    /// The next memory record, once its leading non-memory run is done.
    pending: Option<TraceRecord>,
    /// Completion cycle of the most recent load (for `dep_prev`).
    pub last_load_completion: u64,
    /// Total instructions pulled from the trace since construction
    /// (each record counts `1 + nonmem_before`). This is the trace
    /// *cursor*: sampled replay aligns functional-warmup and detailed
    /// phases on fetch positions, which — unlike `retired` — never lag
    /// behind the trace by in-flight ROB contents.
    pub fetched: u64,
    /// Total instructions retired since construction.
    pub retired: u64,
    /// Cycles completed instructions spent waiting in the ROB for
    /// in-order release (Σ retire_cycle − completion_cycle) — the
    /// profiler's post-fill attribution tail.
    pub rob_release_lag: u64,
    /// Retired count at the start of the measurement region.
    pub measure_start_retired: u64,
    /// ROB-release lag at the start of the measurement region.
    pub measure_start_rob_lag: u64,
    /// Cycle at the start of the measurement region.
    pub measure_start_cycle: u64,
    /// Cycle at which this core finished its measured quota.
    pub done_cycle: Option<u64>,
}

/// One step of a decoded issue sequence (see [`Core::plan_issue`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanItem {
    /// A run of non-memory instructions completing next cycle.
    NonMem {
        /// Instructions in the run.
        count: u16,
    },
    /// One memory operation.
    Mem {
        /// The trace record to send to the hierarchy.
        rec: TraceRecord,
    },
}

/// A reusable per-core buffer holding one cycle's decoded issue
/// sequence. Plain data: safe to fill on a worker thread and drain on
/// the main thread.
#[derive(Debug, Clone, Default)]
pub struct IssuePlan {
    items: Vec<PlanItem>,
}

impl IssuePlan {
    /// True when the decoded sequence issues nothing this cycle.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("trace", &self.trace.name())
            .field("retired", &self.retired)
            .field("rob_occupancy", &self.rob_len)
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Create a core with the given ROB size and width.
    ///
    /// # Panics
    ///
    /// Panics if `rob_size` or `width` is zero.
    pub fn new(trace: Box<dyn TraceSource>, rob_size: usize, width: usize) -> Self {
        assert!(rob_size > 0 && width > 0, "degenerate core geometry");
        Core {
            trace,
            rob: VecDeque::with_capacity(rob_size),
            rob_len: 0,
            rob_size,
            width,
            nonmem_left: 0,
            pending: None,
            last_load_completion: 0,
            fetched: 0,
            retired: 0,
            rob_release_lag: 0,
            measure_start_retired: 0,
            measure_start_rob_lag: 0,
            measure_start_cycle: 0,
            done_cycle: None,
        }
    }

    /// Retire completed instructions for this cycle. Returns how many
    /// instructions were retired.
    pub fn retire(&mut self, cycle: u64) -> usize {
        let mut n = 0;
        while n < self.width {
            match self.rob.front_mut() {
                Some(&mut (done, ref mut count)) if done <= cycle => {
                    let take = (*count as usize).min(self.width - n);
                    *count -= take as u32;
                    self.rob_len -= take;
                    self.rob_release_lag += (cycle - done) * take as u64;
                    self.retired += take as u64;
                    n += take;
                    if *count == 0 {
                        self.rob.pop_front();
                    }
                }
                _ => break,
            }
        }
        n
    }

    /// Append `count` instructions completing at `done`, merging into the
    /// tail run when the completion cycles match (the retire sequence of
    /// two adjacent equal-completion entries is order-insensitive, so the
    /// merge is observationally exact).
    fn rob_push(&mut self, done: u64, count: usize) {
        self.rob_len += count;
        if let Some(back) = self.rob.back_mut() {
            if back.0 == done {
                back.1 += count as u32;
                return;
            }
        }
        self.rob.push_back((done, count as u32));
    }

    /// True when the ROB is full (the core cannot issue).
    pub fn stalled(&self) -> bool {
        self.rob_len >= self.rob_size
    }

    /// Completion time of the ROB head, if any (used by the fast-forward
    /// optimization in the system loop).
    pub fn head_completion(&self) -> Option<u64> {
        self.rob.front().map(|&(done, _)| done)
    }

    /// Conservative earliest cycle ≥ `now` at which this core can make
    /// progress — the event-driven kernel's per-core wake-up watermark.
    ///
    /// A core with ROB headroom can issue immediately (`now`). A full
    /// ROB blocks issue until the in-order head retires, which cannot
    /// happen before the head's completion cycle; until then both
    /// `retire` and `issue` are provable no-ops, so the scheduler may
    /// skip this core (or, if every core is idle, jump the clock).
    pub fn next_activity(&self, now: u64) -> u64 {
        if self.rob_len < self.rob_size {
            return now;
        }
        // A full ROB is non-empty (rob_size > 0), so the head exists.
        // The head may already be complete (retire pops at most `width`
        // per cycle), in which case the core is due right away.
        self.head_completion().map_or(now, |done| done.max(now))
    }

    /// Issue up to `width` instructions, calling `mem_access` for each
    /// memory operation. The callback receives `(record, issue_cycle)`
    /// and returns the completion cycle of the access.
    pub fn issue<F>(&mut self, cycle: u64, mut mem_access: F) -> usize
    where
        F: FnMut(&TraceRecord, u64) -> u64,
    {
        let mut n = 0;
        while n < self.width && self.rob_len < self.rob_size {
            if self.nonmem_left > 0 {
                // Batch the non-memory run: every instruction in it
                // shares the completion cycle, so take as many as width
                // and ROB headroom allow in a single run entry.
                let take = (self.nonmem_left as usize)
                    .min(self.width - n)
                    .min(self.rob_size - self.rob_len);
                self.rob_push(cycle + 1, take);
                self.nonmem_left -= take as u16;
                n += take;
                continue;
            }
            let rec = match self.pending.take() {
                Some(r) => r,
                None => {
                    let r = self.fetch_record();
                    if r.nonmem_before > 0 {
                        self.nonmem_left = r.nonmem_before;
                        self.pending = Some(r);
                        continue; // consume the non-memory run first
                    }
                    r
                }
            };
            let issue_cycle = if rec.dep_prev {
                cycle.max(self.last_load_completion)
            } else {
                cycle
            };
            match rec.kind {
                AccessKind::Load => {
                    let done = mem_access(&rec, issue_cycle);
                    self.last_load_completion = done;
                    self.rob_push(done, 1);
                }
                AccessKind::Store => {
                    // Exercise the hierarchy but retire from the store
                    // buffer next cycle.
                    let _ = mem_access(&rec, issue_cycle);
                    self.rob_push(cycle + 1, 1);
                }
            }
            n += 1;
        }
        n
    }

    /// Phase-A half of [`Core::issue`]: decode this cycle's issue
    /// sequence into `plan` without touching the ROB or the memory
    /// hierarchy. The *selection* of instructions issued in a cycle is
    /// a pure function of private front-end state (width, ROB
    /// headroom, the non-memory run, the pending record) — completion
    /// times returned by the hierarchy only parameterize *when* later
    /// instructions issue, never *whether* — so decode can run off the
    /// main thread while [`Core::apply_issue`] replays the plan against
    /// shared state in deterministic order. `plan_issue` followed by
    /// `apply_issue` is observationally identical to one fused
    /// [`Core::issue`] call (see the equivalence test below).
    pub fn plan_issue(&mut self, plan: &mut IssuePlan) {
        plan.items.clear();
        let mut n = 0;
        let mut rob_len = self.rob_len; // virtual occupancy: pushes happen at apply
        while n < self.width && rob_len < self.rob_size {
            if self.nonmem_left > 0 {
                let take = (self.nonmem_left as usize)
                    .min(self.width - n)
                    .min(self.rob_size - rob_len);
                plan.items.push(PlanItem::NonMem { count: take as u16 });
                rob_len += take;
                self.nonmem_left -= take as u16;
                n += take;
                continue;
            }
            let rec = match self.pending.take() {
                Some(r) => r,
                None => {
                    let r = self.fetch_record();
                    if r.nonmem_before > 0 {
                        self.nonmem_left = r.nonmem_before;
                        self.pending = Some(r);
                        continue; // consume the non-memory run first
                    }
                    r
                }
            };
            plan.items.push(PlanItem::Mem { rec });
            rob_len += 1;
            n += 1;
        }
    }

    /// Phase-B half of [`Core::issue`]: replay a decoded plan, doing
    /// every ROB push and `mem_access` call in the exact order the
    /// fused loop would. Returns the number of instructions issued.
    pub fn apply_issue<F>(&mut self, cycle: u64, plan: &IssuePlan, mut mem_access: F) -> usize
    where
        F: FnMut(&TraceRecord, u64) -> u64,
    {
        let mut n = 0;
        for item in &plan.items {
            match item {
                PlanItem::NonMem { count } => {
                    self.rob_push(cycle + 1, *count as usize);
                    n += *count as usize;
                }
                PlanItem::Mem { rec } => {
                    let issue_cycle = if rec.dep_prev {
                        cycle.max(self.last_load_completion)
                    } else {
                        cycle
                    };
                    match rec.kind {
                        AccessKind::Load => {
                            let done = mem_access(rec, issue_cycle);
                            self.last_load_completion = done;
                            self.rob_push(done, 1);
                        }
                        AccessKind::Store => {
                            let _ = mem_access(rec, issue_cycle);
                            self.rob_push(cycle + 1, 1);
                        }
                    }
                    n += 1;
                }
            }
        }
        n
    }

    /// Pull the next record from the trace, advancing the fetch cursor
    /// by the record plus its leading non-memory run.
    pub(crate) fn fetch_record(&mut self) -> TraceRecord {
        let r = self.trace.next_record();
        self.fetched += 1 + u64::from(r.nonmem_before);
        r
    }

    /// Take the partially-issued pending record (clearing its remaining
    /// non-memory run), so a mode switch can apply it functionally
    /// instead of leaving the cursor mid-record.
    pub(crate) fn take_pending(&mut self) -> Option<TraceRecord> {
        self.nonmem_left = 0;
        self.pending.take()
    }

    /// Drop all in-flight timing state (ROB contents, load-dependence
    /// chain) at a functional/detailed mode switch. Fetched-but-unretired
    /// instructions are discarded — sampled measurement is retire-delta
    /// based, while trace alignment is fetch-cursor based, so the loss is
    /// bounded by one ROB and never double-counted.
    pub(crate) fn reset_timing(&mut self) {
        self.rob.clear();
        self.rob_len = 0;
        self.last_load_completion = 0;
    }

    /// Instructions retired in the measurement region so far.
    pub fn measured_instructions(&self) -> u64 {
        self.retired - self.measure_start_retired
    }

    /// ROB-release lag accumulated in the measurement region so far.
    pub fn measured_rob_release_lag(&self) -> u64 {
        self.rob_release_lag - self.measure_start_rob_lag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::StridedSource;

    fn core(width: usize, rob: usize) -> Core {
        Core::new(Box::new(StridedSource::new(0, 64, 1 << 20, 0)), rob, width)
    }

    #[test]
    fn issues_up_to_width() {
        let mut c = core(4, 64);
        let issued = c.issue(0, |_, t| t + 10);
        assert_eq!(issued, 4);
    }

    #[test]
    fn rob_bounds_issue() {
        let mut c = core(8, 4);
        assert_eq!(c.issue(0, |_, t| t + 100), 4);
        assert!(c.stalled());
        assert_eq!(c.issue(1, |_, t| t + 100), 0);
    }

    #[test]
    fn retire_is_in_order() {
        let mut c = core(2, 16);
        // first load finishes late, second early: neither retires until
        // the first completes
        let mut lat = [100u64, 5].into_iter();
        c.issue(0, |_, t| t + lat.next().unwrap());
        assert_eq!(c.retire(50), 0);
        assert_eq!(c.retire(100), 2);
        assert_eq!(c.retired, 2);
    }

    #[test]
    fn nonmem_runs_take_one_cycle_each() {
        let src = StridedSource::new(0, 64, 1 << 20, 3);
        let mut c = Core::new(Box::new(src), 64, 6);
        let mut mem_count = 0;
        // width 6: 3 nonmem + 1 mem + 2 more (next record's nonmem)
        c.issue(0, |_, t| {
            mem_count += 1;
            t + 1
        });
        assert_eq!(mem_count, 1);
    }

    #[test]
    fn dependent_load_waits_for_previous() {
        use crate::types::TraceRecord;

        struct TwoDeps {
            i: usize,
        }
        impl crate::trace::TraceSource for TwoDeps {
            fn next_record(&mut self) -> TraceRecord {
                self.i += 1;
                TraceRecord::dep_load(0x400, (self.i as u64) * 4096, 0)
            }
            fn name(&self) -> &str {
                "two-deps"
            }
        }
        let mut c = Core::new(Box::new(TwoDeps { i: 0 }), 64, 2);
        let mut issue_times = Vec::new();
        c.issue(0, |_, t| {
            issue_times.push(t);
            t + 100
        });
        assert_eq!(issue_times, vec![0, 100], "second load chained on first");
    }

    #[test]
    fn stores_retire_quickly() {
        struct Stores;
        impl crate::trace::TraceSource for Stores {
            fn next_record(&mut self) -> TraceRecord {
                TraceRecord::store(0x400, 0x1000, 0)
            }
            fn name(&self) -> &str {
                "stores"
            }
        }
        let mut c = Core::new(Box::new(Stores), 64, 2);
        c.issue(0, |_, t| t + 500); // long memory time, hidden by store buffer
        assert_eq!(c.retire(1), 2);
    }

    #[test]
    fn rob_release_lag_counts_in_order_wait() {
        let mut c = core(2, 16);
        // first load finishes at 100, second at 5: the second waits
        // 95 cycles behind the ROB head
        let mut lat = [100u64, 5].into_iter();
        c.issue(0, |_, t| t + lat.next().unwrap());
        c.retire(100);
        assert_eq!(c.rob_release_lag, 95);
        assert_eq!(c.measured_rob_release_lag(), 95);
    }

    /// `plan_issue` + `apply_issue` must be observationally identical
    /// to one fused `issue` call: same `mem_access` sequence (records
    /// *and* issue cycles), same retire stream, same cursors. This is
    /// the determinism keystone of the parallel stepping kernel.
    #[test]
    fn planned_issue_matches_fused_issue() {
        // a mixed synthetic workload: loads, dependent loads and stores
        // with varying non-memory runs, so every plan-item shape occurs
        struct MixSource {
            state: u64,
        }
        impl crate::trace::TraceSource for MixSource {
            fn next_record(&mut self) -> TraceRecord {
                self.state = crate::types::mix64(self.state);
                let addr = (self.state >> 8) % (1 << 22) * 8;
                let nonmem = (self.state % 5) as u16;
                match self.state % 4 {
                    0 => TraceRecord::store(0x400, addr, nonmem),
                    1 => TraceRecord::dep_load(0x404, addr, nonmem),
                    _ => TraceRecord::load(0x408, addr, nonmem),
                }
            }
            fn name(&self) -> &str {
                "mix"
            }
        }

        // a synthetic hierarchy: latency is a pure function of the
        // access, with state (`last`) shared across calls to expose any
        // reordering of the call sequence
        fn model(calls: &mut Vec<(u64, u64)>, last: &mut u64, rec: &TraceRecord, t: u64) -> u64 {
            calls.push((rec.vaddr, t));
            *last = (*last)
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(rec.vaddr);
            t + 3 + (*last % 97)
        }

        let mk = || Core::new(Box::new(MixSource { state: 0xFEED }), 24, 4);
        let (mut fused, mut planned) = (mk(), mk());
        let mut plan = IssuePlan::default();
        let (mut fc, mut fl) = (Vec::new(), 0u64);
        let (mut pc, mut pl) = (Vec::new(), 0u64);
        for cycle in 0..5_000u64 {
            let rf = fused.retire(cycle);
            let rp = planned.retire(cycle);
            assert_eq!(rf, rp, "retire diverged at cycle {cycle}");
            let nf = fused.issue(cycle, |rec, t| model(&mut fc, &mut fl, rec, t));
            planned.plan_issue(&mut plan);
            let np = planned.apply_issue(cycle, &plan, |rec, t| model(&mut pc, &mut pl, rec, t));
            assert_eq!(nf, np, "issue count diverged at cycle {cycle}");
            assert_eq!(fc, pc, "mem_access sequence diverged at cycle {cycle}");
            assert_eq!(fused.fetched, planned.fetched);
            assert_eq!(fused.retired, planned.retired);
            assert_eq!(fused.rob_len, planned.rob_len);
            assert_eq!(fused.rob, planned.rob, "ROB RLE structure diverged");
            assert_eq!(fused.last_load_completion, planned.last_load_completion);
        }
        assert!(!fc.is_empty(), "test exercised the memory path");
    }

    #[test]
    fn head_completion_reports_front() {
        let mut c = core(1, 8);
        assert_eq!(c.head_completion(), None);
        c.issue(0, |_, t| t + 42);
        assert_eq!(c.head_completion(), Some(42));
    }
}
