//! DDR4-style DRAM timing model: channels, ranks, banks, row buffers.
//!
//! The model answers one question — *when does this 64-byte transfer
//! complete?* — while tracking bank busy times, open rows, and data-bus
//! occupancy so that bandwidth contention and row locality shape the
//! latency distribution, which is what the C-AMAT feedback and the
//! policy comparisons are sensitive to.

use crate::config::DramConfig;
use crate::types::LineAddr;

#[derive(Debug, Clone, Default)]
struct Bank {
    busy_until: u64,
    open_row: Option<u64>,
}

#[derive(Debug, Clone)]
struct Channel {
    bus_free: u64,
    banks: Vec<Bank>,
}

/// Absolute stage stamps of one DRAM access: `arrival <= start`
/// (bank-queue wait), `start..row_done` is array service (activate /
/// precharge / CAS), `row_done <= xfer_start` is data-bus wait, and
/// `xfer_start..done` is the burst transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Cycle the bank started servicing the request.
    pub start: u64,
    /// Cycle the array access (activate + CAS) finished.
    pub row_done: u64,
    /// Cycle the data-bus transfer began.
    pub xfer_start: u64,
    /// Cycle the transfer completed.
    pub done: u64,
}

/// Precomputed shift/mask address decomposition, available when every
/// geometry parameter (channels, ranks×banks, lines-per-row) is a
/// power of two — which the default DDR4 config is. `l % 2^k` is
/// `l & (2^k - 1)` and `l / 2^a / 2^b` is `l >> (a + b)`, so the pow2
/// path produces bit-identical (channel, bank, row) triples to the
/// div/mod fallback; it just does it without three 64-bit divisions on
/// every DRAM access.
#[derive(Debug, Clone, Copy)]
struct Pow2Map {
    ch_mask: u64,
    ch_shift: u32,
    bank_mask: u64,
    /// `ch_shift + log2(banks) + log2(lines_per_row)`: one shift takes
    /// the line address straight to the row number.
    row_shift: u32,
}

impl Pow2Map {
    fn new(cfg: &DramConfig) -> Option<Self> {
        let channels = cfg.channels as u64;
        let banks = (cfg.ranks * cfg.banks) as u64;
        let lpr = cfg.lines_per_row;
        if !(channels.is_power_of_two() && banks.is_power_of_two() && lpr.is_power_of_two()) {
            return None;
        }
        let ch_shift = channels.trailing_zeros();
        Some(Pow2Map {
            ch_mask: channels - 1,
            ch_shift,
            bank_mask: banks - 1,
            row_shift: ch_shift + banks.trailing_zeros() + lpr.trailing_zeros(),
        })
    }
}

/// The DRAM subsystem.
#[derive(Debug)]
pub struct Dram {
    cfg: DramConfig,
    /// Shift/mask mapping fast path (`None` for non-pow2 geometries).
    pow2: Option<Pow2Map>,
    channels: Vec<Channel>,
    /// Reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Row-buffer hits observed.
    pub row_hits: u64,
    /// Sum of read latencies (for the running `T_mem` estimate).
    latency_sum: u64,
    latency_count: u64,
    /// Monotone watermark: the largest `busy_until` ever assigned to any
    /// bank. Per-bank busy times only move forward, so this is exactly
    /// the current maximum — the backlog probe reads it in O(1) instead
    /// of scanning every bank, and skips the scan entirely once the
    /// subsystem has drained.
    max_bank_busy: u64,
    /// Total banks across all channels (denominator of the mean
    /// backlog, cached at construction).
    total_banks: u64,
}

impl Dram {
    /// Build a DRAM model from timing parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero channels or banks.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(
            cfg.channels > 0 && cfg.ranks > 0 && cfg.banks > 0,
            "degenerate DRAM"
        );
        let banks_per_channel = cfg.ranks * cfg.banks;
        Dram {
            pow2: Pow2Map::new(&cfg),
            channels: vec![
                Channel {
                    bus_free: 0,
                    banks: vec![Bank::default(); banks_per_channel]
                };
                cfg.channels
            ],
            reads: 0,
            writes: 0,
            row_hits: 0,
            latency_sum: 0,
            latency_count: 0,
            max_bank_busy: 0,
            total_banks: (cfg.channels * banks_per_channel) as u64,
            cfg,
        }
    }

    /// Map a line to (channel, bank, row).
    #[inline]
    fn map(&self, line: LineAddr) -> (usize, usize, u64) {
        let l = line.0;
        if let Some(m) = self.pow2 {
            let ch = (l & m.ch_mask) as usize;
            let bank = ((l >> m.ch_shift) & m.bank_mask) as usize;
            let row = l >> m.row_shift;
            return (ch, bank, row);
        }
        let ch = (l % self.cfg.channels as u64) as usize;
        let banks = (self.cfg.ranks * self.cfg.banks) as u64;
        let bank = ((l / self.cfg.channels as u64) % banks) as usize;
        let row = l / self.cfg.channels as u64 / banks / self.cfg.lines_per_row;
        (ch, bank, row)
    }

    /// Service an access arriving at `arrival`; returns the completion
    /// cycle of the 64B transfer.
    pub fn access(&mut self, line: LineAddr, arrival: u64, is_write: bool) -> u64 {
        self.access_timed(line, arrival, is_write).done
    }

    /// Like [`Dram::access`], but returns every absolute stage stamp of
    /// the service — the latency-attribution probe.
    pub fn access_timed(&mut self, line: LineAddr, arrival: u64, is_write: bool) -> DramTiming {
        let (ch_i, bank_i, row) = self.map(line);
        let ch = &mut self.channels[ch_i];
        let bank = &mut ch.banks[bank_i];

        let start = arrival.max(bank.busy_until);
        let array_latency = match bank.open_row {
            Some(open) if open == row => {
                self.row_hits += 1;
                self.cfg.t_cas
            }
            Some(_) => self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas,
            None => self.cfg.t_rcd + self.cfg.t_cas,
        };
        bank.open_row = Some(row);

        let row_done = start + array_latency;
        let xfer_start = row_done.max(ch.bus_free);
        let done = xfer_start + self.cfg.burst;
        ch.bus_free = done;
        bank.busy_until = done;
        self.max_bank_busy = self.max_bank_busy.max(done);

        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
            self.latency_sum += done - arrival;
            self.latency_count += 1;
        }
        DramTiming {
            start,
            row_done,
            xfer_start,
            done,
        }
    }

    /// The unloaded (queue-free) average access latency: row activation
    /// plus column access plus transfer. This is the `T_mem` constant of
    /// the paper's LLC-obstruction test — a characteristic of the memory
    /// technology, not of the current load.
    pub fn unloaded_latency(&self) -> f64 {
        (self.cfg.t_rcd + self.cfg.t_cas + self.cfg.burst) as f64
    }

    /// How long a request to `line` arriving at `t` would wait before
    /// its bank and bus are free (a memory-controller queue-depth probe,
    /// used to shed low-priority prefetches under load).
    pub fn queue_delay(&self, line: LineAddr, t: u64) -> u64 {
        let (ch_i, bank_i, _) = self.map(line);
        let ch = &self.channels[ch_i];
        ch.banks[bank_i]
            .busy_until
            .max(ch.bus_free)
            .saturating_sub(t)
    }

    /// Mean and deepest bank backlog (cycles of already-queued work per
    /// bank) as seen at cycle `now` — the epoch telemetry's DRAM
    /// queue-occupancy probe.
    ///
    /// Incremental: the deepest backlog falls straight out of the
    /// monotone `max_bank_busy` watermark (per-bank busy times never
    /// move backwards, and the wait term `now` is common to all banks),
    /// and a fully drained subsystem answers without touching a single
    /// bank. Only channels whose data bus is still backlogged are
    /// scanned for the mean — a channel's `bus_free` is the maximum
    /// `busy_until` of its banks, so a drained bus proves every bank
    /// beneath it contributes zero.
    pub fn bank_backlog(&self, now: u64) -> (f64, u64) {
        let max = self.max_bank_busy.saturating_sub(now);
        if max == 0 {
            return (0.0, 0);
        }
        let mut sum = 0u64;
        for ch in &self.channels {
            if ch.bus_free <= now {
                continue;
            }
            for b in &ch.banks {
                sum += b.busy_until.saturating_sub(now);
            }
        }
        (sum as f64 / self.total_banks as f64, max)
    }

    /// Running average read latency (cycles); this is the paper's `T_mem`
    /// used by the LLC-obstruction test. Returns a sensible default
    /// before any read has been observed.
    pub fn avg_read_latency(&self) -> f64 {
        if self.latency_count == 0 {
            (self.cfg.t_rcd + self.cfg.t_cas + self.cfg.burst) as f64
        } else {
            self.latency_sum as f64 / self.latency_count as f64
        }
    }

    /// Row-buffer hit rate among all accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    #[test]
    fn first_access_pays_rcd_cas_burst() {
        let mut d = dram();
        let done = d.access(LineAddr(0), 1000, false);
        assert_eq!(done, 1000 + 50 + 50 + 10);
    }

    #[test]
    fn row_hit_is_faster() {
        let mut d = dram();
        let t1 = d.access(LineAddr(0), 0, false);
        // same channel/bank/row: stride channels*banks stays in bank 0 and,
        // while below lines_per_row, in the same row
        let banks = (d.cfg.ranks * d.cfg.banks) as u64;
        let next_in_row = LineAddr(d.cfg.channels as u64 * banks);
        let t2 = d.access(next_in_row, t1 + 1000, false);
        assert_eq!(t2 - (t1 + 1000), d.cfg.t_cas + d.cfg.burst);
        assert_eq!(d.row_hits, 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut d = dram();
        let lines_per_row = d.cfg.lines_per_row;
        let banks = (d.cfg.ranks * d.cfg.banks) as u64;
        let t1 = d.access(LineAddr(0), 0, false);
        // a line in the same bank but a different row
        let conflict = LineAddr(d.cfg.channels as u64 * banks * lines_per_row);
        let t2 = d.access(conflict, t1 + 1000, false);
        assert_eq!(
            t2 - (t1 + 1000),
            d.cfg.t_rp + d.cfg.t_rcd + d.cfg.t_cas + d.cfg.burst
        );
    }

    #[test]
    fn bank_contention_serializes() {
        let mut d = dram();
        let t1 = d.access(LineAddr(0), 0, false);
        // same bank, same arrival: second must wait for the first
        let banks = (d.cfg.ranks * d.cfg.banks) as u64;
        let same_bank_other_row = LineAddr(d.cfg.channels as u64 * banks * d.cfg.lines_per_row);
        let t2 = d.access(same_bank_other_row, 0, false);
        assert!(t2 > t1);
    }

    #[test]
    fn different_channels_overlap() {
        let mut d = dram();
        let t1 = d.access(LineAddr(0), 0, false);
        let t2 = d.access(LineAddr(1), 0, false); // different channel
                                                  // both see an idle subsystem, so completion times are equal
        assert_eq!(t1, t2);
    }

    #[test]
    fn avg_latency_tracks_reads_only() {
        let mut d = dram();
        let before = d.avg_read_latency();
        assert!(before > 0.0);
        d.access(LineAddr(0), 0, true);
        assert_eq!(d.writes, 1);
        // writes do not perturb the read-latency estimate
        assert_eq!(d.avg_read_latency(), before);
        d.access(LineAddr(3), 0, false);
        assert!(d.avg_read_latency() > 0.0);
        assert_eq!(d.reads, 1);
    }

    #[test]
    fn timed_access_stamps_are_ordered_and_match_access() {
        let mut d = dram();
        let t = d.access_timed(LineAddr(0), 1000, false);
        assert_eq!(t.start, 1000, "idle bank starts immediately");
        assert_eq!(t.row_done - t.start, d.cfg.t_rcd + d.cfg.t_cas);
        assert_eq!(t.xfer_start, t.row_done, "idle bus: no wait");
        assert_eq!(t.done - t.xfer_start, d.cfg.burst);
        // contended follow-up on the same bank queues before starting
        let t2 = d.access_timed(LineAddr(0), 1000, false);
        assert!(t2.start >= t.done);
        assert!(t2.start <= t2.row_done && t2.row_done <= t2.xfer_start);
    }

    #[test]
    fn pow2_map_matches_divmod_fallback() {
        let cfg = DramConfig::default();
        let fast = Dram::new(cfg);
        assert!(fast.pow2.is_some(), "default geometry should be pow2");
        // a Dram with the fallback forced, same geometry
        let mut slow = Dram::new(cfg);
        slow.pow2 = None;
        let mut rng = crate::rng::SmallRng::seed_from_u64(0xD2A7);
        for _ in 0..4096 {
            let l = LineAddr(rng.next_u64() >> 8);
            assert_eq!(fast.map(l), slow.map(l), "line {l:?}");
        }
    }

    #[test]
    fn non_pow2_geometry_uses_fallback() {
        let cfg = DramConfig {
            channels: 3,
            ..DramConfig::default()
        };
        let d = Dram::new(cfg);
        assert!(d.pow2.is_none());
        assert_eq!(d.map(LineAddr(7)).0, 1); // 7 % 3
    }

    #[test]
    fn bus_contention_on_same_channel() {
        let mut d = dram();
        // two different banks on channel 0 arriving together: the data
        // bus serializes the transfers
        let banks = (d.cfg.ranks * d.cfg.banks) as u64;
        assert!(banks >= 2);
        let a = LineAddr(0);
        let b = LineAddr(d.cfg.channels as u64); // next bank, channel 0
        let t1 = d.access(a, 0, false);
        let t2 = d.access(b, 0, false);
        assert!(t2 >= t1 + d.cfg.burst || t1 >= t2 + d.cfg.burst);
    }
}
