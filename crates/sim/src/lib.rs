//! # chrome-sim — simulation substrate for the CHROME reproduction
//!
//! A cycle-approximate, trace-driven, multi-core cache-hierarchy simulator
//! in the spirit of ChampSim, built as the evaluation substrate for the
//! CHROME cache-management framework (HPCA 2024).
//!
//! The simulator models:
//!
//! * per-core trace-driven front ends with a reorder-buffer-limited
//!   out-of-order timing model ([`core_model`]),
//! * private L1D and L2 caches with LRU replacement and MSHRs ([`cache`]),
//! * a shared last-level cache with a pluggable management policy
//!   ([`llc`], [`policy::LlcPolicy`]),
//! * a DDR4-style DRAM timing model with channels, ranks, banks and a
//!   row buffer ([`dram`]),
//! * multi-level hardware prefetchers ([`prefetch`]),
//! * C-AMAT (Concurrent Average Memory Access Time) instrumentation and
//!   the LLC-obstruction detector that CHROME and CARE consume
//!   ([`camat`]).
//!
//! # Example
//!
//! ```
//! use chrome_sim::{System, SimConfig, trace::StridedSource};
//!
//! let cfg = SimConfig::with_cores(1);
//! let traces = vec![Box::new(StridedSource::new(0x1000_0000, 64, 1 << 20, 3))
//!     as Box<dyn chrome_sim::trace::TraceSource>];
//! let mut sys = System::new(cfg, traces);
//! let results = sys.run(10_000, 1_000);
//! assert!(results.per_core[0].ipc() > 0.0);
//! ```

pub mod cache;
pub mod camat;
pub mod config;
pub mod core_model;
pub mod dram;
pub mod llc;
pub mod mmu;
pub mod mshr;
pub mod overhead;
pub mod policy;
pub mod prefetch;
pub mod probe;
pub mod rng;
pub mod stats;
pub mod system;
pub mod trace;
pub mod types;

pub use config::{PrefetcherConfig, PrefetcherKind, SimConfig};
pub use policy::{AccessInfo, CandidateLine, FillDecision, LlcPolicy, SystemFeedback};
pub use stats::{CacheStats, CoreStats, SimResults};
pub use system::{FunctionalProfile, Kernel, SampledInterval, System};
pub use types::{AccessKind, LineAddr, TraceRecord};
