//! The shared last-level cache, managed by a pluggable [`LlcPolicy`].

use crate::config::CacheConfig;
use crate::mshr::MshrFile;
use crate::policy::{AccessInfo, CandidateLine, FillDecision, PolicySlot, SystemFeedback};
use crate::stats::{CacheStats, EvictedUnusedTracker};
use crate::types::LineAddr;
use chrome_telemetry::{EventKind, TelemetrySink};

/// Result of an LLC access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcOutcome {
    /// The line was resident.
    Hit {
        /// Cycle the block's data arrives (0 for long-settled blocks);
        /// a hit on an in-flight fill waits for this. Returned inline so
        /// the hit path costs exactly one set scan.
        ready: u64,
    },
    /// The line missed and was (or will be) fetched from DRAM.
    Miss {
        /// True if the policy chose to bypass the LLC for this block.
        bypassed: bool,
        /// A dirty victim that must be written back to DRAM.
        writeback: Option<LineAddr>,
    },
}

/// Packed residency key: `(line << 1) | 1`, with `0` meaning "invalid
/// way". Folding the valid bit into the tag halves the loads per set
/// scan (one `u64` array instead of a tag array plus a valid array).
/// Line addresses are byte addresses shifted right by the line-offset
/// bits, so the top bit is always clear and the shift cannot overflow.
#[inline]
fn key_of(line: LineAddr) -> u64 {
    debug_assert!(line.0 < 1 << 63, "line address overflows packed key");
    (line.0 << 1) | 1
}

/// The shared LLC: geometry, per-block state, policy, and statistics.
pub struct SharedLlc {
    sets: usize,
    /// `sets - 1`; power-of-two set count asserted at construction so
    /// set indexing is a bitmask, not a 64-bit modulo.
    set_mask: u64,
    ways: usize,
    /// Access latency in cycles.
    pub latency: u64,
    /// Packed tag+valid per way; see [`key_of`].
    keys: Vec<u64>,
    dirty: Vec<bool>,
    prefetch: Vec<bool>,
    hit_since_fill: Vec<bool>,
    ready_at: Vec<u64>,
    /// Block index of the most recent fill, so the common
    /// fill-then-`set_ready` sequence skips the second set scan.
    last_fill: usize,
    /// Reused victim-candidate buffer: evictions do not allocate.
    victim_scratch: Vec<CandidateLine>,
    /// The management policy (replacement + bypass decisions). The
    /// built-in LRU baseline is statically dispatched; see
    /// [`PolicySlot`].
    pub policy: PolicySlot,
    /// Outstanding-miss tracking.
    pub mshr: MshrFile,
    /// Counters.
    pub stats: CacheStats,
    /// Fig. 2 tracker (disabled by default; see
    /// [`SharedLlc::enable_unused_tracking`]).
    pub unused_tracker: EvictedUnusedTracker,
    /// Fig. 9 tracker: outcome of bypassed lines (disabled by default).
    pub bypass_tracker: EvictedUnusedTracker,
    /// Decision-event sink (no-op unless telemetry is attached).
    sink: TelemetrySink,
}

impl std::fmt::Debug for SharedLlc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedLlc")
            .field("sets", &self.sets)
            .field("ways", &self.ways)
            .field("policy", &self.policy.name())
            .finish_non_exhaustive()
    }
}

impl SharedLlc {
    /// Build the LLC with the given geometry and policy. Calls
    /// [`LlcPolicy::initialize`].
    ///
    /// # Panics
    ///
    /// Panics on a degenerate geometry (zero sets or ways) or a
    /// non-power-of-two set count (bitmask indexing).
    pub fn new(cfg: &CacheConfig, cores: usize, policy: impl Into<PolicySlot>) -> Self {
        let mut policy = policy.into();
        let sets = cfg.sets();
        assert!(sets > 0 && cfg.ways > 0, "degenerate LLC geometry");
        assert!(
            sets.is_power_of_two(),
            "LLC set count must be a power of two (got {sets})"
        );
        policy.initialize(sets, cfg.ways, cores);
        let n = sets * cfg.ways;
        SharedLlc {
            sets,
            set_mask: sets as u64 - 1,
            ways: cfg.ways,
            latency: cfg.latency,
            keys: vec![0; n],
            dirty: vec![false; n],
            prefetch: vec![false; n],
            hit_since_fill: vec![false; n],
            ready_at: vec![0; n],
            last_fill: usize::MAX,
            victim_scratch: Vec::with_capacity(cfg.ways),
            policy,
            mshr: MshrFile::new(cfg.mshr_entries),
            stats: CacheStats::default(),
            unused_tracker: EvictedUnusedTracker::new(false),
            bypass_tracker: EvictedUnusedTracker::new(false),
            sink: TelemetrySink::noop(),
        }
    }

    /// Attach a telemetry sink for decision events, forwarding it to the
    /// management policy as well.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.policy.set_telemetry(sink.clone());
        self.sink = sink;
    }

    /// Enable the (memory-hungry) Fig. 2 / Fig. 9 outcome tracking.
    pub fn enable_unused_tracking(&mut self) {
        self.unused_tracker = EvictedUnusedTracker::new(true);
        self.bypass_tracker = EvictedUnusedTracker::new(true);
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Set index of a line.
    #[inline]
    pub fn set_of(&self, line: LineAddr) -> usize {
        (line.0 & self.set_mask) as usize
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Look up `line` without side effects.
    pub fn probe(&self, line: LineAddr) -> Option<usize> {
        let base = self.set_of(line) * self.ways;
        crate::probe::find_key(&self.keys[base..base + self.ways], key_of(line))
    }

    /// Perform a full access: policy callbacks, statistics, fills and
    /// evictions. Returns what happened; on a non-bypassed miss the block
    /// has been inserted by the time this returns.
    pub fn access(&mut self, info: &AccessInfo, feedback: &SystemFeedback) -> LlcOutcome {
        let set = self.set_of(info.line);
        self.unused_tracker.on_access(info.line);
        if !info.is_prefetch {
            self.bypass_tracker.on_access(info.line);
        }
        if info.is_prefetch {
            self.stats.prefetch_accesses += 1;
        } else {
            self.stats.demand_accesses += 1;
        }
        if let Some(way) = self.probe(info.line) {
            let i = self.idx(set, way);
            self.hit_since_fill[i] = true;
            if info.is_write {
                self.dirty[i] = true;
            }
            if !info.is_prefetch && self.prefetch[i] {
                self.prefetch[i] = false;
                self.stats.prefetch_useful += 1;
            }
            self.policy.on_hit(set, way, info, feedback);
            return LlcOutcome::Hit {
                ready: self.ready_at[i],
            };
        }
        // Miss path.
        if info.is_prefetch {
            self.stats.prefetch_misses += 1;
        } else {
            self.stats.demand_misses += 1;
        }
        let decision = self.policy.on_miss(set, info, feedback);
        if decision == FillDecision::Bypass {
            self.stats.bypasses += 1;
            self.bypass_tracker
                .on_unused_eviction(info.line, info.is_prefetch);
            if cfg!(feature = "telemetry") {
                self.sink.emit(
                    info.cycle,
                    info.core as u32,
                    EventKind::BypassTaken {
                        line: info.line.0,
                        pc: info.pc,
                    },
                );
            }
            return LlcOutcome::Miss {
                bypassed: true,
                writeback: None,
            };
        }
        let writeback = self.fill_at(set, info, feedback);
        LlcOutcome::Miss {
            bypassed: false,
            writeback,
        }
    }

    /// Insert `info.line` into `set`, evicting a victim if needed.
    /// Returns a dirty victim's line address for writeback.
    fn fill_at(
        &mut self,
        set: usize,
        info: &AccessInfo,
        feedback: &SystemFeedback,
    ) -> Option<LineAddr> {
        let base = set * self.ways;
        let way = match crate::probe::find_key(&self.keys[base..base + self.ways], 0) {
            Some(w) => w,
            None => {
                let mut candidates = std::mem::take(&mut self.victim_scratch);
                candidates.clear();
                candidates.extend((0..self.ways).map(|w| {
                    let i = base + w;
                    CandidateLine {
                        way: w,
                        line: LineAddr(self.keys[i] >> 1),
                        prefetch: self.prefetch[i],
                        dirty: self.dirty[i],
                    }
                }));
                let w = self.policy.choose_victim(set, &candidates, info);
                self.victim_scratch = candidates;
                assert!(w < self.ways, "policy returned out-of-range victim way");
                if cfg!(feature = "telemetry") {
                    self.sink.emit(
                        info.cycle,
                        info.core as u32,
                        EventKind::VictimChosen {
                            set: set as u32,
                            way: w as u32,
                            line: self.keys[base + w] >> 1,
                        },
                    );
                }
                w
            }
        };
        let i = base + way;
        let mut writeback = None;
        if self.keys[i] != 0 {
            let victim = LineAddr(self.keys[i] >> 1);
            self.stats.evictions += 1;
            if !self.hit_since_fill[i] {
                self.stats.evictions_unused += 1;
                if self.prefetch[i] {
                    self.stats.evictions_unused_prefetch += 1;
                }
                self.unused_tracker
                    .on_unused_eviction(victim, self.prefetch[i]);
            }
            if self.dirty[i] {
                self.stats.writebacks += 1;
                writeback = Some(victim);
            }
            self.policy
                .on_evict(set, way, victim, self.hit_since_fill[i]);
        }
        self.keys[i] = key_of(info.line);
        self.last_fill = i;
        self.dirty[i] = info.is_write;
        self.prefetch[i] = info.is_prefetch;
        self.hit_since_fill[i] = false;
        if info.is_prefetch {
            self.stats.prefetch_fills += 1;
        }
        self.policy.on_fill(set, way, info, feedback);
        writeback
    }

    /// Record when the data for a (just-filled) resident line arrives.
    pub fn set_ready(&mut self, line: LineAddr, ready: u64) {
        // The miss path always fills and then records readiness, so the
        // last-fill slot almost always short-circuits the set scan.
        if let Some(&k) = self.keys.get(self.last_fill) {
            if k == key_of(line) {
                self.ready_at[self.last_fill] = ready;
                return;
            }
        }
        if let Some(way) = self.probe(line) {
            let set = self.set_of(line);
            let i = self.idx(set, way);
            self.ready_at[i] = ready;
        }
    }

    /// Arrival cycle of a resident line's data (0 for long-settled
    /// blocks), or `None` if not resident.
    pub fn ready_of(&self, line: LineAddr) -> Option<u64> {
        self.probe(line).map(|way| {
            let set = self.set_of(line);
            self.ready_at[set * self.ways + way]
        })
    }

    /// A writeback arriving from an upper level: mark dirty if resident,
    /// otherwise report `false` so the caller forwards it to DRAM.
    pub fn writeback(&mut self, line: LineAddr) -> bool {
        if let Some(way) = self.probe(line) {
            let set = self.set_of(line);
            let i = self.idx(set, way);
            self.dirty[i] = true;
            true
        } else {
            false
        }
    }

    /// Number of valid blocks (diagnostic).
    pub fn occupancy(&self) -> usize {
        self.keys.iter().filter(|&&k| k != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::tests_support::{CountingPolicy, TrueLru};

    fn info(line: u64, prefetch: bool) -> AccessInfo {
        AccessInfo {
            core: 0,
            pc: 0x400,
            line: LineAddr(line),
            is_prefetch: prefetch,
            is_write: false,
            cycle: 0,
        }
    }

    fn llc(sets: usize, ways: usize) -> SharedLlc {
        SharedLlc::new(
            &CacheConfig {
                capacity: sets * ways * 64,
                ways,
                latency: 40,
                mshr_entries: 8,
            },
            1,
            Box::new(TrueLru::new()),
        )
    }

    #[test]
    fn miss_then_hit() {
        let fb = SystemFeedback::new(1);
        let mut c = llc(4, 2);
        assert!(matches!(
            c.access(&info(8, false), &fb),
            LlcOutcome::Miss { .. }
        ));
        assert_eq!(c.access(&info(8, false), &fb), LlcOutcome::Hit { ready: 0 });
        assert_eq!(c.stats.demand_accesses, 2);
        assert_eq!(c.stats.demand_misses, 1);
    }

    #[test]
    fn victim_is_lru() {
        let fb = SystemFeedback::new(1);
        let mut c = llc(4, 2);
        c.access(&info(0, false), &fb);
        c.access(&info(4, false), &fb);
        c.access(&info(0, false), &fb); // 0 becomes MRU
        c.access(&info(8, false), &fb); // evicts 4
        assert!(c.probe(LineAddr(0)).is_some());
        assert!(c.probe(LineAddr(4)).is_none());
        assert!(c.probe(LineAddr(8)).is_some());
    }

    #[test]
    fn eviction_unused_counted() {
        let fb = SystemFeedback::new(1);
        let mut c = llc(1, 1);
        c.access(&info(0, true), &fb); // prefetch fill
        c.access(&info(1, false), &fb); // evicts 0 (never hit)
        assert_eq!(c.stats.evictions_unused, 1);
        assert_eq!(c.stats.evictions_unused_prefetch, 1);
    }

    #[test]
    fn demand_hit_on_prefetched_block_counts_useful() {
        let fb = SystemFeedback::new(1);
        let mut c = llc(4, 2);
        c.access(&info(0, true), &fb);
        assert_eq!(c.stats.prefetch_fills, 1);
        c.access(&info(0, false), &fb);
        assert_eq!(c.stats.prefetch_useful, 1);
    }

    #[test]
    fn bypass_policy_never_fills() {
        let fb = SystemFeedback::new(1);
        let mut c = SharedLlc::new(
            &CacheConfig {
                capacity: 4 * 2 * 64,
                ways: 2,
                latency: 40,
                mshr_entries: 8,
            },
            1,
            Box::new(CountingPolicy::always_bypass()),
        );
        let out = c.access(&info(0, false), &fb);
        assert_eq!(
            out,
            LlcOutcome::Miss {
                bypassed: true,
                writeback: None
            }
        );
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.stats.bypasses, 1);
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let fb = SystemFeedback::new(1);
        let mut c = llc(1, 1);
        let w = AccessInfo {
            is_write: true,
            ..info(0, false)
        };
        c.access(&w, &fb);
        match c.access(&info(1, false), &fb) {
            LlcOutcome::Miss {
                writeback: Some(l), ..
            } => assert_eq!(l, LineAddr(0)),
            other => panic!("expected dirty writeback, got {other:?}"),
        }
    }

    #[test]
    fn upper_level_writeback_marks_dirty() {
        let fb = SystemFeedback::new(1);
        let mut c = llc(1, 1);
        c.access(&info(0, false), &fb);
        assert!(c.writeback(LineAddr(0)));
        assert!(!c.writeback(LineAddr(99)));
        match c.access(&info(1, false), &fb) {
            LlcOutcome::Miss {
                writeback: Some(l), ..
            } => assert_eq!(l, LineAddr(0)),
            other => panic!("expected writeback, got {other:?}"),
        }
    }

    #[test]
    fn policy_callbacks_fire() {
        let fb = SystemFeedback::new(1);
        let mut c = SharedLlc::new(
            &CacheConfig {
                capacity: 64,
                ways: 1,
                latency: 40,
                mshr_entries: 8,
            },
            1,
            Box::new(CountingPolicy::insert_all()),
        );
        c.access(&info(0, false), &fb); // miss + fill
        c.access(&info(0, false), &fb); // hit
        c.access(&info(1, false), &fb); // miss, evict, fill
        let counts = match c.policy.name() {
            n if n.starts_with("counting") => n.to_string(),
            n => panic!("unexpected policy {n}"),
        };
        // counting policy encodes its counters in its name
        assert!(counts.contains("m2"), "{counts}");
        assert!(counts.contains("h1"), "{counts}");
        assert!(counts.contains("f2"), "{counts}");
        assert!(counts.contains("e1"), "{counts}");
    }
}
