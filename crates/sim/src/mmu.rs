//! A minimal per-core virtual-to-physical page mapper.
//!
//! Traces emit virtual addresses. The MMU gives each `(core, virtual
//! page)` pair a distinct physical page, so that cores running identical
//! traces (homogeneous mixes) do not alias in the shared LLC — matching
//! the multi-programmed methodology of the paper. Mapping is a
//! deterministic hash scattered over the configured physical memory,
//! with linear probing to avoid collisions.

use std::collections::HashMap;

use crate::types::{mix64, LineAddr, PAGE_SHIFT};

/// Per-system page mapper.
#[derive(Debug)]
pub struct Mmu {
    map: HashMap<(u32, u64), u64>,
    used: HashMap<u64, ()>,
    phys_pages: u64,
}

impl Mmu {
    /// An MMU managing `phys_bytes` of physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `phys_bytes` is smaller than one page.
    pub fn new(phys_bytes: u64) -> Self {
        let phys_pages = phys_bytes >> PAGE_SHIFT;
        assert!(phys_pages > 0, "physical memory too small");
        Mmu {
            map: HashMap::new(),
            used: HashMap::new(),
            phys_pages,
        }
    }

    /// Default MMU: 8 GB, per the paper's Table V.
    pub fn default_8gb() -> Self {
        Self::new(8 << 30)
    }

    /// Translate a virtual byte address from `core` to a physical line
    /// address.
    pub fn translate(&mut self, core: usize, vaddr: u64) -> LineAddr {
        let vpage = vaddr >> PAGE_SHIFT;
        let key = (core as u32, vpage);
        let ppage = match self.map.get(&key) {
            Some(&p) => p,
            None => {
                let mut candidate = mix64(vpage ^ mix64(core as u64 ^ 0xC0FE)) % self.phys_pages;
                while self.used.contains_key(&candidate) {
                    candidate = (candidate + 1) % self.phys_pages;
                }
                self.used.insert(candidate, ());
                self.map.insert(key, candidate);
                candidate
            }
        };
        let paddr = (ppage << PAGE_SHIFT) | (vaddr & ((1 << PAGE_SHIFT) - 1));
        LineAddr::from_byte_addr(paddr)
    }

    /// Number of distinct pages mapped so far.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PAGE_SIZE;

    #[test]
    fn translation_is_stable() {
        let mut m = Mmu::default_8gb();
        let a = m.translate(0, 0x1000);
        let b = m.translate(0, 0x1000);
        assert_eq!(a, b);
        assert_eq!(m.mapped_pages(), 1);
    }

    #[test]
    fn same_page_offsets_stay_together() {
        let mut m = Mmu::default_8gb();
        let a = m.translate(0, 0x1000);
        let b = m.translate(0, 0x1040);
        assert_eq!(b.0, a.0 + 1);
        assert_eq!(a.page_number(), b.page_number());
    }

    #[test]
    fn cores_get_distinct_physical_pages() {
        let mut m = Mmu::default_8gb();
        let a = m.translate(0, 0x1000);
        let b = m.translate(1, 0x1000);
        assert_ne!(a.page_number(), b.page_number());
    }

    #[test]
    fn no_two_vpages_share_a_ppage() {
        let mut m = Mmu::new(1 << 20); // tiny: 256 pages, forces probing
        let mut seen = std::collections::HashSet::new();
        for v in 0..200u64 {
            let line = m.translate(0, v * PAGE_SIZE);
            assert!(seen.insert(line.page_number()), "collision at vpage {v}");
        }
    }

    #[test]
    fn offsets_preserved() {
        let mut m = Mmu::default_8gb();
        let line = m.translate(0, 0x1234_5678);
        // offset within page: 0x678 -> line offset 0x678 >> 6 = 0x19
        assert_eq!(line.0 & 0x3F, (0x5678 & 0xFFF) >> 6);
    }
}
