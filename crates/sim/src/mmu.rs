//! A minimal per-core virtual-to-physical page mapper.
//!
//! Traces emit virtual addresses. The MMU gives each `(core, virtual
//! page)` pair a distinct physical page, so that cores running identical
//! traces (homogeneous mixes) do not alias in the shared LLC — matching
//! the multi-programmed methodology of the paper. Mapping is a
//! deterministic hash scattered over the configured physical memory,
//! with linear probing to avoid collisions.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::types::{mix64, LineAddr, PAGE_SHIFT};

/// Deterministic multiply-rotate hasher (Fx-style). The MMU probes its
/// page map once per memory access, so the default SipHash showed up in
/// simulator profiles; page-number keys need scatter, not DoS
/// resistance.
#[derive(Debug, Default, Clone)]
pub struct PageHasher {
    state: u64,
}

impl PageHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(0x517C_C1B7_2722_0A95);
    }
}

impl Hasher for PageHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

type PageMapHasher = BuildHasherDefault<PageHasher>;

/// Direct-mapped translation-cache size (entries, power of two). The
/// cache fronts the page map: page-local access runs hit the same entry
/// repeatedly, turning the per-access hash-map probe into one indexed
/// load. It is a pure memo — translations are identical with it off.
/// Sized for the multi-programmed Zipf mixes: 4 cores touching a few
/// thousand hot pages each thrashed a 512-entry array, and at 16 bytes
/// a slot the memo is still small enough to be cache-resident.
const TLB_ENTRIES: usize = 8192;

/// Per-system page mapper.
#[derive(Debug)]
pub struct Mmu {
    map: HashMap<(u32, u64), u64, PageMapHasher>,
    used: HashMap<u64, (), PageMapHasher>,
    phys_pages: u64,
    /// `(core, vpage)` tag per slot; `u32::MAX` core marks empty.
    tlb_tags: Vec<(u32, u64)>,
    /// Cached physical page per slot.
    tlb_ppage: Vec<u64>,
}

impl Mmu {
    /// An MMU managing `phys_bytes` of physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `phys_bytes` is smaller than one page.
    pub fn new(phys_bytes: u64) -> Self {
        let phys_pages = phys_bytes >> PAGE_SHIFT;
        assert!(phys_pages > 0, "physical memory too small");
        // Page maps grow monotonically as the workload touches new
        // pages; pre-sizing them past the working set of the standard
        // mixes keeps rehash-and-move cycles out of the measured
        // region (they showed up as libc memcpy in simulator
        // profiles). ~1.5 MB up front for the pair.
        let prealloc = 32_768.min(phys_pages as usize);
        Mmu {
            map: HashMap::with_capacity_and_hasher(prealloc, PageMapHasher::default()),
            used: HashMap::with_capacity_and_hasher(prealloc, PageMapHasher::default()),
            phys_pages,
            tlb_tags: vec![(u32::MAX, 0); TLB_ENTRIES],
            tlb_ppage: vec![0; TLB_ENTRIES],
        }
    }

    /// Default MMU: 8 GB, per the paper's Table V.
    pub fn default_8gb() -> Self {
        Self::new(8 << 30)
    }

    /// Translate a virtual byte address from `core` to a physical line
    /// address.
    #[inline]
    pub fn translate(&mut self, core: usize, vaddr: u64) -> LineAddr {
        let vpage = vaddr >> PAGE_SHIFT;
        let key = (core as u32, vpage);
        let slot = (vpage as usize ^ core.wrapping_mul(0x9E37)) & (TLB_ENTRIES - 1);
        let ppage = if self.tlb_tags[slot] == key {
            self.tlb_ppage[slot]
        } else {
            self.translate_slow(key, slot)
        };
        let paddr = (ppage << PAGE_SHIFT) | (vaddr & ((1 << PAGE_SHIFT) - 1));
        LineAddr::from_byte_addr(paddr)
    }

    /// TLB-miss path: consult (or grow) the page map and refill the
    /// missed slot. Out of line so the per-access fast path inlines to a
    /// tag compare and an indexed load.
    #[cold]
    fn translate_slow(&mut self, key: (u32, u64), slot: usize) -> u64 {
        let (core, vpage) = key;
        let p = match self.map.get(&key) {
            Some(&p) => p,
            None => {
                let mut candidate = mix64(vpage ^ mix64(core as u64 ^ 0xC0FE)) % self.phys_pages;
                while self.used.contains_key(&candidate) {
                    candidate = (candidate + 1) % self.phys_pages;
                }
                self.used.insert(candidate, ());
                self.map.insert(key, candidate);
                candidate
            }
        };
        self.tlb_tags[slot] = key;
        self.tlb_ppage[slot] = p;
        p
    }

    /// Number of distinct pages mapped so far.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PAGE_SIZE;

    #[test]
    fn translation_is_stable() {
        let mut m = Mmu::default_8gb();
        let a = m.translate(0, 0x1000);
        let b = m.translate(0, 0x1000);
        assert_eq!(a, b);
        assert_eq!(m.mapped_pages(), 1);
    }

    #[test]
    fn same_page_offsets_stay_together() {
        let mut m = Mmu::default_8gb();
        let a = m.translate(0, 0x1000);
        let b = m.translate(0, 0x1040);
        assert_eq!(b.0, a.0 + 1);
        assert_eq!(a.page_number(), b.page_number());
    }

    #[test]
    fn cores_get_distinct_physical_pages() {
        let mut m = Mmu::default_8gb();
        let a = m.translate(0, 0x1000);
        let b = m.translate(1, 0x1000);
        assert_ne!(a.page_number(), b.page_number());
    }

    #[test]
    fn no_two_vpages_share_a_ppage() {
        let mut m = Mmu::new(1 << 20); // tiny: 256 pages, forces probing
        let mut seen = std::collections::HashSet::new();
        for v in 0..200u64 {
            let line = m.translate(0, v * PAGE_SIZE);
            assert!(seen.insert(line.page_number()), "collision at vpage {v}");
        }
    }

    #[test]
    fn offsets_preserved() {
        let mut m = Mmu::default_8gb();
        let line = m.translate(0, 0x1234_5678);
        // offset within page: 0x678 -> line offset 0x678 >> 6 = 0x19
        assert_eq!(line.0 & 0x3F, (0x5678 & 0xFFF) >> 6);
    }
}
