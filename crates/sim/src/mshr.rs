//! Miss-status holding registers: bound outstanding misses and merge
//! same-line requests.

use crate::types::LineAddr;

/// A small MSHR file. Entries are `(line, ready_cycle)`; completed entries
/// are reclaimed lazily. Linear scans are intentional — real MSHR files
/// hold 16–64 entries, so a `Vec` beats a hash map here.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<(LineAddr, u64)>,
    capacity: usize,
}

/// Outcome of attempting to allocate an MSHR entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A miss to this line is already outstanding; the request completes
    /// when the existing one does.
    Merged { ready: u64 },
    /// An entry is available; the caller should issue the miss and then
    /// call [`MshrFile::register`].
    Available,
    /// The file is full; the request cannot issue before `free_at`.
    Full { free_at: u64 },
}

impl MshrFile {
    /// Create a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Drop entries whose miss has completed by `now`.
    fn reclaim(&mut self, now: u64) {
        self.entries.retain(|&(_, ready)| ready > now);
    }

    /// Check whether a miss to `line` at cycle `now` can be issued.
    pub fn lookup(&mut self, line: LineAddr, now: u64) -> MshrOutcome {
        self.reclaim(now);
        if let Some(&(_, ready)) = self.entries.iter().find(|&&(l, _)| l == line) {
            return MshrOutcome::Merged { ready };
        }
        if self.entries.len() >= self.capacity {
            let free_at = self.entries.iter().map(|&(_, r)| r).min().unwrap_or(now);
            return MshrOutcome::Full { free_at };
        }
        MshrOutcome::Available
    }

    /// Record an issued miss that will complete at `ready`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the file is over capacity (callers must
    /// respect [`MshrOutcome::Full`]).
    pub fn register(&mut self, line: LineAddr, ready: u64) {
        debug_assert!(self.entries.len() < self.capacity, "MSHR overflow");
        self.entries.push((line, ready));
    }

    /// Number of currently tracked (possibly stale) entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Entries still outstanding at cycle `now`, ignoring entries whose
    /// miss has completed but which lazy reclamation has not dropped yet
    /// (the epoch telemetry's occupancy probe).
    pub fn live_occupancy(&self, now: u64) -> usize {
        self.entries
            .iter()
            .filter(|&&(_, ready)| ready > now)
            .count()
    }

    /// Capacity of the file.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_returns_existing_ready() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.lookup(LineAddr(7), 10), MshrOutcome::Available);
        m.register(LineAddr(7), 100);
        assert_eq!(
            m.lookup(LineAddr(7), 20),
            MshrOutcome::Merged { ready: 100 }
        );
    }

    #[test]
    fn full_reports_earliest_free() {
        let mut m = MshrFile::new(2);
        m.register(LineAddr(1), 100);
        m.register(LineAddr(2), 80);
        assert_eq!(m.lookup(LineAddr(3), 10), MshrOutcome::Full { free_at: 80 });
    }

    #[test]
    fn reclaim_frees_completed() {
        let mut m = MshrFile::new(1);
        m.register(LineAddr(1), 50);
        // at cycle 60 the entry has completed, so a new line can allocate
        assert_eq!(m.lookup(LineAddr(2), 60), MshrOutcome::Available);
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    fn completed_entry_not_merged() {
        let mut m = MshrFile::new(2);
        m.register(LineAddr(1), 50);
        assert_eq!(m.lookup(LineAddr(1), 51), MshrOutcome::Available);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
