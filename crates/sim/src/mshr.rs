//! Miss-status holding registers: bound outstanding misses and merge
//! same-line requests.

use crate::types::LineAddr;

/// A small MSHR file. Entries are `(line, ready_cycle)`; completed entries
/// are reclaimed lazily. Linear scans are intentional — real MSHR files
/// hold 16–64 entries, so a `Vec` beats a hash map here.
///
/// A `min_ready` watermark (earliest completion among tracked entries)
/// lets [`MshrFile::lookup`] skip the reclaim sweep entirely while
/// `now < min_ready`: no entry can have completed, so the sweep would
/// remove nothing. This takes the common hit-adjacent lookup from O(n)
/// `retain` to a single comparison.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<(LineAddr, u64)>,
    capacity: usize,
    /// Minimum `ready` among `entries`; `u64::MAX` when empty.
    min_ready: u64,
}

/// Outcome of attempting to allocate an MSHR entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A miss to this line is already outstanding; the request completes
    /// when the existing one does.
    Merged { ready: u64 },
    /// An entry is available; the caller should issue the miss and then
    /// call [`MshrFile::register`].
    Available,
    /// The file is full; the request cannot issue before `free_at`.
    Full { free_at: u64 },
}

impl MshrFile {
    /// Create a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            min_ready: u64::MAX,
        }
    }

    /// Drop entries whose miss has completed by `now` and refresh the
    /// `min_ready` watermark. Callers guard on the watermark, so this
    /// only runs when at least one entry has actually completed.
    fn reclaim(&mut self, now: u64) {
        self.entries.retain(|&(_, ready)| ready > now);
        self.min_ready = self
            .entries
            .iter()
            .map(|&(_, r)| r)
            .min()
            .unwrap_or(u64::MAX);
    }

    /// Check whether a miss to `line` at cycle `now` can be issued.
    pub fn lookup(&mut self, line: LineAddr, now: u64) -> MshrOutcome {
        if now >= self.min_ready {
            self.reclaim(now);
        }
        if let Some(&(_, ready)) = self.entries.iter().find(|&&(l, _)| l == line) {
            return MshrOutcome::Merged { ready };
        }
        if self.entries.len() >= self.capacity {
            // every surviving entry has `ready > now`, so the watermark
            // is the earliest cycle an entry frees
            return MshrOutcome::Full {
                free_at: self.min_ready,
            };
        }
        MshrOutcome::Available
    }

    /// Record an issued miss that will complete at `ready`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the file is over capacity (callers must
    /// respect [`MshrOutcome::Full`]).
    pub fn register(&mut self, line: LineAddr, ready: u64) {
        debug_assert!(self.entries.len() < self.capacity, "MSHR overflow");
        self.min_ready = self.min_ready.min(ready);
        self.entries.push((line, ready));
    }

    /// Number of currently tracked (possibly stale) entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Entries still outstanding at cycle `now`, ignoring entries whose
    /// miss has completed but which lazy reclamation has not dropped yet
    /// (the epoch telemetry's occupancy probe).
    pub fn live_occupancy(&self, now: u64) -> usize {
        self.entries
            .iter()
            .filter(|&&(_, ready)| ready > now)
            .count()
    }

    /// Capacity of the file.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_returns_existing_ready() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.lookup(LineAddr(7), 10), MshrOutcome::Available);
        m.register(LineAddr(7), 100);
        assert_eq!(
            m.lookup(LineAddr(7), 20),
            MshrOutcome::Merged { ready: 100 }
        );
    }

    #[test]
    fn full_reports_earliest_free() {
        let mut m = MshrFile::new(2);
        m.register(LineAddr(1), 100);
        m.register(LineAddr(2), 80);
        assert_eq!(m.lookup(LineAddr(3), 10), MshrOutcome::Full { free_at: 80 });
    }

    #[test]
    fn reclaim_frees_completed() {
        let mut m = MshrFile::new(1);
        m.register(LineAddr(1), 50);
        // at cycle 60 the entry has completed, so a new line can allocate
        assert_eq!(m.lookup(LineAddr(2), 60), MshrOutcome::Available);
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    fn completed_entry_not_merged() {
        let mut m = MshrFile::new(2);
        m.register(LineAddr(1), 50);
        assert_eq!(m.lookup(LineAddr(1), 51), MshrOutcome::Available);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn watermark_gates_reclaim_and_refreshes() {
        let mut m = MshrFile::new(4);
        m.register(LineAddr(1), 50);
        m.register(LineAddr(2), 60);
        // before the watermark nothing can have completed: lookups leave
        // both entries in place (no sweep ran)
        assert_eq!(m.lookup(LineAddr(3), 49), MshrOutcome::Available);
        assert_eq!(m.occupancy(), 2);
        // crossing the watermark reclaims exactly the completed entry
        // and advances the watermark to the survivor's ready cycle
        assert_eq!(m.lookup(LineAddr(3), 55), MshrOutcome::Available);
        assert_eq!(m.occupancy(), 1);
        assert_eq!(m.lookup(LineAddr(3), 59), MshrOutcome::Available);
        assert_eq!(m.occupancy(), 1);
        assert_eq!(m.lookup(LineAddr(3), 60), MshrOutcome::Available);
        assert_eq!(m.occupancy(), 0);
    }
}
