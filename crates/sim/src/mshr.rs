//! Miss-status holding registers: bound outstanding misses and merge
//! same-line requests.

use crate::types::LineAddr;

/// Packed slot key: `(line << 1) | 1`, with `0` meaning "free slot" —
/// the same encoding the cache set probes use, so MSHR lookups run
/// through the same vectorized [`crate::probe::find_key`] kernel.
#[inline]
fn key_of(line: LineAddr) -> u64 {
    debug_assert!(line.0 < 1 << 63, "line address overflows packed key");
    (line.0 << 1) | 1
}

/// A small MSHR file, laid out as a fixed-capacity pool: one packed
/// key array plus one ready-cycle array, allocated once at
/// construction and never resized. Live entries are kept densely
/// packed in `[0, live)` — freeing a completed entry swap-removes it
/// (the last live entry moves into the hole), and registration appends
/// at `live`. Keys are unique within the file (a same-line request
/// merges instead of allocating), so every query is order-independent
/// and the swap is invisible: lookups scan only the `live` prefix with
/// the vectorized [`crate::probe::find_key`] kernel, never the full
/// capacity, and there is no allocator traffic, ever.
///
/// A `min_ready` watermark (earliest completion among live entries)
/// lets [`MshrFile::lookup`] skip the reclaim sweep entirely while
/// `now < min_ready`: no entry can have completed, so the sweep would
/// free nothing. This takes the common hit-adjacent lookup from a
/// full sweep to a single comparison.
///
/// Entries are never referenced from outside the file (callers
/// interact by line address, not slot handle), so the pool needs no
/// per-slot generation counters — there is no stale-handle hazard to
/// defend against.
#[derive(Debug, Clone)]
pub struct MshrFile {
    /// Packed line key per slot; live entries occupy `[0, live)`,
    /// everything beyond is `0`.
    keys: Box<[u64]>,
    /// Completion cycle per slot, parallel to `keys`.
    ready: Box<[u64]>,
    /// Number of occupied slots (the packed prefix length).
    live: usize,
    /// Minimum `ready` among live slots; `u64::MAX` when empty.
    min_ready: u64,
}

/// Outcome of attempting to allocate an MSHR entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A miss to this line is already outstanding; the request completes
    /// when the existing one does.
    Merged { ready: u64 },
    /// An entry is available; the caller should issue the miss and then
    /// call [`MshrFile::register`].
    Available,
    /// The file is full; the request cannot issue before `free_at`.
    Full { free_at: u64 },
}

impl MshrFile {
    /// Create a file with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        MshrFile {
            keys: vec![0; capacity].into_boxed_slice(),
            ready: vec![0; capacity].into_boxed_slice(),
            live: 0,
            min_ready: u64::MAX,
        }
    }

    /// Swap-remove entries whose miss has completed by `now` and
    /// refresh the `min_ready` watermark. Callers guard on the
    /// watermark, so this only runs when at least one entry has
    /// actually completed.
    fn reclaim(&mut self, now: u64) {
        let mut min = u64::MAX;
        let mut i = 0;
        while i < self.live {
            let r = self.ready[i];
            if r <= now {
                self.live -= 1;
                self.keys[i] = self.keys[self.live];
                self.ready[i] = self.ready[self.live];
                self.keys[self.live] = 0;
            } else {
                min = min.min(r);
                i += 1;
            }
        }
        self.min_ready = min;
    }

    /// Check whether a miss to `line` at cycle `now` can be issued.
    #[inline]
    pub fn lookup(&mut self, line: LineAddr, now: u64) -> MshrOutcome {
        if now >= self.min_ready {
            self.reclaim(now);
        }
        if let Some(slot) = crate::probe::find_key(&self.keys[..self.live], key_of(line)) {
            return MshrOutcome::Merged {
                ready: self.ready[slot],
            };
        }
        if self.live >= self.keys.len() {
            // every live entry has `ready > now`, so the watermark is
            // the earliest cycle a slot frees
            return MshrOutcome::Full {
                free_at: self.min_ready,
            };
        }
        MshrOutcome::Available
    }

    /// Record an issued miss that will complete at `ready`.
    ///
    /// # Panics
    ///
    /// Panics if the file is full (callers must respect
    /// [`MshrOutcome::Full`]).
    #[inline]
    pub fn register(&mut self, line: LineAddr, ready: u64) {
        assert!(self.live < self.keys.len(), "MSHR overflow");
        self.keys[self.live] = key_of(line);
        self.ready[self.live] = ready;
        self.live += 1;
        self.min_ready = self.min_ready.min(ready);
    }

    /// Number of currently tracked (possibly stale) entries.
    pub fn occupancy(&self) -> usize {
        self.live
    }

    /// Entries still outstanding at cycle `now`, ignoring entries whose
    /// miss has completed but which lazy reclamation has not freed yet
    /// (the epoch telemetry's occupancy probe).
    pub fn live_occupancy(&self, now: u64) -> usize {
        self.ready[..self.live].iter().filter(|&&r| r > now).count()
    }

    /// Capacity of the file.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_returns_existing_ready() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.lookup(LineAddr(7), 10), MshrOutcome::Available);
        m.register(LineAddr(7), 100);
        assert_eq!(
            m.lookup(LineAddr(7), 20),
            MshrOutcome::Merged { ready: 100 }
        );
    }

    #[test]
    fn full_reports_earliest_free() {
        let mut m = MshrFile::new(2);
        m.register(LineAddr(1), 100);
        m.register(LineAddr(2), 80);
        assert_eq!(m.lookup(LineAddr(3), 10), MshrOutcome::Full { free_at: 80 });
    }

    #[test]
    fn reclaim_frees_completed() {
        let mut m = MshrFile::new(1);
        m.register(LineAddr(1), 50);
        // at cycle 60 the entry has completed, so a new line can allocate
        assert_eq!(m.lookup(LineAddr(2), 60), MshrOutcome::Available);
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    fn completed_entry_not_merged() {
        let mut m = MshrFile::new(2);
        m.register(LineAddr(1), 50);
        assert_eq!(m.lookup(LineAddr(1), 51), MshrOutcome::Available);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn watermark_gates_reclaim_and_refreshes() {
        let mut m = MshrFile::new(4);
        m.register(LineAddr(1), 50);
        m.register(LineAddr(2), 60);
        // before the watermark nothing can have completed: lookups leave
        // both entries in place (no sweep ran)
        assert_eq!(m.lookup(LineAddr(3), 49), MshrOutcome::Available);
        assert_eq!(m.occupancy(), 2);
        // crossing the watermark reclaims exactly the completed entry
        // and advances the watermark to the survivor's ready cycle
        assert_eq!(m.lookup(LineAddr(3), 55), MshrOutcome::Available);
        assert_eq!(m.occupancy(), 1);
        assert_eq!(m.lookup(LineAddr(3), 59), MshrOutcome::Available);
        assert_eq!(m.occupancy(), 1);
        assert_eq!(m.lookup(LineAddr(3), 60), MshrOutcome::Available);
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    fn slots_are_reused_without_allocation() {
        let mut m = MshrFile::new(3);
        m.register(LineAddr(1), 10);
        m.register(LineAddr(2), 1000);
        m.register(LineAddr(3), 1000);
        // line 1 completes; its slot is swap-filled and the next
        // registration reuses the freed capacity
        assert_eq!(m.lookup(LineAddr(4), 20), MshrOutcome::Available);
        m.register(LineAddr(4), 500);
        assert_eq!(m.occupancy(), 3);
        assert_eq!(
            m.lookup(LineAddr(2), 30),
            MshrOutcome::Merged { ready: 1000 }
        );
        assert_eq!(
            m.lookup(LineAddr(4), 30),
            MshrOutcome::Merged { ready: 500 }
        );
        assert_eq!(m.live_occupancy(600), 2);
    }
}
