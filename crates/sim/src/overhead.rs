//! Storage-overhead accounting for cache-management schemes
//! (reproduces the bookkeeping behind the paper's Tables III and IV).

/// A bit-level storage budget, built up from named components.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageOverhead {
    components: Vec<(String, u64)>, // (name, bits)
}

impl StorageOverhead {
    /// An empty budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a named component of `bits` bits.
    pub fn add_bits(&mut self, name: &str, bits: u64) -> &mut Self {
        self.components.push((name.to_string(), bits));
        self
    }

    /// Add a named component expressed as `entries × bits_per_entry`.
    pub fn add_table(&mut self, name: &str, entries: u64, bits_per_entry: u64) -> &mut Self {
        self.add_bits(name, entries * bits_per_entry)
    }

    /// Total bits across all components.
    pub fn total_bits(&self) -> u64 {
        self.components.iter().map(|&(_, b)| b).sum()
    }

    /// Total size in KiB (as reported in the paper's tables).
    pub fn total_kib(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }

    /// Iterate over `(name, bits)` components.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.components.iter().map(|(n, b)| (n.as_str(), *b))
    }

    /// Render a small table like the paper's Table III.
    pub fn render(&self, title: &str) -> String {
        let mut out = format!("{title}\n");
        for (name, bits) in self.iter() {
            out.push_str(&format!(
                "  {:<40} {:>10.2} KB\n",
                name,
                bits as f64 / 8.0 / 1024.0
            ));
        }
        out.push_str(&format!(
            "  {:<40} {:>10.2} KB\n",
            "TOTAL",
            self.total_kib()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut o = StorageOverhead::new();
        o.add_bits("a", 8 * 1024 * 8).add_table("b", 1024, 16);
        assert_eq!(o.total_bits(), 8 * 1024 * 8 + 1024 * 16);
        assert!((o.total_kib() - (8.0 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn chrome_table_iii_reproduction() {
        // Table III: Q-Table 32KB + EQ 12.7KB + EPV metadata 48KB = 92.7KB
        let mut o = StorageOverhead::new();
        o.add_table("Q-Table", 2 * 4 * 2048, 16);
        o.add_table("EQ", 64 * 28, 58);
        o.add_table("EPV metadata", 196_608, 2); // 12MB LLC = 196608 blocks
        assert!((o.total_kib() - 92.7).abs() < 0.05, "got {}", o.total_kib());
    }

    #[test]
    fn render_contains_total() {
        let mut o = StorageOverhead::new();
        o.add_bits("x", 8192);
        let s = o.render("test");
        assert!(s.contains("TOTAL"));
        assert!(s.contains("1.00 KB"));
    }
}
