//! The pluggable LLC management-policy interface.
//!
//! Every scheme evaluated in the paper — LRU, Hawkeye, Glider, Mockingjay,
//! CARE and CHROME itself — implements [`LlcPolicy`]. The shared LLC calls
//! into the policy on every lookup, giving it the opportunity to make
//! *holistic* decisions: bypass or insert on a miss (with a chosen
//! priority), promote/demote on a hit, and select victims.

use crate::overhead::StorageOverhead;
use crate::types::LineAddr;
use chrome_telemetry::{AuditLog, PolicyEpochProbe, TelemetrySink};

/// Everything a policy may observe about one LLC access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessInfo {
    /// Core that initiated the access.
    pub core: usize,
    /// Program counter of the triggering instruction (for prefetches, the
    /// PC of the demand access that triggered the prefetcher).
    pub pc: u64,
    /// Line address being accessed.
    pub line: LineAddr,
    /// True if this is a prefetch request rather than a demand access.
    pub is_prefetch: bool,
    /// True if this is a store (demand write).
    pub is_write: bool,
    /// Cycle at which the access reaches the LLC.
    pub cycle: u64,
}

/// One candidate block during victim selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateLine {
    /// Way index within the set.
    pub way: usize,
    /// Line address currently stored.
    pub line: LineAddr,
    /// True if the block still carries its prefetch bit.
    pub prefetch: bool,
    /// True if the block is dirty.
    pub dirty: bool,
}

/// Decision for an incoming block on an LLC miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillDecision {
    /// Do not cache the block; forward it straight to the requestor.
    Bypass,
    /// Insert the block (the cache will ask for a victim if needed).
    Insert,
}

/// Concurrency-aware system feedback published once per epoch
/// (paper §IV-C): per-core C-AMAT at the LLC and the derived
/// LLC-obstruction flags.
#[derive(Debug, Clone, Default)]
pub struct SystemFeedback {
    /// Per-core C-AMAT(LLC) measured over the last epoch, in cycles.
    pub camat_llc: Vec<f64>,
    /// Per-core LLC-obstruction flags: true when
    /// `C-AMAT_i(LLC) > T_mem` during the last epoch.
    pub obstructed: Vec<bool>,
    /// Measured average main-memory latency `T_mem` (cycles).
    pub t_mem: f64,
    /// Index of the current epoch (starts at 0).
    pub epoch: u64,
}

impl SystemFeedback {
    /// Feedback for `cores` cores with no obstruction.
    pub fn new(cores: usize) -> Self {
        SystemFeedback {
            camat_llc: vec![0.0; cores],
            obstructed: vec![false; cores],
            t_mem: 200.0,
            epoch: 0,
        }
    }

    /// Whether `core` was LLC-obstructed in the last epoch. Out-of-range
    /// cores report `false`.
    pub fn is_obstructed(&self, core: usize) -> bool {
        self.obstructed.get(core).copied().unwrap_or(false)
    }
}

/// An LLC management policy (replacement + bypassing, prefetch-aware).
///
/// Implementors keep their own per-block metadata, indexed by
/// `(set, way)`; the cache guarantees `set < num_sets` and `way < ways`
/// as given to [`LlcPolicy::initialize`].
///
/// This is the *hardware* binding of cache management: the learned
/// agent in `chrome-core` is generic over an `Environment` trait, and
/// its `HwEnv` implementation adapts these callbacks (the same engine
/// also drives the software serving cache in `chrome-serve`).
pub trait LlcPolicy {
    /// Called once before simulation with the LLC geometry.
    fn initialize(&mut self, num_sets: usize, ways: usize, cores: usize);

    /// A lookup hit block `(set, way)`. The policy may update priorities.
    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo, feedback: &SystemFeedback);

    /// A lookup missed; decide whether the incoming block should be
    /// inserted or should bypass the LLC.
    fn on_miss(&mut self, set: usize, info: &AccessInfo, feedback: &SystemFeedback)
        -> FillDecision;

    /// Choose a victim among `candidates` (all ways are valid blocks).
    /// Returns the chosen way.
    fn choose_victim(
        &mut self,
        set: usize,
        candidates: &[CandidateLine],
        info: &AccessInfo,
    ) -> usize;

    /// The incoming block was placed in `(set, way)` (after any eviction).
    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo, feedback: &SystemFeedback);

    /// A valid block was evicted from `(set, way)`.
    /// `was_hit` reports whether it was ever hit while resident.
    fn on_evict(&mut self, set: usize, way: usize, line: LineAddr, was_hit: bool);

    /// Called at every feedback-epoch boundary with fresh C-AMAT data.
    fn on_epoch(&mut self, feedback: &SystemFeedback) {
        let _ = feedback;
    }

    /// Install a telemetry sink so the policy can emit structured
    /// decision events (predictor verdicts, rewards, Q-updates).
    /// The default drops it; heuristics without internals to expose
    /// need not implement this.
    fn set_telemetry(&mut self, sink: TelemetrySink) {
        let _ = sink;
    }

    /// Sample policy internals for the epoch recorder (EQ occupancy and
    /// overflow, ε, mean |Q| for learned policies). The default reports
    /// all zeros.
    fn epoch_probe(&self) -> PolicyEpochProbe {
        PolicyEpochProbe::default()
    }

    /// Start recording a per-decision audit trail into a bounded log
    /// tagged with `stream`, holding at most `cap` records. Returns
    /// true when the policy supports auditing (only learned policies
    /// with a decision stream do); the default refuses.
    fn enable_audit(&mut self, stream: u32, cap: usize) -> bool {
        let _ = (stream, cap);
        false
    }

    /// The recorded audit trail, if auditing was enabled and the
    /// policy supports it.
    fn audit(&self) -> Option<&AuditLog> {
        None
    }

    /// Human-readable scheme name ("LRU", "Hawkeye", "CHROME", ...).
    fn name(&self) -> &str;

    /// Optional scheme-specific metrics, as `(name, value)` pairs
    /// (e.g. CHROME reports Q-table updates per kilo sampled accesses).
    fn report(&self) -> Vec<(String, f64)> {
        Vec::new()
    }

    /// Hardware storage budget of this scheme for an LLC with
    /// `llc_blocks` blocks (paper Table IV).
    fn storage_overhead(&self, llc_blocks: usize) -> StorageOverhead;
}

/// The LLC's policy slot: the built-in LRU baseline inlined as an enum
/// arm, everything else behind the usual trait object.
///
/// LRU is both the paper's normalization reference and the throughput
/// benchmark's fast lane, so its four per-access callbacks (`on_hit`,
/// `on_miss`, `choose_victim`, `on_fill`) deserve static dispatch — a
/// stamp write and a min-scan the optimizer can inline straight into
/// [`crate::llc::SharedLlc::access`]. Learned and heuristic policies
/// live in downstream crates (`chrome-policies`, `chrome-core`), which
/// this crate cannot name, so they stay dynamically dispatched in the
/// `Dyn` arm; their per-access work (sampler lookups, Q-table reads)
/// dwarfs a vtable hop anyway.
///
/// `From` impls keep construction source-compatible: anywhere that used
/// to pass a `Box<dyn LlcPolicy>` still compiles, and passing a bare
/// [`BuiltinLru`] opts into the static arm.
pub enum PolicySlot {
    /// The built-in true-LRU baseline, statically dispatched.
    Lru(BuiltinLru),
    /// Any other management policy, through its vtable.
    Dyn(Box<dyn LlcPolicy>),
}

impl From<BuiltinLru> for PolicySlot {
    fn from(p: BuiltinLru) -> Self {
        PolicySlot::Lru(p)
    }
}

impl From<Box<dyn LlcPolicy>> for PolicySlot {
    fn from(p: Box<dyn LlcPolicy>) -> Self {
        PolicySlot::Dyn(p)
    }
}

// Callers that box a concrete policy type (`Box<Chrome>`, `Box<Lru>`)
// land in the `Dyn` arm too; the unsize coercion happens here rather
// than at every call site.
impl<P: LlcPolicy + 'static> From<Box<P>> for PolicySlot {
    fn from(p: Box<P>) -> Self {
        PolicySlot::Dyn(p)
    }
}

macro_rules! slot_dispatch {
    ($self:ident, $p:ident => $body:expr) => {
        match $self {
            PolicySlot::Lru($p) => $body,
            PolicySlot::Dyn($p) => $body,
        }
    };
}

impl PolicySlot {
    /// See [`LlcPolicy::initialize`].
    pub fn initialize(&mut self, num_sets: usize, ways: usize, cores: usize) {
        slot_dispatch!(self, p => p.initialize(num_sets, ways, cores))
    }

    /// See [`LlcPolicy::on_hit`].
    #[inline]
    pub fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo, feedback: &SystemFeedback) {
        slot_dispatch!(self, p => p.on_hit(set, way, info, feedback))
    }

    /// See [`LlcPolicy::on_miss`].
    #[inline]
    pub fn on_miss(
        &mut self,
        set: usize,
        info: &AccessInfo,
        feedback: &SystemFeedback,
    ) -> FillDecision {
        slot_dispatch!(self, p => p.on_miss(set, info, feedback))
    }

    /// See [`LlcPolicy::choose_victim`].
    #[inline]
    pub fn choose_victim(
        &mut self,
        set: usize,
        candidates: &[CandidateLine],
        info: &AccessInfo,
    ) -> usize {
        slot_dispatch!(self, p => p.choose_victim(set, candidates, info))
    }

    /// See [`LlcPolicy::on_fill`].
    #[inline]
    pub fn on_fill(
        &mut self,
        set: usize,
        way: usize,
        info: &AccessInfo,
        feedback: &SystemFeedback,
    ) {
        slot_dispatch!(self, p => p.on_fill(set, way, info, feedback))
    }

    /// See [`LlcPolicy::on_evict`].
    #[inline]
    pub fn on_evict(&mut self, set: usize, way: usize, line: LineAddr, was_hit: bool) {
        slot_dispatch!(self, p => p.on_evict(set, way, line, was_hit))
    }

    /// See [`LlcPolicy::on_epoch`].
    pub fn on_epoch(&mut self, feedback: &SystemFeedback) {
        slot_dispatch!(self, p => p.on_epoch(feedback))
    }

    /// See [`LlcPolicy::set_telemetry`].
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        slot_dispatch!(self, p => p.set_telemetry(sink))
    }

    /// See [`LlcPolicy::epoch_probe`].
    pub fn epoch_probe(&self) -> PolicyEpochProbe {
        slot_dispatch!(self, p => p.epoch_probe())
    }

    /// See [`LlcPolicy::enable_audit`].
    pub fn enable_audit(&mut self, stream: u32, cap: usize) -> bool {
        slot_dispatch!(self, p => p.enable_audit(stream, cap))
    }

    /// See [`LlcPolicy::audit`].
    pub fn audit(&self) -> Option<&AuditLog> {
        slot_dispatch!(self, p => p.audit())
    }

    /// See [`LlcPolicy::name`].
    pub fn name(&self) -> &str {
        slot_dispatch!(self, p => p.name())
    }

    /// See [`LlcPolicy::report`].
    pub fn report(&self) -> Vec<(String, f64)> {
        slot_dispatch!(self, p => p.report())
    }

    /// See [`LlcPolicy::storage_overhead`].
    pub fn storage_overhead(&self, llc_blocks: usize) -> StorageOverhead {
        slot_dispatch!(self, p => p.storage_overhead(llc_blocks))
    }
}

/// Returns `true` if `set` is one of the `sampled` observation sets used
/// by sampling-based policies (Hawkeye, Mockingjay, CHROME). Sets are
/// spaced evenly across the cache.
#[inline]
pub fn is_sampled_set(set: usize, num_sets: usize, sampled: usize) -> bool {
    if sampled == 0 {
        return false;
    }
    let stride = (num_sets / sampled).max(1);
    set.is_multiple_of(stride) && set / stride < sampled
}

/// Index of a sampled set among the sampled population (0..sampled), or
/// `None` if `set` is not sampled.
#[inline]
pub fn sampled_index(set: usize, num_sets: usize, sampled: usize) -> Option<usize> {
    if sampled == 0 {
        return None;
    }
    let stride = (num_sets / sampled).max(1);
    if set.is_multiple_of(stride) && set / stride < sampled {
        Some(set / stride)
    } else {
        None
    }
}

/// True-LRU replacement with no bypassing — the paper's baseline and the
/// simplest possible [`LlcPolicy`] implementation. Kept in the simulator
/// crate so a [`crate::System`] can be built without the policy crates.
#[derive(Debug, Default)]
pub struct BuiltinLru {
    stamp: Vec<u64>,
    ways: usize,
    tick: u64,
}

impl BuiltinLru {
    /// Create an uninitialized LRU policy; geometry arrives via
    /// [`LlcPolicy::initialize`].
    pub fn new() -> Self {
        Self::default()
    }
}

impl LlcPolicy for BuiltinLru {
    fn initialize(&mut self, num_sets: usize, ways: usize, _cores: usize) {
        self.stamp = vec![0; num_sets * ways];
        self.ways = ways;
    }

    fn on_hit(&mut self, set: usize, way: usize, _: &AccessInfo, _: &SystemFeedback) {
        self.tick += 1;
        self.stamp[set * self.ways + way] = self.tick;
    }

    fn on_miss(&mut self, _: usize, _: &AccessInfo, _: &SystemFeedback) -> FillDecision {
        FillDecision::Insert
    }

    fn choose_victim(&mut self, set: usize, c: &[CandidateLine], _: &AccessInfo) -> usize {
        c.iter()
            .min_by_key(|cand| self.stamp[set * self.ways + cand.way])
            .expect("candidates nonempty")
            .way
    }

    fn on_fill(&mut self, set: usize, way: usize, _: &AccessInfo, _: &SystemFeedback) {
        self.tick += 1;
        self.stamp[set * self.ways + way] = self.tick;
    }

    fn on_evict(&mut self, _: usize, _: usize, _: LineAddr, _: bool) {}

    fn name(&self) -> &str {
        "LRU"
    }

    fn storage_overhead(&self, llc_blocks: usize) -> StorageOverhead {
        let mut o = StorageOverhead::new();
        o.add_table("LRU stamps", llc_blocks as u64, 6);
        o
    }
}

/// Minimal policies used by the simulator's own tests. Hidden from docs;
/// real policies live in the `chrome-policies` and `chrome-core` crates.
#[doc(hidden)]
pub mod tests_support {
    use super::*;

    pub use super::BuiltinLru as TrueLru;

    /// A policy that counts callback invocations (for wiring tests) and
    /// can be configured to always bypass.
    #[derive(Debug)]
    pub struct CountingPolicy {
        bypass: bool,
        misses: u64,
        hits: u64,
        fills: u64,
        evicts: u64,
        name: String,
    }

    impl CountingPolicy {
        /// Policy that bypasses every incoming block.
        pub fn always_bypass() -> Self {
            CountingPolicy {
                bypass: true,
                misses: 0,
                hits: 0,
                fills: 0,
                evicts: 0,
                name: "counting".into(),
            }
        }

        /// Policy that inserts every incoming block (victim = way 0).
        pub fn insert_all() -> Self {
            CountingPolicy {
                bypass: false,
                ..Self::always_bypass()
            }
        }

        fn refresh(&mut self) {
            self.name = format!(
                "counting m{} h{} f{} e{}",
                self.misses, self.hits, self.fills, self.evicts
            );
        }
    }

    impl LlcPolicy for CountingPolicy {
        fn initialize(&mut self, _: usize, _: usize, _: usize) {}

        fn on_hit(&mut self, _: usize, _: usize, _: &AccessInfo, _: &SystemFeedback) {
            self.hits += 1;
            self.refresh();
        }

        fn on_miss(&mut self, _: usize, _: &AccessInfo, _: &SystemFeedback) -> FillDecision {
            self.misses += 1;
            self.refresh();
            if self.bypass {
                FillDecision::Bypass
            } else {
                FillDecision::Insert
            }
        }

        fn choose_victim(&mut self, _: usize, _: &[CandidateLine], _: &AccessInfo) -> usize {
            0
        }

        fn on_fill(&mut self, _: usize, _: usize, _: &AccessInfo, _: &SystemFeedback) {
            self.fills += 1;
            self.refresh();
        }

        fn on_evict(&mut self, _: usize, _: usize, _: LineAddr, _: bool) {
            self.evicts += 1;
            self.refresh();
        }

        fn name(&self) -> &str {
            &self.name
        }

        fn storage_overhead(&self, _: usize) -> StorageOverhead {
            StorageOverhead::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_sets_are_spaced() {
        let num_sets = 16384;
        let count = (0..num_sets)
            .filter(|&s| is_sampled_set(s, num_sets, 64))
            .count();
        assert_eq!(count, 64);
        assert!(is_sampled_set(0, num_sets, 64));
        assert!(is_sampled_set(256, num_sets, 64));
        assert!(!is_sampled_set(1, num_sets, 64));
    }

    #[test]
    fn sampled_index_matches_membership() {
        let num_sets = 1024;
        for s in 0..num_sets {
            let idx = sampled_index(s, num_sets, 64);
            assert_eq!(idx.is_some(), is_sampled_set(s, num_sets, 64));
            if let Some(i) = idx {
                assert!(i < 64);
            }
        }
    }

    #[test]
    fn sampling_more_than_sets_samples_everything() {
        // tiny test caches: every set is sampled
        for s in 0..8 {
            assert!(is_sampled_set(s, 8, 64));
            assert_eq!(sampled_index(s, 8, 64), Some(s));
        }
    }

    #[test]
    fn zero_sampled_sets() {
        assert!(!is_sampled_set(0, 64, 0));
        assert_eq!(sampled_index(0, 64, 0), None);
    }

    #[test]
    fn feedback_out_of_range_is_unobstructed() {
        let f = SystemFeedback::new(2);
        assert!(!f.is_obstructed(0));
        assert!(!f.is_obstructed(99));
    }

    #[test]
    fn feedback_flags() {
        let mut f = SystemFeedback::new(2);
        f.obstructed[1] = true;
        assert!(!f.is_obstructed(0));
        assert!(f.is_obstructed(1));
    }
}
