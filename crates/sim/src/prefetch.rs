//! Hardware prefetchers: next-line, per-PC stride, streamer, and an
//! IPCP-style instruction-pointer classifier.
//!
//! Prefetchers observe demand accesses at their cache level and propose
//! additional line addresses to fetch. Proposals are clamped to the same
//! physical page (standard hardware practice, since the prefetcher works
//! on physical addresses past the TLB).

use crate::config::PrefetcherKind;
use crate::types::LineAddr;

/// Where a prefetched line should be filled.
///
/// Near prefetches land close to the core; far (lookahead) prefetches
/// fill only the LLC, as championship-simulator prefetchers do — this is
/// what creates LLC prefetch hits for prefetch-aware LLC policies to
/// manage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillLevel {
    /// Fill L1 (and everything below).
    L1,
    /// Fill L2 and the LLC, but not L1.
    L2,
    /// Fill only the shared LLC.
    LlcOnly,
}

/// One prefetch proposal: a target line and its fill level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// The line to fetch.
    pub line: LineAddr,
    /// How deep the fill should go.
    pub fill: FillLevel,
}

impl PrefetchRequest {
    /// Convenience constructor.
    pub fn new(line: LineAddr, fill: FillLevel) -> Self {
        PrefetchRequest { line, fill }
    }
}

/// A hardware prefetcher observing one cache level.
pub trait Prefetcher {
    /// Observe a demand access at this level and append prefetch
    /// candidates to `out`. `hit` reports whether the demand access hit.
    fn on_access(&mut self, pc: u64, line: LineAddr, hit: bool, out: &mut Vec<PrefetchRequest>);

    /// Prefetcher name for diagnostics.
    fn name(&self) -> &str;
}

/// All built-in prefetchers as a closed enum. The memory hierarchy
/// observes one of these per core per level on *every* L1/L2 access,
/// so the dispatch is a jump table over inlined bodies instead of a
/// vtable load + indirect call per access.
#[derive(Debug, Clone)]
pub enum AnyPrefetcher {
    /// The null prefetcher.
    None(NoPrefetcher),
    /// Next-`degree`-lines.
    NextLine(NextLine),
    /// Per-PC stride (Fu & Patel).
    Stride(StridePrefetcher),
    /// Page-stream runner (Chen & Baer).
    Streamer(Streamer),
    /// IP classifier (Pakalapati & Panda).
    Ipcp(Ipcp),
}

impl AnyPrefetcher {
    /// Construct a prefetcher of the given kind with the given degree.
    pub fn build(kind: PrefetcherKind, degree: usize) -> Self {
        match kind {
            PrefetcherKind::None => AnyPrefetcher::None(NoPrefetcher),
            PrefetcherKind::NextLine => AnyPrefetcher::NextLine(NextLine { degree }),
            PrefetcherKind::Stride => AnyPrefetcher::Stride(StridePrefetcher::new(degree)),
            PrefetcherKind::Streamer => AnyPrefetcher::Streamer(Streamer::new(degree)),
            PrefetcherKind::Ipcp => AnyPrefetcher::Ipcp(Ipcp::new(degree)),
        }
    }

    /// Statically-dispatched access hook; see [`Prefetcher::on_access`].
    #[inline]
    pub fn on_access(
        &mut self,
        pc: u64,
        line: LineAddr,
        hit: bool,
        out: &mut Vec<PrefetchRequest>,
    ) {
        match self {
            AnyPrefetcher::None(p) => p.on_access(pc, line, hit, out),
            AnyPrefetcher::NextLine(p) => p.on_access(pc, line, hit, out),
            AnyPrefetcher::Stride(p) => p.on_access(pc, line, hit, out),
            AnyPrefetcher::Streamer(p) => p.on_access(pc, line, hit, out),
            AnyPrefetcher::Ipcp(p) => p.on_access(pc, line, hit, out),
        }
    }

    /// Prefetcher name for diagnostics.
    pub fn name(&self) -> &str {
        match self {
            AnyPrefetcher::None(p) => Prefetcher::name(p),
            AnyPrefetcher::NextLine(p) => Prefetcher::name(p),
            AnyPrefetcher::Stride(p) => Prefetcher::name(p),
            AnyPrefetcher::Streamer(p) => Prefetcher::name(p),
            AnyPrefetcher::Ipcp(p) => Prefetcher::name(p),
        }
    }
}

impl Prefetcher for AnyPrefetcher {
    fn on_access(&mut self, pc: u64, line: LineAddr, hit: bool, out: &mut Vec<PrefetchRequest>) {
        AnyPrefetcher::on_access(self, pc, line, hit, out)
    }

    fn name(&self) -> &str {
        AnyPrefetcher::name(self)
    }
}

/// Construct a boxed prefetcher of the given kind — retained for
/// callers that plug custom [`Prefetcher`] impls alongside the
/// built-ins; the simulator's own hot path uses [`AnyPrefetcher`].
pub fn build(kind: PrefetcherKind, degree: usize) -> Box<dyn Prefetcher> {
    Box::new(AnyPrefetcher::build(kind, degree))
}

#[inline]
fn same_page(a: LineAddr, b: LineAddr) -> bool {
    a.page_number() == b.page_number()
}

/// The null prefetcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetcher;

impl Prefetcher for NoPrefetcher {
    fn on_access(&mut self, _: u64, _: LineAddr, _: bool, _: &mut Vec<PrefetchRequest>) {}

    fn name(&self) -> &str {
        "none"
    }
}

/// Prefetch the next `degree` sequential lines.
#[derive(Debug, Clone, Copy)]
pub struct NextLine {
    degree: usize,
}

impl Prefetcher for NextLine {
    fn on_access(&mut self, _: u64, line: LineAddr, _: bool, out: &mut Vec<PrefetchRequest>) {
        let mut next = line;
        for _ in 0..self.degree {
            next = next.next();
            if !same_page(line, next) {
                break;
            }
            out.push(PrefetchRequest::new(next, FillLevel::L1));
        }
    }

    fn name(&self) -> &str {
        "next-line"
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    pc_tag: u64,
    last_line: u64,
    stride: i64,
    confidence: u8,
}

/// Classic per-PC stride prefetcher (Fu & Patel).
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    degree: usize,
}

impl StridePrefetcher {
    /// 256-entry PC-indexed stride table.
    pub fn new(degree: usize) -> Self {
        StridePrefetcher {
            table: vec![StrideEntry::default(); 256],
            degree,
        }
    }
}

impl Prefetcher for StridePrefetcher {
    fn on_access(&mut self, pc: u64, line: LineAddr, _: bool, out: &mut Vec<PrefetchRequest>) {
        let idx = (pc as usize ^ (pc >> 8) as usize) % self.table.len();
        let e = &mut self.table[idx];
        if e.pc_tag != pc {
            *e = StrideEntry {
                pc_tag: pc,
                last_line: line.0,
                stride: 0,
                confidence: 0,
            };
            return;
        }
        let delta = line.0 as i64 - e.last_line as i64;
        e.last_line = line.0;
        if delta == 0 {
            return;
        }
        if delta == e.stride {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            if e.confidence > 0 {
                e.confidence -= 1;
            }
            if e.confidence == 0 {
                e.stride = delta;
            }
            return;
        }
        if e.confidence >= 2 {
            // prefetch with lookahead distance so the stream arrives
            // ahead of the demand wavefront
            const DISTANCE: i64 = 12;
            for k in 1..=self.degree as i64 {
                // far lookahead fills only the LLC
                let target = line.offset(e.stride * (DISTANCE + k));
                if same_page(line, target) && target != line {
                    out.push(PrefetchRequest::new(target, FillLevel::LlcOnly));
                }
                // the near window fills L2
                let near = line.offset(e.stride * k);
                if same_page(line, near) && near != line {
                    out.push(PrefetchRequest::new(near, FillLevel::L2));
                }
            }
        }
    }

    fn name(&self) -> &str {
        "stride"
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Stream {
    page: u64,
    last_line: u64,
    /// How far ahead of the demand stream prefetching has reached.
    ahead: u64,
    dir: i8,
    confidence: u8,
    valid: bool,
    lru: u64,
}

/// Streamer prefetcher (Chen & Baer style): detects monotonic streams
/// within a page and runs ahead of them.
#[derive(Debug, Clone)]
pub struct Streamer {
    streams: Vec<Stream>,
    degree: usize,
    tick: u64,
}

impl Streamer {
    /// 16 concurrent stream trackers.
    pub fn new(degree: usize) -> Self {
        Streamer {
            streams: vec![Stream::default(); 16],
            degree,
            tick: 0,
        }
    }
}

impl Prefetcher for Streamer {
    fn on_access(&mut self, _: u64, line: LineAddr, _: bool, out: &mut Vec<PrefetchRequest>) {
        self.tick += 1;
        let page = line.page_number();
        if let Some(s) = self.streams.iter_mut().find(|s| s.valid && s.page == page) {
            let delta = line.0 as i64 - s.last_line as i64;
            s.last_line = line.0;
            s.lru = self.tick;
            if delta == 0 {
                return;
            }
            let dir = if delta > 0 { 1 } else { -1 };
            if dir == s.dir as i64 {
                s.confidence = (s.confidence + 1).min(3);
            } else {
                s.dir = dir as i8;
                s.confidence = 0;
                s.ahead = line.0;
            }
            if s.confidence >= 1 {
                // run ahead of the demand wavefront: continue from the
                // ahead pointer, up to `depth` lines past the demand
                let depth = 4 * self.degree as i64 + 8;
                let issue = (self.degree * 2).max(2);
                let mut next = if dir > 0 {
                    s.ahead.max(line.0) + 1
                } else {
                    s.ahead.min(line.0).saturating_sub(1)
                };
                let mut issued = 0;
                while issued < issue {
                    let target = LineAddr(next);
                    let dist = target.0 as i64 - line.0 as i64;
                    if !same_page(line, target) || dist.abs() > depth || target == line {
                        break;
                    }
                    let fill = if dist.unsigned_abs() <= self.degree as u64 + 2 {
                        FillLevel::L2
                    } else {
                        FillLevel::LlcOnly
                    };
                    out.push(PrefetchRequest::new(target, fill));
                    s.ahead = next;
                    issued += 1;
                    next = if dir > 0 {
                        next + 1
                    } else {
                        next.saturating_sub(1)
                    };
                    if next == 0 {
                        break;
                    }
                }
            }
        } else {
            let victim = self
                .streams
                .iter_mut()
                .min_by_key(|s| if s.valid { s.lru } else { 0 })
                .expect("streams nonempty");
            *victim = Stream {
                page,
                last_line: line.0,
                ahead: line.0,
                dir: 1,
                confidence: 0,
                valid: true,
                lru: self.tick,
            };
        }
    }

    fn name(&self) -> &str {
        "streamer"
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct IpcpEntry {
    pc_tag: u64,
    last_line: u64,
    stride: i64,
    stride_conf: u8,
    stream_conf: u8,
}

/// IPCP-style prefetcher (Pakalapati & Panda): classifies each
/// instruction pointer as constant-stride or global-stream and issues
/// class-specific prefetches with class-specific degrees.
#[derive(Debug, Clone)]
pub struct Ipcp {
    table: Vec<IpcpEntry>,
    degree: usize,
    global_last: u64,
    global_dir: i8,
    global_conf: u8,
}

impl Ipcp {
    /// 128-entry IP classifier.
    pub fn new(degree: usize) -> Self {
        Ipcp {
            table: vec![IpcpEntry::default(); 128],
            degree,
            global_last: 0,
            global_dir: 1,
            global_conf: 0,
        }
    }
}

impl Prefetcher for Ipcp {
    fn on_access(&mut self, pc: u64, line: LineAddr, _: bool, out: &mut Vec<PrefetchRequest>) {
        // Global stream component.
        let gdelta = line.0 as i64 - self.global_last as i64;
        let gdir = if gdelta >= 0 { 1i8 } else { -1 };
        if gdelta != 0 && gdelta.abs() <= 4 && gdir == self.global_dir {
            self.global_conf = (self.global_conf + 1).min(7);
        } else if gdelta != 0 {
            self.global_dir = gdir;
            self.global_conf = self.global_conf.saturating_sub(1);
        }
        self.global_last = line.0;

        // Per-IP constant-stride component.
        let idx = (pc as usize ^ (pc >> 7) as usize) % self.table.len();
        let e = &mut self.table[idx];
        if e.pc_tag != pc {
            *e = IpcpEntry {
                pc_tag: pc,
                last_line: line.0,
                ..Default::default()
            };
            return;
        }
        let delta = line.0 as i64 - e.last_line as i64;
        e.last_line = line.0;
        if delta != 0 {
            if delta == e.stride {
                e.stride_conf = (e.stride_conf + 1).min(3);
            } else {
                e.stride_conf = e.stride_conf.saturating_sub(1);
                if e.stride_conf == 0 {
                    e.stride = delta;
                }
            }
        }

        if e.stride_conf >= 2 && e.stride != 0 {
            // Constant-stride class: aggressive degree with lookahead.
            const DISTANCE: i64 = 8;
            for k in 1..=(self.degree as i64 * 2) {
                let target = line.offset(e.stride * (DISTANCE + k));
                if same_page(line, target) && target != line {
                    out.push(PrefetchRequest::new(target, FillLevel::LlcOnly));
                }
                let near = line.offset(e.stride * k);
                if same_page(line, near) && near != line {
                    out.push(PrefetchRequest::new(near, FillLevel::L2));
                }
            }
            e.stream_conf = e.stream_conf.saturating_sub(1);
        } else if self.global_conf >= 4 {
            // Global-stream class: direction-guided, runs well ahead.
            const DISTANCE: i64 = 8;
            for k in 1..=(self.degree as i64 * 2) {
                let target = line.offset(self.global_dir as i64 * (DISTANCE + k));
                if same_page(line, target) && target != line {
                    out.push(PrefetchRequest::new(target, FillLevel::LlcOnly));
                }
                let near = line.offset(self.global_dir as i64 * k);
                if same_page(line, near) && near != line {
                    out.push(PrefetchRequest::new(near, FillLevel::L2));
                }
            }
        }
    }

    fn name(&self) -> &str {
        "ipcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PAGE_SIZE;

    fn lines(page: u64, offsets: &[u64]) -> Vec<LineAddr> {
        offsets
            .iter()
            .map(|&o| LineAddr::from_byte_addr(page * PAGE_SIZE + o * 64))
            .collect()
    }

    #[test]
    fn next_line_proposes_sequential() {
        let mut p = NextLine { degree: 2 };
        let mut out = Vec::new();
        let l = LineAddr::from_byte_addr(PAGE_SIZE);
        p.on_access(0, l, true, &mut out);
        let targets: Vec<LineAddr> = out.iter().map(|r| r.line).collect();
        assert_eq!(targets, vec![l.next(), l.next().next()]);
        assert!(out.iter().all(|r| r.fill == FillLevel::L1));
    }

    #[test]
    fn next_line_stops_at_page_boundary() {
        let mut p = NextLine { degree: 4 };
        let mut out = Vec::new();
        // last line of a page
        let l = LineAddr::from_byte_addr(PAGE_SIZE - 64);
        p.on_access(0, l, true, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn stride_learns_constant_stride() {
        let mut p = StridePrefetcher::new(2);
        let mut out = Vec::new();
        for l in lines(1, &[0, 3, 6, 9, 12]) {
            out.clear();
            p.on_access(0x400, l, false, &mut out);
        }
        // by the 4th+ access confidence >= 2 -> near and lookahead
        // proposals along stride 3, all in-page
        assert!(!out.is_empty());
        let base = LineAddr::from_byte_addr(PAGE_SIZE + 12 * 64).0;
        for r in &out {
            assert_eq!((r.line.0 - base) % 3, 0, "proposal off-stride: {r:?}");
        }
        // lookahead proposals target the LLC, the near window targets L2
        assert!(out.iter().any(|r| r.fill == FillLevel::LlcOnly));
        assert!(out.iter().any(|r| r.fill == FillLevel::L2));
    }

    #[test]
    fn stride_ignores_random_pattern() {
        let mut p = StridePrefetcher::new(2);
        let mut out = Vec::new();
        for l in lines(1, &[0, 7, 2, 9, 1, 8]) {
            p.on_access(0x400, l, false, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn stride_tracks_pcs_independently() {
        let mut p = StridePrefetcher::new(1);
        let mut out = Vec::new();
        // interleave two PCs with different strides
        let a = lines(1, &[0, 1, 2, 3, 4, 5]);
        let b = lines(2, &[0, 2, 4, 6, 8, 10]);
        for i in 0..6 {
            out.clear();
            p.on_access(0x400, a[i], false, &mut out);
            let before = out.len();
            p.on_access(0x808, b[i], false, &mut out);
            if i >= 3 {
                assert!(before >= 1, "pc A should prefetch by access {i}");
                assert!(out.len() > before, "pc B should prefetch by access {i}");
            }
        }
    }

    #[test]
    fn streamer_follows_ascending_stream() {
        let mut p = Streamer::new(2);
        let mut out = Vec::new();
        for l in lines(5, &[0, 1, 2, 3]) {
            out.clear();
            p.on_access(0, l, false, &mut out);
        }
        assert!(!out.is_empty());
        assert!(out.iter().all(|r| r.line.page_number() == 5));
    }

    #[test]
    fn streamer_follows_descending_stream() {
        let mut p = Streamer::new(2);
        let mut out = Vec::new();
        for l in lines(5, &[30, 29, 28, 27]) {
            out.clear();
            p.on_access(0, l, false, &mut out);
        }
        assert!(!out.is_empty());
        assert!(out[0].line.0 < LineAddr::from_byte_addr(5 * PAGE_SIZE + 27 * 64).0);
    }

    #[test]
    fn ipcp_constant_stride_class() {
        let mut p = Ipcp::new(2);
        let mut out = Vec::new();
        for l in lines(3, &[0, 4, 8, 12, 16]) {
            out.clear();
            p.on_access(0x1234, l, false, &mut out);
        }
        assert!(out.len() >= 2, "constant-stride class should be aggressive");
    }

    #[test]
    fn no_prefetcher_is_silent() {
        let mut p = NoPrefetcher;
        let mut out = Vec::new();
        p.on_access(0, LineAddr(0), false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn build_matches_kind() {
        assert_eq!(build(PrefetcherKind::None, 2).name(), "none");
        assert_eq!(build(PrefetcherKind::NextLine, 2).name(), "next-line");
        assert_eq!(build(PrefetcherKind::Stride, 2).name(), "stride");
        assert_eq!(build(PrefetcherKind::Streamer, 2).name(), "streamer");
        assert_eq!(build(PrefetcherKind::Ipcp, 2).name(), "ipcp");
    }
}
