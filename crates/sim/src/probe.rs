//! Vectorized set probes over packed residency keys.
//!
//! Both [`crate::cache::PrivateCache`] and [`crate::llc::SharedLlc`]
//! store one packed `u64` per way — `(line << 1) | 1`, with `0` meaning
//! "invalid way" — laid out structure-of-arrays so one set is one
//! contiguous `&[u64]` of length `ways`. A lookup is "find the first way
//! whose key equals the probe key", and an invalid-way search is the
//! same question with key `0`. That single primitive, [`find_key`],
//! runs once or twice per L1/L2/LLC access and is the hottest loop in
//! the simulator, so it is vectorized: four ways per compare with AVX2
//! (`VPCMPEQQ` + sign-mask + trailing-zero count), falling back to the
//! scalar loop for the tail and on other architectures.
//!
//! Dispatch strategy: `std::simd` is still nightly-only, so the vector
//! kernel uses `std::arch::x86_64` intrinsics directly. The AVX2 check
//! is `is_x86_feature_detected!`, which std caches in a process-global
//! after the first cpuid — the steady-state cost is one predictable
//! branch on an already-loaded flag. Building with the `scalar-probe`
//! feature removes the vector path entirely (the build-time fallback
//! switch), which is also how the property test cross-checks the two
//! kernels against each other.
//!
//! Equivalence contract: every kernel returns the index of the FIRST
//! matching element, exactly like `slice::iter().position()`. Residency
//! keys are unique within a set (a line lives in at most one way), but
//! invalid-way searches routinely see several zero keys, and
//! replacement decisions key off which one is chosen — first-match
//! semantics are load-bearing for byte-identical `SimResults`.

/// Slices shorter than this take the inline scalar loop even when AVX2
/// is present. `#[target_feature]` functions cannot inline into their
/// (non-AVX2) callers, so the vector kernel costs a real call; profiled
/// on the throughput bench, that call only pays for itself from about
/// three vector blocks up. 8-way L1/L2 sets stay scalar-and-inlined;
/// 12/16/20-way LLC sets and 16+-entry MSHR files go vector.
#[cfg(all(target_arch = "x86_64", not(feature = "scalar-probe")))]
const AVX2_MIN_LEN: usize = 12;

/// Find the first way whose packed key equals `key` (use `key = 0` to
/// find the first invalid way). Returns `None` when no way matches.
#[inline]
pub fn find_key(keys: &[u64], key: u64) -> Option<usize> {
    #[cfg(all(target_arch = "x86_64", not(feature = "scalar-probe")))]
    {
        if keys.len() >= AVX2_MIN_LEN && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { find_key_avx2(keys, key) };
        }
    }
    find_key_scalar(keys, key)
}

/// The scalar reference kernel: exactly `keys.iter().position(|&k| k ==
/// key)`. Public so the property test can pin the vector kernel to it.
#[inline]
pub fn find_key_scalar(keys: &[u64], key: u64) -> Option<usize> {
    keys.iter().position(|&k| k == key)
}

/// AVX2 kernel: compare four packed ways per iteration, extract the
/// per-lane equality sign bits, and count trailing zeros to recover the
/// first matching way. The `< 4` tail falls through to the scalar loop,
/// which also preserves first-match order (vector blocks are scanned
/// low-to-high and `trailing_zeros` picks the lowest matching lane).
#[cfg(all(target_arch = "x86_64", not(feature = "scalar-probe")))]
#[target_feature(enable = "avx2")]
unsafe fn find_key_avx2(keys: &[u64], key: u64) -> Option<usize> {
    use std::arch::x86_64::*;
    let n = keys.len();
    let ptr = keys.as_ptr();
    let needle = _mm256_set1_epi64x(key as i64);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: `i + 4 <= n` bounds the unaligned 32-byte load.
        let block = _mm256_loadu_si256(ptr.add(i).cast());
        let eq = _mm256_cmpeq_epi64(block, needle);
        // One sign bit per 64-bit lane, lane 0 in bit 0.
        let mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32;
        if mask != 0 {
            return Some(i + mask.trailing_zeros() as usize);
        }
        i += 4;
    }
    while i < n {
        // SAFETY: `i < n` by the loop condition.
        if *keys.get_unchecked(i) == key {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Which probe kernel this build + machine actually runs (diagnostics
/// and bench metadata).
pub fn kernel_name() -> &'static str {
    #[cfg(all(target_arch = "x86_64", not(feature = "scalar-probe")))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return "avx2";
        }
    }
    "scalar"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_tiny_slices() {
        assert_eq!(find_key(&[], 7), None);
        assert_eq!(find_key(&[7], 7), Some(0));
        assert_eq!(find_key(&[3], 7), None);
        assert_eq!(find_key(&[0, 0, 7], 7), Some(2));
    }

    #[test]
    fn first_match_wins_across_block_boundaries() {
        // Duplicate zeros (the invalid-way search case) spanning the
        // vector block and the scalar tail.
        for ways in [4, 5, 8, 11, 12, 16, 20] {
            for first_zero in 0..ways {
                let mut keys: Vec<u64> = (0..ways as u64).map(|i| (i << 1) | 1).collect();
                for k in keys.iter_mut().skip(first_zero) {
                    *k = 0;
                }
                assert_eq!(find_key(&keys, 0), Some(first_zero), "ways={ways}");
                assert_eq!(find_key_scalar(&keys, 0), Some(first_zero));
            }
        }
    }

    #[test]
    fn matches_scalar_on_every_position() {
        for ways in 1..=24 {
            let keys: Vec<u64> = (0..ways as u64).map(|i| ((i + 100) << 1) | 1).collect();
            for (w, &k) in keys.iter().enumerate() {
                assert_eq!(find_key(&keys, k), Some(w), "ways={ways} way={w}");
            }
            assert_eq!(find_key(&keys, (999 << 1) | 1), None);
        }
    }
}
