//! A small, fast, deterministic PRNG (xoshiro256++) so the workspace
//! carries no external dependency for randomness.
//!
//! Simulation results must be bit-reproducible across machines and
//! toolchains; owning the generator pins the stream forever, which an
//! external crate's internals would not. The API mirrors the handful of
//! operations the workloads and the ε-greedy agent actually need:
//! seeding from a `u64`, uniform floats in `[0, 1)`, and unbiased
//! integer ranges.

use std::ops::{Range, RangeInclusive};

/// xoshiro256++ by Blackman & Vigna: 256-bit state, passes BigCrush,
/// a handful of ALU ops per draw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into the full state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Expand `seed` into a full 256-bit state via SplitMix64 (the
    /// initialisation the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` from the top 24 bits.
    #[inline]
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform draw from a half-open or inclusive integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Unbiased integer in `[0, span)` via Lemire's rejection method.
    #[inline]
    fn bounded_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            let low = m as u64;
            if low >= span.wrapping_neg() % span {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Integer range types [`SmallRng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.gen_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn unit_floats_cover_both_halves() {
        let mut r = SmallRng::seed_from_u64(9);
        let lows = (0..1000).filter(|_| r.gen_f64() < 0.5).count();
        assert!((300..700).contains(&lows), "badly skewed: {lows}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!((10u64..20).contains(&r.gen_range(10u64..20)));
            assert!((0u32..7).contains(&r.gen_range(0u32..7)));
            let v = r.gen_range(5usize..=9);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never drawn");
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut r = SmallRng::seed_from_u64(5);
        assert_eq!(r.gen_range(4u64..=4), 4);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(0).gen_range(3u64..3);
    }
}
