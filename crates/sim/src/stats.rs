//! Simulation statistics: per-cache, per-core and whole-run results.

use std::collections::BTreeMap;

use crate::types::LineAddr;

/// Counters for one cache level (or one core's view of a shared level).
/// Plain `u64` counters, so it is `Copy` — epoch snapshots cost a
/// register copy, not a clone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand (load/store) accesses.
    pub demand_accesses: u64,
    /// Demand misses.
    pub demand_misses: u64,
    /// Prefetch accesses (lookups made on behalf of a prefetcher).
    pub prefetch_accesses: u64,
    /// Prefetch lookups that missed and triggered a fill request.
    pub prefetch_misses: u64,
    /// Prefetched blocks actually inserted into this cache.
    pub prefetch_fills: u64,
    /// Prefetches shed by the memory controller (deep bank queues).
    pub prefetch_dropped: u64,
    /// Demand hits on blocks whose prefetch bit was still set
    /// (useful prefetches).
    pub prefetch_useful: u64,
    /// Blocks bypassed by the management policy.
    pub bypasses: u64,
    /// Evictions of valid blocks.
    pub evictions: u64,
    /// Evictions of blocks that were never hit after fill.
    pub evictions_unused: u64,
    /// Of [`Self::evictions_unused`], how many were prefetched blocks.
    pub evictions_unused_prefetch: u64,
    /// Dirty evictions (writebacks issued).
    pub writebacks: u64,
}

impl CacheStats {
    /// Demand miss ratio in [0, 1]; 0 when no accesses were made.
    pub fn demand_miss_ratio(&self) -> f64 {
        ratio(self.demand_misses, self.demand_accesses)
    }

    /// Effective prefetch hit ratio (EPHR, paper §VII-A): demand hits on
    /// still-prefetch-marked blocks over prefetched blocks inserted.
    pub fn ephr(&self) -> f64 {
        ratio(self.prefetch_useful, self.prefetch_fills)
    }

    /// Fraction of incoming blocks that were bypassed (bypass coverage).
    pub fn bypass_coverage(&self) -> f64 {
        ratio(self.bypasses, self.bypasses + self.demand_misses_filled())
    }

    fn demand_misses_filled(&self) -> u64 {
        // All fills = evictions + fills into invalid ways; approximate the
        // denominator as total fills = misses that were not bypassed.
        (self.demand_misses + self.prefetch_misses).saturating_sub(self.bypasses)
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.demand_accesses += other.demand_accesses;
        self.demand_misses += other.demand_misses;
        self.prefetch_accesses += other.prefetch_accesses;
        self.prefetch_misses += other.prefetch_misses;
        self.prefetch_fills += other.prefetch_fills;
        self.prefetch_dropped += other.prefetch_dropped;
        self.prefetch_useful += other.prefetch_useful;
        self.bypasses += other.bypasses;
        self.evictions += other.evictions;
        self.evictions_unused += other.evictions_unused;
        self.evictions_unused_prefetch += other.evictions_unused_prefetch;
        self.writebacks += other.writebacks;
    }
}

#[inline]
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Per-core results of a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreStats {
    /// Instructions retired in the measured region.
    pub instructions: u64,
    /// Cycles taken to retire them (from measurement start).
    pub cycles: u64,
    /// LLC accesses attributed to this core in the measured region.
    pub llc_accesses: u64,
    /// Memory-active cycles at the LLC (C-AMAT numerator).
    pub llc_active_cycles: u64,
    /// Summed (non-overlapped) LLC access latency — the pure-AMAT
    /// numerator; `llc_latency_cycles - llc_active_cycles` is what MLP
    /// overlap hid.
    pub llc_latency_cycles: u64,
    /// Cycles completed instructions waited in the ROB for in-order
    /// release (measured region).
    pub rob_release_lag: u64,
    /// Number of epochs in which this core was LLC-obstructed.
    pub obstructed_epochs: u64,
    /// Total number of feedback epochs observed.
    pub total_epochs: u64,
}

impl CoreStats {
    /// Instructions per cycle for the measured region.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Average C-AMAT at the LLC over the whole run (cycles per access).
    pub fn camat_llc(&self) -> f64 {
        ratio(self.llc_active_cycles, self.llc_accesses)
    }

    /// Average pure AMAT at the LLC (cycles per access, no overlap
    /// discount).
    pub fn amat_llc(&self) -> f64 {
        ratio(self.llc_latency_cycles, self.llc_accesses)
    }

    /// Per-access cycles hidden by memory-level parallelism
    /// (`amat_llc() - camat_llc()`).
    pub fn overlap_savings_llc(&self) -> f64 {
        self.amat_llc() - self.camat_llc()
    }
}

/// Tracks whether blocks evicted-without-reuse are ever requested again
/// (needed for the paper's Fig. 2 motivation data).
#[derive(Debug, Clone, Default)]
pub struct EvictedUnusedTracker {
    /// line -> (was_prefetch, requested_again). Ordered map so any
    /// exported breakdown iterates in address order, byte-stable across
    /// runs with the same seed.
    entries: BTreeMap<u64, (bool, bool)>,
    enabled: bool,
}

impl EvictedUnusedTracker {
    /// Create a tracker; disabled trackers are free.
    pub fn new(enabled: bool) -> Self {
        EvictedUnusedTracker {
            entries: BTreeMap::new(),
            enabled,
        }
    }

    /// Record that `line` was evicted without being reused.
    pub fn on_unused_eviction(&mut self, line: LineAddr, was_prefetch: bool) {
        if self.enabled {
            self.entries
                .entry(line.0)
                .or_insert((was_prefetch, false))
                .0 = was_prefetch;
        }
    }

    /// Record any LLC access, so previously evicted-unused lines can be
    /// marked as requested-again.
    pub fn on_access(&mut self, line: LineAddr) {
        if self.enabled {
            if let Some(e) = self.entries.get_mut(&line.0) {
                e.1 = true;
            }
        }
    }

    /// (evicted-unused requested again later, never requested again,
    /// unused evictions that were prefetched).
    pub fn summary(&self) -> (u64, u64, u64) {
        let mut again = 0;
        let mut never = 0;
        let mut pf = 0;
        for &(was_pf, requested) in self.entries.values() {
            if requested {
                again += 1;
            } else {
                never += 1;
            }
            if was_pf {
                pf += 1;
            }
        }
        (again, never, pf)
    }
}

/// Results of one simulation run. Derives `PartialEq` so the
/// differential kernel-equivalence tests can assert byte-identical
/// results between the event-driven and reference schedulers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimResults {
    /// Per-core statistics.
    pub per_core: Vec<CoreStats>,
    /// Per-core L1D stats.
    pub l1d: Vec<CacheStats>,
    /// Per-core L2 stats.
    pub l2: Vec<CacheStats>,
    /// Shared LLC stats.
    pub llc: CacheStats,
    /// DRAM reads served.
    pub dram_reads: u64,
    /// DRAM writes served.
    pub dram_writes: u64,
    /// Average DRAM access latency (cycles).
    pub dram_avg_latency: f64,
    /// Total cycles simulated in the measured region (max over cores).
    pub total_cycles: u64,
    /// Fig. 2 data: (requested-again, never-requested, prefetched) among
    /// blocks evicted without reuse. Zeroes unless tracking was enabled.
    pub evicted_unused: (u64, u64, u64),
    /// Fig. 9 data: (demanded-again, never-demanded, prefetched) among
    /// bypassed lines. Zeroes unless tracking was enabled.
    pub bypassed_outcome: (u64, u64, u64),
}

impl SimResults {
    /// Sum of per-core IPCs (throughput metric).
    pub fn ipc_sum(&self) -> f64 {
        self.per_core.iter().map(|c| c.ipc()).sum()
    }

    /// LLC misses per kilo-instruction, aggregated over cores.
    pub fn llc_mpki(&self) -> f64 {
        let instr: u64 = self.per_core.iter().map(|c| c.instructions).sum();
        if instr == 0 {
            0.0
        } else {
            self.llc.demand_misses as f64 * 1000.0 / instr as f64
        }
    }

    /// Weighted speedup of this run relative to per-core baseline IPCs
    /// (usually the same cores running alone under LRU).
    ///
    /// # Panics
    ///
    /// Panics if `baseline_ipc.len()` differs from the core count.
    pub fn weighted_speedup(&self, baseline_ipc: &[f64]) -> f64 {
        assert_eq!(
            baseline_ipc.len(),
            self.per_core.len(),
            "baseline core count mismatch"
        );
        self.per_core
            .iter()
            .zip(baseline_ipc)
            .map(|(c, &b)| if b > 0.0 { c.ipc() / b } else { 0.0 })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_zero() {
        let s = CacheStats::default();
        assert_eq!(s.demand_miss_ratio(), 0.0);
        assert_eq!(s.ephr(), 0.0);
    }

    #[test]
    fn miss_ratio_basic() {
        let s = CacheStats {
            demand_accesses: 10,
            demand_misses: 3,
            ..Default::default()
        };
        assert!((s.demand_miss_ratio() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn ephr_counts_useful_prefetches() {
        let s = CacheStats {
            prefetch_fills: 8,
            prefetch_useful: 2,
            ..Default::default()
        };
        assert!((s.ephr() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats {
            demand_accesses: 1,
            ..Default::default()
        };
        let b = CacheStats {
            demand_accesses: 2,
            evictions: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.demand_accesses, 3);
        assert_eq!(a.evictions, 5);
    }

    #[test]
    fn core_ipc() {
        let c = CoreStats {
            instructions: 100,
            cycles: 50,
            ..Default::default()
        };
        assert!((c.ipc() - 2.0).abs() < 1e-12);
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }

    #[test]
    fn amat_and_overlap_savings() {
        let c = CoreStats {
            llc_accesses: 10,
            llc_active_cycles: 500,
            llc_latency_cycles: 800,
            ..Default::default()
        };
        assert!((c.camat_llc() - 50.0).abs() < 1e-12);
        assert!((c.amat_llc() - 80.0).abs() < 1e-12);
        assert!((c.overlap_savings_llc() - 30.0).abs() < 1e-12);
        assert_eq!(CoreStats::default().amat_llc(), 0.0);
    }

    #[test]
    fn evicted_unused_tracker() {
        let mut t = EvictedUnusedTracker::new(true);
        t.on_unused_eviction(LineAddr(1), true);
        t.on_unused_eviction(LineAddr(2), false);
        t.on_access(LineAddr(1));
        let (again, never, pf) = t.summary();
        assert_eq!((again, never, pf), (1, 1, 1));
    }

    #[test]
    fn evicted_unused_tracker_disabled_is_empty() {
        let mut t = EvictedUnusedTracker::new(false);
        t.on_unused_eviction(LineAddr(1), true);
        assert_eq!(t.summary(), (0, 0, 0));
    }

    #[test]
    fn weighted_speedup_identity() {
        let r = SimResults {
            per_core: vec![
                CoreStats {
                    instructions: 100,
                    cycles: 100,
                    ..Default::default()
                },
                CoreStats {
                    instructions: 100,
                    cycles: 200,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        let ws = r.weighted_speedup(&[1.0, 0.5]);
        assert!((ws - 2.0).abs() < 1e-12);
    }
}
